//! Dense, uncompressed bit vectors over 64-bit words.

use core::fmt;

use crate::kernels;
use crate::words::{SharedWords, Words};

const WORD_BITS: usize = 64;

/// A fixed-length dense bit vector.
///
/// This is the representation of the vertical columns of the paper's bitmap
/// index (Fig. 6): one bit per object, word-wise boolean algebra, hardware
/// population counts. All binary operations require equal lengths.
///
/// Storage is [`Words`]: either heap-owned or borrowed straight out of a
/// shared snapshot buffer (zero-copy load). Borrowed vectors behave
/// identically to owned ones — equality, hashing and every query operation
/// see only the logical word sequence — and are promoted to an owned copy
/// the first time they are mutated.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BitVec {
    words: Words,
    len: usize,
}

impl BitVec {
    /// All-zeros vector of `len` bits.
    pub fn zeros(len: usize) -> Self {
        BitVec {
            words: Words::Owned(vec![0; len.div_ceil(WORD_BITS)]),
            len,
        }
    }

    /// All-ones vector of `len` bits.
    pub fn ones(len: usize) -> Self {
        let mut v = BitVec {
            words: Words::Owned(vec![u64::MAX; len.div_ceil(WORD_BITS)]),
            len,
        };
        v.mask_tail();
        v
    }

    /// Vector with exactly the given bit indexes set.
    ///
    /// # Panics
    /// Panics if any index is `>= len`.
    pub fn from_indices(len: usize, indices: impl IntoIterator<Item = usize>) -> Self {
        let mut v = Self::zeros(len);
        for i in indices {
            v.set(i);
        }
        v
    }

    /// Read-only word storage.
    #[inline]
    fn w(&self) -> &[u64] {
        self.words.as_slice()
    }

    /// Zero out any bits beyond `len` in the last word (invariant: padding
    /// bits are always zero, so `count_ones` is exact).
    #[inline]
    fn mask_tail(&mut self) {
        let tail = self.len % WORD_BITS;
        if tail != 0 {
            if let Some(last) = self.words.to_mut().last_mut() {
                *last &= (1u64 << tail) - 1;
            }
        }
    }

    /// Length in bits.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Is the length zero?
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Does this vector still borrow a shared snapshot buffer (i.e. it has
    /// not been mutated since a zero-copy load)?
    #[inline]
    pub fn is_shared(&self) -> bool {
        self.words.is_shared()
    }

    /// Read bit `i`.
    ///
    /// # Panics
    /// Panics if `i >= len`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        (self.w()[i / WORD_BITS] >> (i % WORD_BITS)) & 1 == 1
    }

    /// Set bit `i` to one.
    ///
    /// # Panics
    /// Panics if `i >= len`.
    #[inline]
    pub fn set(&mut self, i: usize) {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        self.words.to_mut()[i / WORD_BITS] |= 1u64 << (i % WORD_BITS);
    }

    /// Set bit `i` to zero.
    ///
    /// # Panics
    /// Panics if `i >= len`.
    #[inline]
    pub fn clear(&mut self, i: usize) {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        self.words.to_mut()[i / WORD_BITS] &= !(1u64 << (i % WORD_BITS));
    }

    /// Append one bit, growing the length by one — the primitive behind
    /// the dynamic index's appendable columns. Amortized `O(1)`: a new
    /// word is pushed only every 64 appends, and the padding invariant is
    /// preserved. Promotes borrowed storage (appending is a mutation).
    #[inline]
    pub fn push(&mut self, bit: bool) {
        let len = self.len;
        let words = self.words.to_mut();
        if len.is_multiple_of(WORD_BITS) {
            words.push(0);
        }
        if bit {
            words[len / WORD_BITS] |= 1u64 << (len % WORD_BITS);
        }
        self.len += 1;
    }

    /// Number of set bits.
    #[inline]
    pub fn count_ones(&self) -> usize {
        kernels::popcount(self.w())
    }

    /// Raw word storage (little-endian bit order within a word).
    #[inline]
    pub fn as_words(&self) -> &[u64] {
        self.w()
    }

    /// Reassemble a vector from its raw word storage — the word-level
    /// deserialization entry point of the snapshot loader: columns come
    /// off disk as whole `u64` words and are adopted here by move, no
    /// per-bit decode.
    ///
    /// # Errors
    /// Rejects a word count other than `ceil(len / 64)` and nonzero
    /// padding bits beyond `len` (the canonical-form invariant every
    /// in-memory [`BitVec`] upholds; accepting dirty padding would make
    /// popcounts wrong and snapshots non-canonical).
    pub fn from_words(words: Vec<u64>, len: usize) -> Result<Self, &'static str> {
        Self::check_form(&words, len)?;
        Ok(BitVec {
            words: Words::Owned(words),
            len,
        })
    }

    /// Like [`BitVec::from_words`], but adopting a borrowed view of a
    /// shared snapshot buffer instead of owned storage — the zero-copy
    /// load entry point. The same canonical-form validation applies; only
    /// the storage differs, and the first mutation promotes it to owned.
    ///
    /// # Errors
    /// Same conditions as [`BitVec::from_words`].
    pub fn from_shared(shared: SharedWords, len: usize) -> Result<Self, &'static str> {
        Self::check_form(shared.as_words(), len)?;
        Ok(BitVec {
            words: Words::Shared(shared),
            len,
        })
    }

    fn check_form(words: &[u64], len: usize) -> Result<(), &'static str> {
        if words.len() != len.div_ceil(WORD_BITS) {
            return Err("word count does not match bit length");
        }
        let tail = len % WORD_BITS;
        if tail != 0 {
            let last = *words.last().expect("len > 0 implies a word");
            if last & !((1u64 << tail) - 1) != 0 {
                return Err("nonzero padding bits beyond the bit length");
            }
        }
        Ok(())
    }

    /// Mutable raw word storage for in-crate fused writers (promotes
    /// borrowed storage). Callers must uphold the padding invariant (bits
    /// beyond `len` stay zero) — call [`BitVec::fix_tail`] after bulk
    /// writes.
    #[inline]
    pub(crate) fn words_mut(&mut self) -> &mut [u64] {
        self.words.to_mut()
    }

    /// Re-establish the padding invariant after bulk word writes.
    #[inline]
    pub(crate) fn fix_tail(&mut self) {
        self.mask_tail();
    }

    /// In-place AND.
    ///
    /// # Panics
    /// Panics on length mismatch.
    pub fn and_assign(&mut self, other: &BitVec) {
        assert_eq!(self.len, other.len, "length mismatch");
        for (a, b) in self.words.to_mut().iter_mut().zip(other.w()) {
            *a &= b;
        }
    }

    /// In-place OR.
    ///
    /// # Panics
    /// Panics on length mismatch.
    pub fn or_assign(&mut self, other: &BitVec) {
        assert_eq!(self.len, other.len, "length mismatch");
        for (a, b) in self.words.to_mut().iter_mut().zip(other.w()) {
            *a |= b;
        }
    }

    /// In-place AND-NOT (`self &= !other`, i.e. set difference).
    ///
    /// # Panics
    /// Panics on length mismatch.
    pub fn and_not_assign(&mut self, other: &BitVec) {
        assert_eq!(self.len, other.len, "length mismatch");
        for (a, b) in self.words.to_mut().iter_mut().zip(other.w()) {
            *a &= !b;
        }
    }

    /// Set every bit to one (respects the logical length) — no allocation.
    pub fn set_all(&mut self) {
        self.words.to_mut().fill(!0);
        self.mask_tail();
    }

    /// Set every bit to zero — no allocation.
    pub fn clear_all(&mut self) {
        self.words.to_mut().fill(0);
    }

    /// In-place complement (respects the logical length).
    pub fn not_assign(&mut self) {
        for w in self.words.to_mut() {
            *w = !*w;
        }
        self.mask_tail();
    }

    /// `self AND other` as a new vector.
    pub fn and(&self, other: &BitVec) -> BitVec {
        let mut r = self.clone();
        r.and_assign(other);
        r
    }

    /// `self OR other` as a new vector.
    pub fn or(&self, other: &BitVec) -> BitVec {
        let mut r = self.clone();
        r.or_assign(other);
        r
    }

    /// `self AND NOT other` as a new vector.
    pub fn and_not(&self, other: &BitVec) -> BitVec {
        let mut r = self.clone();
        r.and_not_assign(other);
        r
    }

    /// Popcount of `self AND other` without materializing it — routed
    /// through the wide-lane [`kernels`].
    ///
    /// # Panics
    /// Panics on length mismatch.
    #[inline]
    pub fn and_count(&self, other: &BitVec) -> usize {
        assert_eq!(self.len, other.len, "length mismatch");
        kernels::and_count(self.w(), other.w())
    }

    /// Popcount of `self AND NOT other` without materializing it — routed
    /// through the wide-lane [`kernels`].
    ///
    /// # Panics
    /// Panics on length mismatch.
    #[inline]
    pub fn and_not_count(&self, other: &BitVec) -> usize {
        assert_eq!(self.len, other.len, "length mismatch");
        kernels::and_not_count(self.w(), other.w())
    }

    /// Popcount of the ternary `self AND b AND NOT c` without materializing
    /// any intermediate (one fused pass over the three word arrays) —
    /// routed through the wide-lane [`kernels`].
    ///
    /// # Panics
    /// Panics on length mismatch.
    #[inline]
    pub fn count_and_andnot(&self, b: &BitVec, c: &BitVec) -> usize {
        assert_eq!(self.len, b.len, "length mismatch");
        assert_eq!(self.len, c.len, "length mismatch");
        kernels::count_and_andnot(self.w(), b.w(), c.w())
    }

    /// Overwrite `self` with a word-level copy of `other` — no allocation
    /// when `self` is already owned.
    ///
    /// # Panics
    /// Panics on length mismatch.
    #[inline]
    pub fn copy_from(&mut self, other: &BitVec) {
        assert_eq!(self.len, other.len, "length mismatch");
        self.words.to_mut().copy_from_slice(other.w());
    }

    /// Fill `scratch` with the intersection of all `cols` — no intermediate
    /// vectors, no allocation. The scratch's previous contents are
    /// overwritten. Internally one vectorizable pass per column (a copy
    /// plus chained ANDs), which the optimizer turns into wide SIMD; a
    /// word-at-a-time gather across columns benchmarks ~2.5× slower.
    ///
    /// # Panics
    /// Panics if `cols` is empty or any length differs from the scratch's.
    pub fn intersect_into(scratch: &mut BitVec, cols: &[&BitVec]) {
        assert!(!cols.is_empty(), "need at least one column");
        scratch.copy_from(cols[0]);
        for c in &cols[1..] {
            scratch.and_assign(c);
        }
    }

    /// Iterate the indexes of bits set in `self AND NOT other`, ascending,
    /// without materializing the difference — the `Q − P` enumeration of
    /// Algorithm 3 straight off caller-owned scratch buffers.
    ///
    /// # Panics
    /// Panics on length mismatch.
    pub fn iter_ones_and_not<'a>(&'a self, other: &'a BitVec) -> AndNotOnes<'a> {
        assert_eq!(self.len, other.len, "length mismatch");
        let a = self.w();
        let b = other.w();
        let current = match (a.first(), b.first()) {
            (Some(&x), Some(&y)) => x & !y,
            _ => 0,
        };
        AndNotOnes {
            a,
            b,
            word_idx: 0,
            current,
        }
    }

    /// Borrow the whole vector as a [`BitSlice`] view.
    #[inline]
    pub fn as_bit_slice(&self) -> BitSlice<'_> {
        BitSlice {
            words: self.w(),
            len: self.len,
        }
    }

    /// Split into two [`BitSlice`] views at word `w` (bit `64·w`) — the
    /// shard-view primitive of the parallel engine. The left slice holds
    /// bits `[0, 64·w)`, the right the rest; both borrow `self`'s storage,
    /// so no bits are copied.
    ///
    /// # Panics
    /// Panics if `w` exceeds the word count.
    pub fn split_at_word(&self, w: usize) -> (BitSlice<'_>, BitSlice<'_>) {
        let words = self.w();
        assert!(w <= words.len(), "word index {w} out of range");
        let (lo, hi) = words.split_at(w);
        let lo_bits = (w * WORD_BITS).min(self.len);
        (
            BitSlice {
                words: lo,
                len: lo_bits,
            },
            BitSlice {
                words: hi,
                len: self.len - lo_bits,
            },
        )
    }

    /// View of the word range `[w_lo, w_hi)` as a [`BitSlice`] — bits
    /// `[64·w_lo, min(64·w_hi, len))`. Shards produced by word-aligned
    /// partitioning are exactly such views, so a shard-restricted global
    /// vector (e.g. the incomparable set `F(o)`) costs nothing to build.
    ///
    /// # Panics
    /// Panics if `w_lo > w_hi` or `w_hi` exceeds the word count.
    pub fn slice_words(&self, w_lo: usize, w_hi: usize) -> BitSlice<'_> {
        let words = self.w();
        assert!(w_lo <= w_hi, "inverted word range {w_lo}..{w_hi}");
        assert!(w_hi <= words.len(), "word index {w_hi} out of range");
        let hi_bits = (w_hi * WORD_BITS).min(self.len);
        BitSlice {
            words: &words[w_lo..w_hi],
            len: hi_bits.saturating_sub(w_lo * WORD_BITS),
        }
    }

    /// Popcount of `self AND NOT other` where `other` is a word-aligned
    /// view (see [`BitVec::slice_words`]) of the same bit length as `self`
    /// — routed through the wide-lane [`kernels`].
    ///
    /// # Panics
    /// Panics on length mismatch.
    #[inline]
    pub fn and_not_count_slice(&self, other: BitSlice<'_>) -> usize {
        assert_eq!(self.len, other.len, "length mismatch");
        kernels::and_not_count(self.w(), other.words)
    }

    /// Is every set bit of `self` also set in `other`?
    ///
    /// # Panics
    /// Panics on length mismatch.
    pub fn is_subset_of(&self, other: &BitVec) -> bool {
        assert_eq!(self.len, other.len, "length mismatch");
        self.w().iter().zip(other.w()).all(|(a, b)| a & !b == 0)
    }

    /// Iterate over the indexes of set bits, ascending.
    pub fn iter_ones(&self) -> Ones<'_> {
        let words = self.w();
        Ones {
            words,
            word_idx: 0,
            current: words.first().copied().unwrap_or(0),
        }
    }
}

impl fmt::Debug for BitVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BitVec[{}; ", self.len)?;
        let shown: Vec<usize> = self.iter_ones().take(16).collect();
        write!(f, "{shown:?}")?;
        if self.count_ones() > 16 {
            write!(f, "…")?;
        }
        write!(f, "]")
    }
}

/// A borrowed, word-aligned view of a [`BitVec`] region — the shard-view
/// type returned by [`BitVec::split_at_word`] / [`BitVec::slice_words`].
///
/// Views always start at a word boundary of the underlying vector, so all
/// operations run on whole `u64` words with no shifting. Bits past `len`
/// in the final word are guaranteed zero (they are either the parent
/// vector's zero padding or, for interior shards of a word-aligned
/// partition, outside the slice entirely), so popcounts are exact.
#[derive(Clone, Copy, Debug)]
pub struct BitSlice<'a> {
    words: &'a [u64],
    len: usize,
}

impl<'a> BitSlice<'a> {
    /// Length in bits.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Is the length zero?
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Raw word storage of the view.
    #[inline]
    pub fn as_words(&self) -> &'a [u64] {
        self.words
    }

    /// Read bit `i` (relative to the view's start).
    ///
    /// # Panics
    /// Panics if `i >= len`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        (self.words[i / WORD_BITS] >> (i % WORD_BITS)) & 1 == 1
    }

    /// Number of set bits.
    #[inline]
    pub fn count_ones(&self) -> usize {
        kernels::popcount(self.words)
    }

    /// Iterate over the indexes of set bits (relative to the view's
    /// start), ascending.
    pub fn iter_ones(&self) -> Ones<'a> {
        Ones {
            words: self.words,
            word_idx: 0,
            current: self.words.first().copied().unwrap_or(0),
        }
    }
}

// The bitmap substrate is shared read-only across query workers; these
// compile-time assertions pin the auto-derived thread-safety so a future
// field addition (e.g. an interior-mutability cache) cannot silently take
// the parallel engine down with it. `Words::Shared` holds an `Arc<[u64]>`,
// which is `Send + Sync`, so borrowed-storage vectors stay shareable.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<BitVec>();
    assert_send_sync::<BitSlice<'_>>();
    assert_send_sync::<crate::Concise>();
    assert_send_sync::<crate::Wah>();
};

/// Iterator over set-bit indexes of a [`BitVec`], ascending.
pub struct Ones<'a> {
    words: &'a [u64],
    word_idx: usize,
    current: u64,
}

impl<'a> Iterator for Ones<'a> {
    type Item = usize;

    #[inline]
    fn next(&mut self) -> Option<usize> {
        while self.current == 0 {
            self.word_idx += 1;
            if self.word_idx >= self.words.len() {
                return None;
            }
            self.current = self.words[self.word_idx];
        }
        let bit = self.current.trailing_zeros() as usize;
        self.current &= self.current - 1;
        Some(self.word_idx * WORD_BITS + bit)
    }
}

/// Iterator over set-bit indexes of `a AND NOT b`, ascending, computed
/// word-by-word on the fly (see [`BitVec::iter_ones_and_not`]).
pub struct AndNotOnes<'a> {
    a: &'a [u64],
    b: &'a [u64],
    word_idx: usize,
    current: u64,
}

impl<'a> Iterator for AndNotOnes<'a> {
    type Item = usize;

    #[inline]
    fn next(&mut self) -> Option<usize> {
        while self.current == 0 {
            self.word_idx += 1;
            if self.word_idx >= self.a.len() {
                return None;
            }
            self.current = self.a[self.word_idx] & !self.b[self.word_idx];
        }
        let bit = self.current.trailing_zeros() as usize;
        self.current &= self.current - 1;
        Some(self.word_idx * WORD_BITS + bit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn zeros_and_ones() {
        let z = BitVec::zeros(70);
        assert_eq!(z.len(), 70);
        assert_eq!(z.count_ones(), 0);
        let o = BitVec::ones(70);
        assert_eq!(o.count_ones(), 70);
        assert!(o.get(69));
        // Padding bits beyond 70 must be zero.
        assert_eq!(o.as_words()[1].count_ones(), 6);
    }

    #[test]
    fn set_get_clear() {
        let mut b = BitVec::zeros(130);
        b.set(0);
        b.set(64);
        b.set(129);
        assert!(b.get(0) && b.get(64) && b.get(129));
        assert!(!b.get(1));
        b.clear(64);
        assert!(!b.get(64));
        assert_eq!(b.count_ones(), 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_out_of_range_panics() {
        BitVec::zeros(10).get(10);
    }

    #[test]
    fn boolean_algebra() {
        let a = BitVec::from_indices(100, [1, 5, 64, 99]);
        let b = BitVec::from_indices(100, [5, 64, 70]);
        assert_eq!(a.and(&b).iter_ones().collect::<Vec<_>>(), vec![5, 64]);
        assert_eq!(
            a.or(&b).iter_ones().collect::<Vec<_>>(),
            vec![1, 5, 64, 70, 99]
        );
        assert_eq!(a.and_not(&b).iter_ones().collect::<Vec<_>>(), vec![1, 99]);
        assert_eq!(a.and_count(&b), 2);
    }

    #[test]
    fn not_respects_len() {
        let mut a = BitVec::from_indices(65, [0, 64]);
        a.not_assign();
        assert_eq!(a.count_ones(), 63);
        assert!(!a.get(0));
        assert!(!a.get(64));
        assert!(a.get(1));
    }

    #[test]
    fn subset() {
        let a = BitVec::from_indices(80, [3, 40]);
        let b = BitVec::from_indices(80, [3, 40, 77]);
        assert!(a.is_subset_of(&b));
        assert!(!b.is_subset_of(&a));
        assert!(a.is_subset_of(&a));
        assert!(BitVec::zeros(80).is_subset_of(&a));
    }

    #[test]
    fn iter_ones_across_words() {
        let idx = vec![0, 31, 63, 64, 127, 128, 199];
        let b = BitVec::from_indices(200, idx.clone());
        assert_eq!(b.iter_ones().collect::<Vec<_>>(), idx);
    }

    #[test]
    fn iter_ones_empty() {
        assert_eq!(BitVec::zeros(0).iter_ones().count(), 0);
        assert_eq!(BitVec::zeros(100).iter_ones().count(), 0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn and_length_mismatch_panics() {
        let _ = BitVec::zeros(10).and(&BitVec::zeros(11));
    }

    #[test]
    fn fused_counts_match_materialized() {
        let a = BitVec::from_indices(300, (0..300).step_by(2));
        let b = BitVec::from_indices(300, (0..300).step_by(3));
        let c = BitVec::from_indices(300, (0..300).step_by(5));
        assert_eq!(a.and_not_count(&b), a.and_not(&b).count_ones());
        assert_eq!(
            a.count_and_andnot(&b, &c),
            a.and(&b).and_not(&c).count_ones()
        );
    }

    #[test]
    fn intersect_into_matches_chained_and() {
        let a = BitVec::from_indices(200, (0..200).step_by(2));
        let b = BitVec::from_indices(200, (0..200).step_by(3));
        let c = BitVec::from_indices(200, (0..200).step_by(7));
        let mut scratch = BitVec::ones(200); // stale contents must be overwritten
        BitVec::intersect_into(&mut scratch, &[&a, &b, &c]);
        assert_eq!(scratch, a.and(&b).and(&c));
        BitVec::intersect_into(&mut scratch, &[&a]);
        assert_eq!(scratch, a);
    }

    #[test]
    #[should_panic(expected = "at least one column")]
    fn intersect_into_rejects_empty() {
        BitVec::intersect_into(&mut BitVec::zeros(10), &[]);
    }

    #[test]
    fn copy_from_reuses_storage() {
        let a = BitVec::from_indices(100, [1, 64, 99]);
        let mut dst = BitVec::ones(100);
        dst.copy_from(&a);
        assert_eq!(dst, a);
    }

    #[test]
    fn iter_ones_and_not_matches_materialized() {
        let a = BitVec::from_indices(500, (0..500).step_by(2));
        let b = BitVec::from_indices(500, (0..500).step_by(6));
        let fused: Vec<usize> = a.iter_ones_and_not(&b).collect();
        let materialized: Vec<usize> = a.and_not(&b).iter_ones().collect();
        assert_eq!(fused, materialized);
        assert_eq!(
            BitVec::zeros(0)
                .iter_ones_and_not(&BitVec::zeros(0))
                .count(),
            0
        );
        let z = BitVec::zeros(500);
        assert_eq!(a.iter_ones_and_not(&a).count(), 0);
        assert_eq!(z.iter_ones_and_not(&b).count(), 0);
    }

    #[test]
    fn split_at_word_partitions_bits() {
        let idx = vec![0usize, 31, 63, 64, 127, 128, 199];
        let b = BitVec::from_indices(200, idx.clone());
        for w in [0usize, 1, 2, 3, 4] {
            let (lo, hi) = b.split_at_word(w);
            assert_eq!(lo.len() + hi.len(), 200, "split at word {w}");
            assert_eq!(lo.count_ones() + hi.count_ones(), idx.len());
            let cut = w * 64;
            let left: Vec<usize> = lo.iter_ones().collect();
            let right: Vec<usize> = hi.iter_ones().map(|i| i + cut).collect();
            let rebuilt: Vec<usize> = left.into_iter().chain(right).collect();
            assert_eq!(rebuilt, idx, "split at word {w}");
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn split_past_end_panics() {
        BitVec::zeros(100).split_at_word(3);
    }

    #[test]
    fn slice_words_matches_manual_window() {
        let b = BitVec::from_indices(300, (0..300).step_by(3));
        let s = b.slice_words(1, 3); // bits 64..192
        assert_eq!(s.len(), 128);
        let expected: Vec<usize> = (0..300)
            .step_by(3)
            .filter(|&i| (64..192).contains(&i))
            .map(|i| i - 64)
            .collect();
        assert_eq!(s.iter_ones().collect::<Vec<_>>(), expected);
        assert_eq!(s.count_ones(), expected.len());
        assert!(s.get(2)); // global bit 66
                           // Final, partial-word slice: padding stays exact.
        let tail = b.slice_words(4, 5); // bits 256..300
        assert_eq!(tail.len(), 44);
        assert_eq!(tail.count_ones(), (256..300).filter(|i| i % 3 == 0).count());
        // Whole-vector view.
        assert_eq!(b.as_bit_slice().count_ones(), b.count_ones());
        assert!(b.slice_words(2, 2).is_empty());
    }

    #[test]
    fn and_not_count_slice_matches_dense() {
        let f = BitVec::from_indices(500, (0..500).step_by(6));
        // Word-aligned shard [128, 320): compare against the dense oracle
        // restricted to the same range.
        let shard: Vec<usize> = (128..320).filter(|i| i % 2 == 0).map(|i| i - 128).collect();
        let p = BitVec::from_indices(192, shard);
        let fs = f.slice_words(2, 5);
        assert_eq!(fs.len(), 192);
        let expected = (128..320).filter(|i| i % 2 == 0 && i % 6 != 0).count();
        assert_eq!(p.and_not_count_slice(fs), expected);
    }

    #[test]
    fn debug_is_compact() {
        let b = BitVec::from_indices(10, [1, 3]);
        let s = format!("{b:?}");
        assert!(s.contains("[10;"));
        assert!(s.contains("1"));
    }

    #[test]
    fn from_words_roundtrips_and_rejects_bad_forms() {
        for len in [0usize, 1, 63, 64, 65, 200] {
            let b = BitVec::from_indices(len, (0..len).step_by(3));
            let rebuilt = BitVec::from_words(b.as_words().to_vec(), len).unwrap();
            assert_eq!(rebuilt, b, "len {len}");
        }
        // Wrong word count.
        assert!(BitVec::from_words(vec![0; 2], 64).is_err());
        assert!(BitVec::from_words(vec![], 1).is_err());
        // Dirty padding beyond len.
        assert!(BitVec::from_words(vec![1u64 << 10], 10).is_err());
        assert!(BitVec::from_words(vec![u64::MAX, u64::MAX], 70).is_err());
    }

    #[test]
    fn push_grows_across_word_boundaries() {
        let mut b = BitVec::zeros(0);
        let pattern = |i: usize| i.is_multiple_of(3) || i == 64 || i == 127;
        for i in 0..200 {
            b.push(pattern(i));
            assert_eq!(b.len(), i + 1);
            assert_eq!(b.get(i), pattern(i), "bit {i}");
        }
        assert_eq!(b.count_ones(), (0..200).filter(|&i| pattern(i)).count());
        // Padding invariant survives: word count is exact and ops work.
        assert_eq!(b.as_words().len(), 200usize.div_ceil(64));
        let mut c = BitVec::ones(200);
        c.and_assign(&b);
        assert_eq!(c, b);
        // Pushing onto a non-empty fixed-size vector also works.
        let mut d = BitVec::ones(64);
        d.push(false);
        d.push(true);
        assert_eq!(d.len(), 66);
        assert!(!d.get(64));
        assert!(d.get(65));
        assert_eq!(d.count_ones(), 65);
    }

    /// A shared-backed copy of `b`, plus the backing buffer for checks.
    fn share(b: &BitVec) -> (BitVec, Arc<[u64]>) {
        let buf: Arc<[u64]> = b.as_words().to_vec().into();
        let sw = SharedWords::new(buf.clone(), 0, buf.len()).unwrap();
        (BitVec::from_shared(sw, b.len()).unwrap(), buf)
    }

    #[test]
    fn shared_bitvec_is_interchangeable_with_owned() {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let owned = BitVec::from_indices(200, (0..200).step_by(3));
        let (shared, _buf) = share(&owned);
        assert!(shared.is_shared());
        assert!(!owned.is_shared());
        assert_eq!(shared, owned);
        assert_eq!(shared.count_ones(), owned.count_ones());
        assert_eq!(
            shared.iter_ones().collect::<Vec<_>>(),
            owned.iter_ones().collect::<Vec<_>>()
        );
        let other = BitVec::from_indices(200, (0..200).step_by(7));
        assert_eq!(shared.and_count(&other), owned.and_count(&other));
        assert_eq!(
            shared.count_and_andnot(&other, &owned),
            owned.count_and_andnot(&other, &owned)
        );
        let mut h1 = DefaultHasher::new();
        let mut h2 = DefaultHasher::new();
        shared.hash(&mut h1);
        owned.hash(&mut h2);
        assert_eq!(h1.finish(), h2.finish());
    }

    #[test]
    fn shared_bitvec_promotes_on_mutation() {
        let base = BitVec::from_indices(130, [0, 64, 129]);
        // Every mutating entry point must promote and leave the backing
        // buffer untouched.
        type Mutation = Box<dyn Fn(&mut BitVec)>;
        let muts: Vec<(&str, Mutation)> = vec![
            ("set", Box::new(|b: &mut BitVec| b.set(1))),
            ("clear", Box::new(|b: &mut BitVec| b.clear(0))),
            ("push", Box::new(|b: &mut BitVec| b.push(true))),
            ("set_all", Box::new(|b: &mut BitVec| b.set_all())),
            ("clear_all", Box::new(|b: &mut BitVec| b.clear_all())),
            ("not", Box::new(|b: &mut BitVec| b.not_assign())),
            (
                "and_assign",
                Box::new(|b: &mut BitVec| {
                    let m = BitVec::ones(b.len());
                    b.and_assign(&m)
                }),
            ),
        ];
        for (name, m) in muts {
            let (mut shared, buf) = share(&base);
            let before: Vec<u64> = buf.to_vec();
            m(&mut shared);
            assert!(!shared.is_shared(), "{name} must promote");
            assert_eq!(&buf[..], &before[..], "{name} must not write the backing");
        }
        // A clone of a shared vector stays shared and promotes independently.
        let (shared, _buf) = share(&base);
        let mut c = shared.clone();
        assert!(c.is_shared());
        c.set(2);
        assert!(!c.is_shared());
        assert!(shared.is_shared());
        assert!(!shared.get(2));
        assert!(c.get(2));
    }

    #[test]
    fn from_shared_validates_canonical_form() {
        let buf: Arc<[u64]> = vec![u64::MAX, u64::MAX].into();
        // Wrong word count for the bit length.
        let sw = SharedWords::new(buf.clone(), 0, 2).unwrap();
        assert!(BitVec::from_shared(sw, 64).is_err());
        // Dirty padding beyond len.
        let sw = SharedWords::new(buf.clone(), 0, 2).unwrap();
        assert!(BitVec::from_shared(sw, 70).is_err());
        // Valid full-word form.
        let sw = SharedWords::new(buf, 0, 2).unwrap();
        let b = BitVec::from_shared(sw, 128).unwrap();
        assert_eq!(b.count_ones(), 128);
    }
}
