//! CONCISE — Compressed 'n' Composable Integer Set (Colantonio & Di Pietro,
//! Information Processing Letters 110(16), 2010). The codec the paper
//! selects for IBIG, because its *mixed fill* words ("fill plus one flipped
//! bit") compress slightly better than WAH at comparable speed (§4.4,
//! Fig. 10).
//!
//! 32-bit word layout:
//!
//! * **literal** — bit 31 = 1, bits 0..30 hold one 31-bit block verbatim;
//! * **fill** — bit 31 = 0, bit 30 = fill bit, bits 25..29 hold a 5-bit
//!   *position*: 0 means a pure fill; `p > 0` means the **first** block of
//!   the run has bit `p − 1` flipped relative to the fill bit. Bits 0..24
//!   hold `n`, the number of blocks in the run **minus one**.

use crate::runs::{
    and_count_runs, and_runs, and_runs_into_dense, blocks_of, count_ones_runs,
    decompress_runs_into, or_runs, runs_from_blocks, Run, RunStream, BLOCK_MASK,
};
use crate::{BitVec, CompressedBitmap};

const LIT_FLAG: u32 = 1 << 31;
const FILL_BIT: u32 = 1 << 30;
const POS_SHIFT: u32 = 25;
const POS_MASK: u32 = 0b1_1111 << POS_SHIFT;
const CNT_MASK: u32 = (1 << 25) - 1;
/// Maximum blocks a single fill word can represent (`n + 1` blocks).
const MAX_FILL_BLOCKS: u64 = 1 << 25;

/// A CONCISE-compressed bitmap.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Concise {
    words: Vec<u32>,
    len: usize,
}

impl Concise {
    /// Emit fill words covering `blocks` pure-fill blocks.
    fn emit_fill(words: &mut Vec<u32>, ones: bool, mut blocks: u64) {
        while blocks > 0 {
            let chunk = blocks.min(MAX_FILL_BLOCKS);
            let mut w = (chunk - 1) as u32 & CNT_MASK;
            if ones {
                w |= FILL_BIT;
            }
            words.push(w);
            blocks -= chunk;
        }
    }

    /// Emit a mixed fill: `total` blocks whose first block has bit
    /// `pos − 1` flipped, followed by pure fill.
    fn emit_mixed_fill(words: &mut Vec<u32>, ones: bool, pos: u32, total: u64) {
        debug_assert!((1..=31).contains(&pos));
        let chunk = total.min(MAX_FILL_BLOCKS);
        let mut w = (chunk - 1) as u32 & CNT_MASK;
        w |= pos << POS_SHIFT;
        if ones {
            w |= FILL_BIT;
        }
        words.push(w);
        if total > chunk {
            Self::emit_fill(words, ones, total - chunk);
        }
    }

    /// Build from a canonical run sequence, applying the mixed-fill
    /// optimization on `Literal` + `Fill` adjacencies.
    fn from_runs(runs: &[Run], len: usize) -> Self {
        let mut words = Vec::new();
        let mut i = 0;
        while i < runs.len() {
            match runs[i] {
                Run::Fill { ones, blocks } => {
                    Self::emit_fill(&mut words, ones, blocks);
                    i += 1;
                }
                Run::Literal(x) => {
                    if let Some(&Run::Fill { ones, blocks }) = runs.get(i + 1) {
                        // Does the literal equal the upcoming fill pattern
                        // with exactly one bit flipped?
                        let diff = if ones { (!x) & BLOCK_MASK } else { x };
                        if diff.count_ones() == 1 {
                            let pos = diff.trailing_zeros() + 1;
                            Self::emit_mixed_fill(&mut words, ones, pos, blocks + 1);
                            i += 2;
                            continue;
                        }
                    }
                    words.push(LIT_FLAG | (x & BLOCK_MASK));
                    i += 1;
                }
            }
        }
        Concise { words, len }
    }

    /// Iterate the runs encoded in this bitmap (mixed fills decompose into a
    /// literal followed by a pure fill).
    pub fn runs(&self) -> ConciseRuns<'_> {
        ConciseRuns {
            words: &self.words,
            idx: 0,
            pending: None,
        }
    }

    /// Raw encoded words (for storage accounting).
    pub fn as_words(&self) -> &[u32] {
        &self.words
    }
}

/// Run iterator over a [`Concise`] bitmap.
pub struct ConciseRuns<'a> {
    words: &'a [u32],
    idx: usize,
    pending: Option<Run>,
}

impl<'a> Iterator for ConciseRuns<'a> {
    type Item = Run;

    fn next(&mut self) -> Option<Run> {
        if let Some(r) = self.pending.take() {
            return Some(r);
        }
        let w = *self.words.get(self.idx)?;
        self.idx += 1;
        if w & LIT_FLAG != 0 {
            return Some(Run::Literal(w & BLOCK_MASK));
        }
        let ones = w & FILL_BIT != 0;
        let pos = (w & POS_MASK) >> POS_SHIFT;
        let blocks = (w & CNT_MASK) as u64 + 1;
        if pos == 0 {
            return Some(Run::Fill { ones, blocks });
        }
        // Mixed fill: first block has bit pos-1 flipped.
        let pattern = if ones { BLOCK_MASK } else { 0 };
        let first = pattern ^ (1 << (pos - 1));
        if blocks > 1 {
            self.pending = Some(Run::Fill {
                ones,
                blocks: blocks - 1,
            });
        }
        Some(Run::Literal(first))
    }
}

impl CompressedBitmap for Concise {
    fn compress(bits: &BitVec) -> Self {
        Concise::from_runs(&runs_from_blocks(&blocks_of(bits)), bits.len())
    }

    fn decompress(&self) -> BitVec {
        let mut dst = BitVec::zeros(self.len);
        decompress_runs_into(self.runs(), &mut dst);
        dst
    }

    fn decompress_into(&self, dst: &mut BitVec) {
        assert_eq!(dst.len(), self.len, "length mismatch");
        decompress_runs_into(self.runs(), dst);
    }

    fn and_dense(&self, dst: &mut BitVec) {
        assert_eq!(dst.len(), self.len, "length mismatch");
        and_runs_into_dense(self.runs(), dst);
    }

    fn len(&self) -> usize {
        self.len
    }

    fn words(&self) -> usize {
        self.words.len()
    }

    fn count_ones(&self) -> usize {
        count_ones_runs(self.runs(), self.len)
    }

    fn and(&self, other: &Self) -> Self {
        assert_eq!(self.len, other.len, "length mismatch");
        let merged = and_runs(RunStream::new(self.runs()), RunStream::new(other.runs()));
        Concise::from_runs(&merged, self.len)
    }

    fn or(&self, other: &Self) -> Self {
        assert_eq!(self.len, other.len, "length mismatch");
        let merged = or_runs(RunStream::new(self.runs()), RunStream::new(other.runs()));
        Concise::from_runs(&merged, self.len)
    }

    fn and_count(&self, other: &Self) -> usize {
        assert_eq!(self.len, other.len, "length mismatch");
        and_count_runs(
            RunStream::new(self.runs()),
            RunStream::new(other.runs()),
            self.len,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runs::BLOCK_BITS;
    use crate::Wah;

    fn patterned(len: usize, step: usize) -> BitVec {
        BitVec::from_indices(len, (0..len).step_by(step))
    }

    #[test]
    fn roundtrip_patterns() {
        for len in [0, 1, 30, 31, 32, 62, 100, 1000] {
            for step in [1, 2, 31, 63] {
                let b = patterned(len, step.max(1));
                let c = Concise::compress(&b);
                assert_eq!(c.decompress(), b, "len={len} step={step}");
                assert_eq!(c.count_ones(), b.count_ones(), "len={len} step={step}");
            }
        }
    }

    #[test]
    fn mixed_fill_beats_wah_on_sparse_sets() {
        // A single set bit every 31*k bits: CONCISE packs (literal + fill)
        // pairs into single mixed-fill words; WAH cannot.
        let mut b = BitVec::zeros(31 * 1000);
        for i in (0..31 * 1000).step_by(31 * 100) {
            b.set(i);
        }
        let c = Concise::compress(&b);
        let w = Wah::compress(&b);
        assert!(
            c.words() < w.words(),
            "CONCISE {} vs WAH {}",
            c.words(),
            w.words()
        );
        assert_eq!(c.decompress(), b);
    }

    #[test]
    fn mixed_fill_one_runs() {
        // All ones except one cleared bit per long run.
        let mut b = BitVec::ones(31 * 300);
        b.clear(0);
        b.clear(31 * 100 + 5);
        let c = Concise::compress(&b);
        assert_eq!(c.decompress(), b);
        assert_eq!(c.count_ones(), 31 * 300 - 2);
        let w = Wah::compress(&b);
        assert!(c.words() <= w.words());
    }

    #[test]
    fn all_ones_single_word() {
        let b = BitVec::ones(31 * 500);
        let c = Concise::compress(&b);
        assert_eq!(c.words(), 1);
        assert_eq!(c.count_ones(), 31 * 500);
    }

    #[test]
    fn and_or_match_dense() {
        let a = patterned(997, 3);
        let b = patterned(997, 5);
        let ca = Concise::compress(&a);
        let cb = Concise::compress(&b);
        assert_eq!(ca.and(&cb).decompress(), a.and(&b));
        assert_eq!(ca.or(&cb).decompress(), a.or(&b));
        assert_eq!(ca.and_count(&cb), a.and_count(&b));
    }

    #[test]
    fn and_of_sparse_mixed_fills() {
        let mut a = BitVec::zeros(31 * 200);
        let mut b = BitVec::zeros(31 * 200);
        a.set(42);
        a.set(31 * 150);
        b.set(42);
        b.set(31 * 199);
        let ca = Concise::compress(&a);
        let cb = Concise::compress(&b);
        assert_eq!(ca.and(&cb).decompress(), a.and(&b));
        assert_eq!(ca.and_count(&cb), 1);
        assert_eq!(ca.or(&cb).count_ones(), 3);
    }

    #[test]
    fn mixed_fill_word_is_exactly_one_word() {
        // literal(single bit) + zero fill => one mixed word.
        let mut b = BitVec::zeros(31 * 10);
        b.set(4);
        let c = Concise::compress(&b);
        assert_eq!(c.words(), 1);
        let runs: Vec<Run> = c.runs().collect();
        assert_eq!(runs[0], Run::Literal(1 << 4));
        assert_eq!(
            runs[1],
            Run::Fill {
                ones: false,
                blocks: 9
            }
        );
    }

    #[test]
    fn giant_mixed_fill_chunks() {
        let total = MAX_FILL_BLOCKS + 3;
        let mut words = Vec::new();
        Concise::emit_mixed_fill(&mut words, false, 3, total);
        let c = Concise {
            words,
            len: total as usize * BLOCK_BITS,
        };
        assert_eq!(c.count_ones(), 1);
        assert_eq!(c.words(), 2);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn or_rejects_length_mismatch() {
        let a = Concise::compress(&BitVec::zeros(10));
        let b = Concise::compress(&BitVec::zeros(20));
        let _ = a.or(&b);
    }

    #[test]
    fn wah_and_concise_agree() {
        for step in [2, 7, 31, 100] {
            let b = patterned(31 * 64 + 17, step);
            let c = Concise::compress(&b);
            let w = Wah::compress(&b);
            assert_eq!(c.decompress(), w.decompress());
            assert_eq!(c.count_ones(), w.count_ones());
        }
    }
}
