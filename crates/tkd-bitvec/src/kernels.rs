//! Wide-lane popcount kernels — the single choke point for every fused
//! word-array count in the engine.
//!
//! The paper's bitmap algorithms (BIG/IBIG) are popcount-bound: scratch
//! fills, the Heuristic-2 early exit (`MaxBitScore`), tombstone repair and
//! the suffix-table rebuild all reduce to "AND a few word arrays, count the
//! ones". Routing them through this module means one implementation choice
//! accelerates every caller.
//!
//! Three tiers, selected once per process:
//!
//! 1. **AVX-512 VPOPCNTDQ** (x86-64, runtime-detected): eight 64-bit lanes
//!    per instruction via the stable `std::arch` intrinsics.
//! 2. **AVX2** (x86-64, runtime-detected): four lanes using the
//!    Muła nibble-LUT popcount (`pshufb` + `psadbw`).
//! 3. **Portable fallback**: an equal-length-reborrowed zip loop. This is
//!    deliberately *not* hand-unrolled: measurements show LLVM already
//!    auto-vectorizes this shape into SWAR lanes (SSE2/NEON), and manual
//!    chunks-of-4/8 accumulator unrolls defeat the vectorizer and run
//!    ~0.75–0.9× as fast. With the `simd` cargo feature on a toolchain
//!    that has `std::simd` (detected by a build-script probe), the
//!    fallback instead uses explicit `u64x8` lanes.
//!
//! The [`scalar`] submodule keeps the naive reference loops: they are the
//! parity oracle for tests and the baseline the kernel microbenches (and
//! the `--exp compare` regression gate) measure the wide lanes against.

/// Naive single-word reference loops.
///
/// These are *specified behavior*: the wide-lane kernels must return
/// bit-identical counts. Benches compare against these, and the CI
/// regression gate fails if the dispatched kernels stop beating them.
pub mod scalar {
    /// Popcount of `words`.
    pub fn popcount(words: &[u64]) -> usize {
        words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Popcount of `a & b` over the common prefix.
    pub fn and_count(a: &[u64], b: &[u64]) -> usize {
        a.iter()
            .zip(b)
            .map(|(&x, &y)| (x & y).count_ones() as usize)
            .sum()
    }

    /// Popcount of `a & !b` over the common prefix.
    pub fn and_not_count(a: &[u64], b: &[u64]) -> usize {
        a.iter()
            .zip(b)
            .map(|(&x, &y)| (x & !y).count_ones() as usize)
            .sum()
    }

    /// Popcount of the ternary `a & b & !c` over the common prefix.
    pub fn count_and_andnot(a: &[u64], b: &[u64], c: &[u64]) -> usize {
        a.iter()
            .zip(b)
            .zip(c)
            .map(|((&x, &y), &z)| (x & y & !z).count_ones() as usize)
            .sum()
    }
}

/// Portable fallback: reborrow to equal length so LLVM elides bounds
/// checks and auto-vectorizes the loop body into SWAR lanes.
#[cfg(not(has_portable_simd))]
mod fallback {
    pub fn popcount(words: &[u64]) -> usize {
        words.iter().map(|w| w.count_ones() as usize).sum()
    }

    pub fn and_count(a: &[u64], b: &[u64]) -> usize {
        let n = a.len().min(b.len());
        let (a, b) = (&a[..n], &b[..n]);
        let mut s = 0usize;
        for i in 0..n {
            s += (a[i] & b[i]).count_ones() as usize;
        }
        s
    }

    pub fn and_not_count(a: &[u64], b: &[u64]) -> usize {
        let n = a.len().min(b.len());
        let (a, b) = (&a[..n], &b[..n]);
        let mut s = 0usize;
        for i in 0..n {
            s += (a[i] & !b[i]).count_ones() as usize;
        }
        s
    }

    pub fn count_and_andnot(a: &[u64], b: &[u64], c: &[u64]) -> usize {
        let n = a.len().min(b.len()).min(c.len());
        let (a, b, c) = (&a[..n], &b[..n], &c[..n]);
        let mut s = 0usize;
        for i in 0..n {
            s += (a[i] & b[i] & !c[i]).count_ones() as usize;
        }
        s
    }
}

/// Explicit eight-lane `std::simd` fallback, compiled only when the `simd`
/// cargo feature is enabled *and* the build-script probe confirmed the
/// toolchain ships `std::simd` with the APIs we use (nightly). On stable
/// the probe fails and the portable fallback above is used instead, so
/// `--features simd` builds everywhere.
#[cfg(has_portable_simd)]
mod fallback {
    use std::simd::{num::SimdUint, u64x8};

    pub fn popcount(words: &[u64]) -> usize {
        let chunks = words.chunks_exact(8);
        let rem = chunks.remainder();
        let mut acc = u64x8::splat(0);
        for ch in chunks {
            acc += u64x8::from_slice(ch).count_ones();
        }
        acc.reduce_sum() as usize + rem.iter().map(|w| w.count_ones() as usize).sum::<usize>()
    }

    pub fn and_count(a: &[u64], b: &[u64]) -> usize {
        let n = a.len().min(b.len());
        let (a, b) = (&a[..n], &b[..n]);
        let mut acc = u64x8::splat(0);
        let mut i = 0;
        while i + 8 <= n {
            let t = u64x8::from_slice(&a[i..i + 8]) & u64x8::from_slice(&b[i..i + 8]);
            acc += t.count_ones();
            i += 8;
        }
        let mut s = acc.reduce_sum() as usize;
        while i < n {
            s += (a[i] & b[i]).count_ones() as usize;
            i += 1;
        }
        s
    }

    pub fn and_not_count(a: &[u64], b: &[u64]) -> usize {
        let n = a.len().min(b.len());
        let (a, b) = (&a[..n], &b[..n]);
        let mut acc = u64x8::splat(0);
        let mut i = 0;
        while i + 8 <= n {
            let t = u64x8::from_slice(&a[i..i + 8]) & !u64x8::from_slice(&b[i..i + 8]);
            acc += t.count_ones();
            i += 8;
        }
        let mut s = acc.reduce_sum() as usize;
        while i < n {
            s += (a[i] & !b[i]).count_ones() as usize;
            i += 1;
        }
        s
    }

    pub fn count_and_andnot(a: &[u64], b: &[u64], c: &[u64]) -> usize {
        let n = a.len().min(b.len()).min(c.len());
        let (a, b, c) = (&a[..n], &b[..n], &c[..n]);
        let mut acc = u64x8::splat(0);
        let mut i = 0;
        while i + 8 <= n {
            let t = u64x8::from_slice(&a[i..i + 8])
                & u64x8::from_slice(&b[i..i + 8])
                & !u64x8::from_slice(&c[i..i + 8]);
            acc += t.count_ones();
            i += 8;
        }
        let mut s = acc.reduce_sum() as usize;
        while i < n {
            s += (a[i] & b[i] & !c[i]).count_ones() as usize;
            i += 1;
        }
        s
    }
}

/// Runtime-dispatched x86-64 wide lanes over the stable `std::arch`
/// intrinsics. Every function is gated behind `is_x86_feature_detected!`
/// at the dispatch site; the `#[target_feature]` attributes make the
/// bodies sound only under that check, hence the `unsafe fn`s.
#[cfg(target_arch = "x86_64")]
mod x86 {
    use core::arch::x86_64::*;

    /// # Safety
    /// Caller must have verified `avx512f` and `avx512vpopcntdq`.
    #[target_feature(enable = "avx512f,avx512vpopcntdq")]
    pub unsafe fn popcount_avx512(words: &[u64]) -> usize {
        let n = words.len();
        let mut acc = _mm512_setzero_si512();
        let mut i = 0;
        while i + 8 <= n {
            let v = _mm512_loadu_si512(words.as_ptr().add(i) as *const _);
            acc = _mm512_add_epi64(acc, _mm512_popcnt_epi64(v));
            i += 8;
        }
        let mut s = _mm512_reduce_add_epi64(acc) as usize;
        while i < n {
            s += words[i].count_ones() as usize;
            i += 1;
        }
        s
    }

    /// # Safety
    /// Caller must have verified `avx512f` and `avx512vpopcntdq`.
    #[target_feature(enable = "avx512f,avx512vpopcntdq")]
    pub unsafe fn and_count_avx512(a: &[u64], b: &[u64]) -> usize {
        let n = a.len().min(b.len());
        let mut acc = _mm512_setzero_si512();
        let mut i = 0;
        while i + 8 <= n {
            let va = _mm512_loadu_si512(a.as_ptr().add(i) as *const _);
            let vb = _mm512_loadu_si512(b.as_ptr().add(i) as *const _);
            let t = _mm512_and_si512(va, vb);
            acc = _mm512_add_epi64(acc, _mm512_popcnt_epi64(t));
            i += 8;
        }
        let mut s = _mm512_reduce_add_epi64(acc) as usize;
        while i < n {
            s += (a[i] & b[i]).count_ones() as usize;
            i += 1;
        }
        s
    }

    /// # Safety
    /// Caller must have verified `avx512f` and `avx512vpopcntdq`.
    #[target_feature(enable = "avx512f,avx512vpopcntdq")]
    pub unsafe fn and_not_count_avx512(a: &[u64], b: &[u64]) -> usize {
        let n = a.len().min(b.len());
        let mut acc = _mm512_setzero_si512();
        let mut i = 0;
        while i + 8 <= n {
            let va = _mm512_loadu_si512(a.as_ptr().add(i) as *const _);
            let vb = _mm512_loadu_si512(b.as_ptr().add(i) as *const _);
            // andnot computes `!arg1 & arg2`, so pass `b` first.
            let t = _mm512_andnot_si512(vb, va);
            acc = _mm512_add_epi64(acc, _mm512_popcnt_epi64(t));
            i += 8;
        }
        let mut s = _mm512_reduce_add_epi64(acc) as usize;
        while i < n {
            s += (a[i] & !b[i]).count_ones() as usize;
            i += 1;
        }
        s
    }

    /// # Safety
    /// Caller must have verified `avx512f` and `avx512vpopcntdq`.
    #[target_feature(enable = "avx512f,avx512vpopcntdq")]
    pub unsafe fn count_and_andnot_avx512(a: &[u64], b: &[u64], c: &[u64]) -> usize {
        let n = a.len().min(b.len()).min(c.len());
        let mut acc = _mm512_setzero_si512();
        let mut i = 0;
        while i + 8 <= n {
            let va = _mm512_loadu_si512(a.as_ptr().add(i) as *const _);
            let vb = _mm512_loadu_si512(b.as_ptr().add(i) as *const _);
            let vc = _mm512_loadu_si512(c.as_ptr().add(i) as *const _);
            let t = _mm512_andnot_si512(vc, _mm512_and_si512(va, vb));
            acc = _mm512_add_epi64(acc, _mm512_popcnt_epi64(t));
            i += 8;
        }
        let mut s = _mm512_reduce_add_epi64(acc) as usize;
        while i < n {
            s += (a[i] & b[i] & !c[i]).count_ones() as usize;
            i += 1;
        }
        s
    }

    /// Muła nibble-LUT popcount of one 256-bit lane, accumulated into
    /// per-64-bit-lane sums via `psadbw`.
    ///
    /// # Safety
    /// Caller must have verified `avx2`.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn popcnt256(acc: __m256i, v: __m256i) -> __m256i {
        let lut = _mm256_setr_epi8(
            0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4, 0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2,
            3, 3, 4,
        );
        let low = _mm256_set1_epi8(0x0f);
        let lo = _mm256_and_si256(v, low);
        let hi = _mm256_and_si256(_mm256_srli_epi32(v, 4), low);
        let cnt = _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo), _mm256_shuffle_epi8(lut, hi));
        _mm256_add_epi64(acc, _mm256_sad_epu8(cnt, _mm256_setzero_si256()))
    }

    /// # Safety
    /// Caller must have verified `avx2`.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn reduce256(acc: __m256i) -> usize {
        let mut buf = [0u64; 4];
        _mm256_storeu_si256(buf.as_mut_ptr() as *mut _, acc);
        (buf[0] + buf[1] + buf[2] + buf[3]) as usize
    }

    /// # Safety
    /// Caller must have verified `avx2`.
    #[target_feature(enable = "avx2")]
    pub unsafe fn popcount_avx2(words: &[u64]) -> usize {
        let n = words.len();
        let mut acc = _mm256_setzero_si256();
        let mut i = 0;
        while i + 4 <= n {
            let v = _mm256_loadu_si256(words.as_ptr().add(i) as *const _);
            acc = popcnt256(acc, v);
            i += 4;
        }
        let mut s = reduce256(acc);
        while i < n {
            s += words[i].count_ones() as usize;
            i += 1;
        }
        s
    }

    /// # Safety
    /// Caller must have verified `avx2`.
    #[target_feature(enable = "avx2")]
    pub unsafe fn and_count_avx2(a: &[u64], b: &[u64]) -> usize {
        let n = a.len().min(b.len());
        let mut acc = _mm256_setzero_si256();
        let mut i = 0;
        while i + 4 <= n {
            let va = _mm256_loadu_si256(a.as_ptr().add(i) as *const _);
            let vb = _mm256_loadu_si256(b.as_ptr().add(i) as *const _);
            acc = popcnt256(acc, _mm256_and_si256(va, vb));
            i += 4;
        }
        let mut s = reduce256(acc);
        while i < n {
            s += (a[i] & b[i]).count_ones() as usize;
            i += 1;
        }
        s
    }

    /// # Safety
    /// Caller must have verified `avx2`.
    #[target_feature(enable = "avx2")]
    pub unsafe fn and_not_count_avx2(a: &[u64], b: &[u64]) -> usize {
        let n = a.len().min(b.len());
        let mut acc = _mm256_setzero_si256();
        let mut i = 0;
        while i + 4 <= n {
            let va = _mm256_loadu_si256(a.as_ptr().add(i) as *const _);
            let vb = _mm256_loadu_si256(b.as_ptr().add(i) as *const _);
            acc = popcnt256(acc, _mm256_andnot_si256(vb, va));
            i += 4;
        }
        let mut s = reduce256(acc);
        while i < n {
            s += (a[i] & !b[i]).count_ones() as usize;
            i += 1;
        }
        s
    }

    /// # Safety
    /// Caller must have verified `avx2`.
    #[target_feature(enable = "avx2")]
    pub unsafe fn count_and_andnot_avx2(a: &[u64], b: &[u64], c: &[u64]) -> usize {
        let n = a.len().min(b.len()).min(c.len());
        let mut acc = _mm256_setzero_si256();
        let mut i = 0;
        while i + 4 <= n {
            let va = _mm256_loadu_si256(a.as_ptr().add(i) as *const _);
            let vb = _mm256_loadu_si256(b.as_ptr().add(i) as *const _);
            let vc = _mm256_loadu_si256(c.as_ptr().add(i) as *const _);
            acc = popcnt256(acc, _mm256_andnot_si256(vc, _mm256_and_si256(va, vb)));
            i += 4;
        }
        let mut s = reduce256(acc);
        while i < n {
            s += (a[i] & b[i] & !c[i]).count_ones() as usize;
            i += 1;
        }
        s
    }
}

/// Instruction tier selected for this process.
#[cfg(target_arch = "x86_64")]
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Level {
    /// AVX-512 with VPOPCNTDQ: eight 64-bit lanes per popcount.
    Avx512,
    /// AVX2 Muła nibble-LUT popcount: four 64-bit lanes.
    Avx2,
    /// Portable fallback.
    Portable,
}

#[cfg(target_arch = "x86_64")]
#[inline]
fn level() -> Level {
    use core::sync::atomic::{AtomicU8, Ordering};
    static LEVEL: AtomicU8 = AtomicU8::new(0);
    match LEVEL.load(Ordering::Relaxed) {
        1 => Level::Avx512,
        2 => Level::Avx2,
        3 => Level::Portable,
        _ => {
            let l = if is_x86_feature_detected!("avx512f")
                && is_x86_feature_detected!("avx512vpopcntdq")
            {
                Level::Avx512
            } else if is_x86_feature_detected!("avx2") {
                Level::Avx2
            } else {
                Level::Portable
            };
            LEVEL.store(
                match l {
                    Level::Avx512 => 1,
                    Level::Avx2 => 2,
                    Level::Portable => 3,
                },
                Ordering::Relaxed,
            );
            l
        }
    }
}

/// Human-readable name of the kernel tier in use — surfaced by benches so
/// committed artifacts record which lanes produced the numbers.
pub fn dispatch_name() -> &'static str {
    #[cfg(target_arch = "x86_64")]
    {
        match level() {
            Level::Avx512 => "avx512-vpopcntdq",
            Level::Avx2 => "avx2-mula",
            Level::Portable => portable_name(),
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        portable_name()
    }
}

fn portable_name() -> &'static str {
    #[cfg(has_portable_simd)]
    {
        "std-simd-u64x8"
    }
    #[cfg(not(has_portable_simd))]
    {
        "portable-autovec"
    }
}

/// Popcount of `words`.
#[inline]
pub fn popcount(words: &[u64]) -> usize {
    #[cfg(target_arch = "x86_64")]
    {
        // SAFETY: the matching feature set was runtime-detected by `level`.
        match level() {
            Level::Avx512 => return unsafe { x86::popcount_avx512(words) },
            Level::Avx2 => return unsafe { x86::popcount_avx2(words) },
            Level::Portable => {}
        }
    }
    fallback::popcount(words)
}

/// Popcount of `a & b` over the common prefix of the two word arrays.
#[inline]
pub fn and_count(a: &[u64], b: &[u64]) -> usize {
    #[cfg(target_arch = "x86_64")]
    {
        // SAFETY: the matching feature set was runtime-detected by `level`.
        match level() {
            Level::Avx512 => return unsafe { x86::and_count_avx512(a, b) },
            Level::Avx2 => return unsafe { x86::and_count_avx2(a, b) },
            Level::Portable => {}
        }
    }
    fallback::and_count(a, b)
}

/// Popcount of `a & !b` over the common prefix of the two word arrays.
#[inline]
pub fn and_not_count(a: &[u64], b: &[u64]) -> usize {
    #[cfg(target_arch = "x86_64")]
    {
        // SAFETY: the matching feature set was runtime-detected by `level`.
        match level() {
            Level::Avx512 => return unsafe { x86::and_not_count_avx512(a, b) },
            Level::Avx2 => return unsafe { x86::and_not_count_avx2(a, b) },
            Level::Portable => {}
        }
    }
    fallback::and_not_count(a, b)
}

/// Popcount of the ternary `a & b & !c` over the common prefix, fused —
/// no intermediate bit vector is materialized.
#[inline]
pub fn count_and_andnot(a: &[u64], b: &[u64], c: &[u64]) -> usize {
    #[cfg(target_arch = "x86_64")]
    {
        // SAFETY: the matching feature set was runtime-detected by `level`.
        match level() {
            Level::Avx512 => return unsafe { x86::count_and_andnot_avx512(a, b, c) },
            Level::Avx2 => return unsafe { x86::count_and_andnot_avx2(a, b, c) },
            Level::Portable => {}
        }
    }
    fallback::count_and_andnot(a, b, c)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xorshift(seed: u64) -> impl FnMut() -> u64 {
        let mut st = seed | 1;
        move || {
            st ^= st << 13;
            st ^= st >> 7;
            st ^= st << 17;
            st
        }
    }

    #[test]
    fn dispatched_kernels_match_scalar_reference() {
        let mut next = xorshift(0x9e37_79b9_7f4a_7c15);
        // Lengths straddling every remainder case for 4- and 8-lane loops.
        for n in [0usize, 1, 3, 4, 7, 8, 9, 15, 16, 17, 63, 64, 100, 157, 782] {
            let a: Vec<u64> = (0..n).map(|_| next()).collect();
            let b: Vec<u64> = (0..n).map(|_| next()).collect();
            let c: Vec<u64> = (0..n).map(|_| next()).collect();
            assert_eq!(popcount(&a), scalar::popcount(&a), "popcount n={n}");
            assert_eq!(and_count(&a, &b), scalar::and_count(&a, &b), "and n={n}");
            assert_eq!(
                and_not_count(&a, &b),
                scalar::and_not_count(&a, &b),
                "andnot n={n}"
            );
            assert_eq!(
                count_and_andnot(&a, &b, &c),
                scalar::count_and_andnot(&a, &b, &c),
                "ternary n={n}"
            );
        }
    }

    #[test]
    fn kernels_use_common_prefix_on_ragged_lengths() {
        let a = vec![u64::MAX; 10];
        let b = vec![u64::MAX; 7];
        let c = vec![0u64; 9];
        assert_eq!(and_count(&a, &b), 7 * 64);
        assert_eq!(and_not_count(&a, &c), 9 * 64);
        assert_eq!(count_and_andnot(&a, &b, &c), 7 * 64);
        assert_eq!(scalar::and_count(&a, &b), 7 * 64);
    }

    #[test]
    fn dispatch_name_is_stable_nonempty() {
        let n1 = dispatch_name();
        let n2 = dispatch_name();
        assert!(!n1.is_empty());
        assert_eq!(n1, n2);
    }
}
