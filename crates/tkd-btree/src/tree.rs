//! The B+-tree proper: insertion, deletion with rebalancing, point and rank
//! queries.

use crate::iter::{Iter, Range};
use crate::node::{Internal, Leaf, Node, NodeId};
use crate::DEFAULT_ORDER;
use std::borrow::Borrow;
use std::ops::RangeBounds;

/// An ordered map backed by a B+-tree (see the crate docs for the role it
/// plays in the paper's algorithms).
///
/// Keys are unique; inserting an existing key replaces its value. Entries
/// live only in leaves; internal nodes hold routing separators and subtree
/// entry counts for O(log N) rank queries.
#[derive(Clone)]
pub struct BPlusTree<K, V> {
    slots: Vec<Option<Node<K, V>>>,
    free: Vec<NodeId>,
    root: NodeId,
    order: usize,
    len: usize,
}

impl<K: Ord + Clone, V> Default for BPlusTree<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Ord + Clone, V> BPlusTree<K, V> {
    /// Empty tree with the default order.
    pub fn new() -> Self {
        Self::with_order(DEFAULT_ORDER)
    }

    /// Empty tree with branching factor `order` (max entries per leaf, max
    /// children per internal node).
    ///
    /// # Panics
    /// Panics if `order < 4`.
    pub fn with_order(order: usize) -> Self {
        assert!(order >= 4, "order must be at least 4");
        let mut t = BPlusTree {
            slots: Vec::new(),
            free: Vec::new(),
            root: 0,
            order,
            len: 0,
        };
        t.root = t.alloc(Node::Leaf(Leaf {
            keys: Vec::new(),
            values: Vec::new(),
            next: None,
        }));
        t
    }

    /// Rebuild a tree from strictly ascending `(key, value)` entries —
    /// the snapshot-load path: a persisted tree is stored as its sorted
    /// entry stream, and reloading through this constructor yields a
    /// deterministic shape (identical probe answers, identical
    /// re-serialization) without persisting node structure. Bottom-up
    /// bulk construction: `O(n)` total, no per-entry root descent — far
    /// below `n` repeated [`BPlusTree::insert`]s.
    ///
    /// # Errors
    /// Rejects out-of-order or duplicate keys instead of silently
    /// building a tree whose routing invariants are broken.
    pub fn from_sorted_entries(
        entries: impl IntoIterator<Item = (K, V)>,
    ) -> Result<Self, &'static str> {
        let entries: Vec<(K, V)> = entries.into_iter().collect();
        if entries.windows(2).any(|w| w[0].0 >= w[1].0) {
            return Err("entries must be strictly ascending by key");
        }
        let mut t = Self::new();
        t.bulk_build(entries);
        Ok(t)
    }

    /// Bottom-up bulk construction from sorted entries. Each level
    /// spreads its nodes' fills evenly (`⌈n/order⌉` nodes per level), so
    /// every non-root node meets its minimum fill and the shape is a
    /// function of `(n, order)` alone — deterministic across loads.
    fn bulk_build(&mut self, mut entries: Vec<(K, V)>) {
        let n = entries.len();
        self.len = n;
        if n == 0 {
            return; // keep the pre-allocated empty root leaf
        }
        let order = self.order;
        // Leaf level, forward-linked as it is laid down.
        let chunks = n.div_ceil(order);
        let (base, extra) = (n / chunks, n % chunks);
        let mut level: Vec<(K, NodeId, usize)> = Vec::with_capacity(chunks);
        let mut iter = entries.drain(..);
        let mut prev_leaf: Option<NodeId> = None;
        for c in 0..chunks {
            let size = base + usize::from(c < extra);
            let mut keys = Vec::with_capacity(size);
            let mut values = Vec::with_capacity(size);
            for _ in 0..size {
                let (k, v) = iter.next().expect("chunk sizes sum to n");
                keys.push(k);
                values.push(v);
            }
            let min_key = keys[0].clone();
            let id = self.alloc(Node::Leaf(Leaf {
                keys,
                values,
                next: None,
            }));
            if let Some(p) = prev_leaf {
                self.node_mut(p).as_leaf_mut().next = Some(id);
            }
            prev_leaf = Some(id);
            level.push((min_key, id, size));
        }
        drop(iter);
        // Internal levels: group children evenly until one root remains.
        // A group's separator keys are the leftmost keys of its children
        // past the first (entries equal to a separator route right).
        while level.len() > 1 {
            let m = level.len();
            let groups = m.div_ceil(order);
            let (base, extra) = (m / groups, m % groups);
            let mut next_level = Vec::with_capacity(groups);
            let mut it = level.into_iter();
            for g in 0..groups {
                let size = base + usize::from(g < extra);
                let mut keys = Vec::with_capacity(size - 1);
                let mut children = Vec::with_capacity(size);
                let mut total = 0;
                let mut min_key = None;
                for i in 0..size {
                    let (k, id, t) = it.next().expect("group sizes sum to m");
                    if i == 0 {
                        min_key = Some(k);
                    } else {
                        keys.push(k);
                    }
                    children.push(id);
                    total += t;
                }
                let id = self.alloc(Node::Internal(Internal {
                    keys,
                    children,
                    total,
                }));
                next_level.push((min_key.expect("groups are nonempty"), id, total));
            }
            level = next_level;
        }
        let (_, root_id, _) = level.pop().expect("one node remains");
        self.free_slot(self.root);
        self.root = root_id;
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Is the tree empty?
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Branching factor.
    pub fn order(&self) -> usize {
        self.order
    }

    /// Minimum entries in a non-root leaf.
    fn min_leaf(&self) -> usize {
        self.order / 2
    }

    /// Minimum keys in a non-root internal node (= `ceil(order/2)` children
    /// minus one, the fill produced by a split).
    fn min_internal_keys(&self) -> usize {
        self.order.div_ceil(2) - 1
    }

    /// Minimum direct key count for the given node (kind-dependent).
    fn min_keys_of(&self, node: &Node<K, V>) -> usize {
        if node.is_leaf() {
            self.min_leaf()
        } else {
            self.min_internal_keys()
        }
    }

    // ----- arena ---------------------------------------------------------

    fn alloc(&mut self, node: Node<K, V>) -> NodeId {
        if let Some(id) = self.free.pop() {
            self.slots[id as usize] = Some(node);
            id
        } else {
            self.slots.push(Some(node));
            (self.slots.len() - 1) as NodeId
        }
    }

    fn free_slot(&mut self, id: NodeId) {
        self.slots[id as usize] = None;
        self.free.push(id);
    }

    pub(crate) fn node(&self, id: NodeId) -> &Node<K, V> {
        self.slots[id as usize].as_ref().expect("dangling node id")
    }

    fn node_mut(&mut self, id: NodeId) -> &mut Node<K, V> {
        self.slots[id as usize].as_mut().expect("dangling node id")
    }

    fn take(&mut self, id: NodeId) -> Node<K, V> {
        self.slots[id as usize].take().expect("dangling node id")
    }

    fn put(&mut self, id: NodeId, node: Node<K, V>) {
        debug_assert!(self.slots[id as usize].is_none());
        self.slots[id as usize] = Some(node);
    }

    // ----- routing -------------------------------------------------------

    /// Index of the child an internal node routes `k` to: entries equal to a
    /// separator live in the subtree to its right.
    fn route<Q>(keys: &[K], k: &Q) -> usize
    where
        K: Borrow<Q>,
        Q: Ord + ?Sized,
    {
        match keys.binary_search_by(|x| x.borrow().cmp(k)) {
            Ok(i) => i + 1,
            Err(i) => i,
        }
    }

    // ----- point queries -------------------------------------------------

    /// Borrow the value for `k`, if present.
    pub fn get<Q>(&self, k: &Q) -> Option<&V>
    where
        K: Borrow<Q>,
        Q: Ord + ?Sized,
    {
        let mut id = self.root;
        loop {
            match self.node(id) {
                Node::Internal(int) => id = int.children[Self::route(&int.keys, k)],
                Node::Leaf(leaf) => {
                    return match leaf.keys.binary_search_by(|x| x.borrow().cmp(k)) {
                        Ok(i) => Some(&leaf.values[i]),
                        Err(_) => None,
                    };
                }
            }
        }
    }

    /// Mutably borrow the value for `k`, if present.
    pub fn get_mut<Q>(&mut self, k: &Q) -> Option<&mut V>
    where
        K: Borrow<Q>,
        Q: Ord + ?Sized,
    {
        let mut id = self.root;
        loop {
            match self.node(id) {
                Node::Internal(int) => id = int.children[Self::route(&int.keys, k)],
                Node::Leaf(leaf) => {
                    return match leaf.keys.binary_search_by(|x| x.borrow().cmp(k)) {
                        Ok(i) => {
                            let leaf = self.node_mut(id).as_leaf_mut();
                            Some(&mut leaf.values[i])
                        }
                        Err(_) => None,
                    };
                }
            }
        }
    }

    /// Does the tree contain `k`?
    pub fn contains_key<Q>(&self, k: &Q) -> bool
    where
        K: Borrow<Q>,
        Q: Ord + ?Sized,
    {
        self.get(k).is_some()
    }

    // ----- rank queries (order statistics) --------------------------------

    /// Number of entries with key strictly less than `k` — the rank query
    /// behind the paper's O(N·lg N) `MaxScore` precomputation.
    pub fn count_less_than<Q>(&self, k: &Q) -> usize
    where
        K: Borrow<Q>,
        Q: Ord + ?Sized,
    {
        self.count_with(k, false)
    }

    /// Number of entries with key less than or equal to `k`.
    pub fn count_at_most<Q>(&self, k: &Q) -> usize
    where
        K: Borrow<Q>,
        Q: Ord + ?Sized,
    {
        self.count_with(k, true)
    }

    /// Number of entries with key greater than or equal to `k`.
    pub fn count_at_least<Q>(&self, k: &Q) -> usize
    where
        K: Borrow<Q>,
        Q: Ord + ?Sized,
    {
        self.len - self.count_less_than(k)
    }

    fn count_with<Q>(&self, k: &Q, inclusive: bool) -> usize
    where
        K: Borrow<Q>,
        Q: Ord + ?Sized,
    {
        let mut id = self.root;
        let mut acc = 0usize;
        loop {
            match self.node(id) {
                Node::Internal(int) => {
                    let idx = Self::route(&int.keys, k);
                    for &c in &int.children[..idx] {
                        acc += self.node(c).total();
                    }
                    id = int.children[idx];
                }
                Node::Leaf(leaf) => {
                    let pos = leaf.keys.partition_point(|x| {
                        if inclusive {
                            x.borrow() <= k
                        } else {
                            x.borrow() < k
                        }
                    });
                    return acc + pos;
                }
            }
        }
    }

    // ----- extrema --------------------------------------------------------

    /// Entry with the smallest key.
    pub fn first_key_value(&self) -> Option<(&K, &V)> {
        if self.is_empty() {
            return None;
        }
        let mut id = self.root;
        loop {
            match self.node(id) {
                Node::Internal(int) => id = int.children[0],
                Node::Leaf(leaf) => return Some((&leaf.keys[0], &leaf.values[0])),
            }
        }
    }

    /// Entry with the largest key.
    pub fn last_key_value(&self) -> Option<(&K, &V)> {
        if self.is_empty() {
            return None;
        }
        let mut id = self.root;
        loop {
            match self.node(id) {
                Node::Internal(int) => id = *int.children.last().expect("internal has children"),
                Node::Leaf(leaf) => {
                    let i = leaf.keys.len() - 1;
                    return Some((&leaf.keys[i], &leaf.values[i]));
                }
            }
        }
    }

    // ----- iteration -------------------------------------------------------

    pub(crate) fn first_leaf(&self) -> NodeId {
        let mut id = self.root;
        loop {
            match self.node(id) {
                Node::Internal(int) => id = int.children[0],
                Node::Leaf(_) => return id,
            }
        }
    }

    /// Leaf and in-leaf position of the first entry with key `>= k`
    /// (`excl`: strictly greater). Position may equal the leaf length, in
    /// which case iteration continues at the next leaf.
    pub(crate) fn seek<Q>(&self, k: &Q, excl: bool) -> (NodeId, usize)
    where
        K: Borrow<Q>,
        Q: Ord + ?Sized,
    {
        let mut id = self.root;
        loop {
            match self.node(id) {
                Node::Internal(int) => id = int.children[Self::route(&int.keys, k)],
                Node::Leaf(leaf) => {
                    let pos = leaf.keys.partition_point(|x| {
                        if excl {
                            x.borrow() <= k
                        } else {
                            x.borrow() < k
                        }
                    });
                    return (id, pos);
                }
            }
        }
    }

    /// Iterate all entries in ascending key order through the leaf links.
    pub fn iter(&self) -> Iter<'_, K, V> {
        Iter::new(self)
    }

    /// Iterate the entries whose keys fall in `range`, ascending.
    pub fn range<R>(&self, range: R) -> Range<'_, K, V>
    where
        R: RangeBounds<K>,
    {
        Range::new(
            self,
            range.start_bound().cloned(),
            range.end_bound().cloned(),
        )
    }

    // ----- insertion --------------------------------------------------------

    /// Insert `k → v`; returns the previous value if `k` was present.
    pub fn insert(&mut self, k: K, v: V) -> Option<V> {
        let root = self.root;
        let (old, split) = self.insert_rec(root, k, v);
        if let Some((sep, right)) = split {
            let left = self.root;
            let total = self.node(left).total() + self.node(right).total();
            self.root = self.alloc(Node::Internal(Internal {
                keys: vec![sep],
                children: vec![left, right],
                total,
            }));
        }
        if old.is_none() {
            self.len += 1;
        }
        old
    }

    fn insert_rec(&mut self, id: NodeId, k: K, v: V) -> (Option<V>, Option<(K, NodeId)>) {
        if self.node(id).is_leaf() {
            let order = self.order;
            let leaf = self.node_mut(id).as_leaf_mut();
            match leaf.keys.binary_search(&k) {
                Ok(i) => (Some(std::mem::replace(&mut leaf.values[i], v)), None),
                Err(i) => {
                    leaf.keys.insert(i, k);
                    leaf.values.insert(i, v);
                    if leaf.keys.len() > order {
                        let split = self.split_leaf(id);
                        (None, Some(split))
                    } else {
                        (None, None)
                    }
                }
            }
        } else {
            let (child_idx, child_id) = {
                let int = self.node(id).as_internal();
                let i = Self::route(&int.keys, &k);
                (i, int.children[i])
            };
            let (old, split) = self.insert_rec(child_id, k, v);
            {
                let int = self.node_mut(id).as_internal_mut();
                if old.is_none() {
                    int.total += 1;
                }
                if let Some((sep, right)) = split {
                    int.keys.insert(child_idx, sep);
                    int.children.insert(child_idx + 1, right);
                }
            }
            if self.node(id).as_internal().children.len() > self.order {
                let split = self.split_internal(id);
                (old, Some(split))
            } else {
                (old, None)
            }
        }
    }

    fn split_leaf(&mut self, id: NodeId) -> (K, NodeId) {
        let leaf = self.node_mut(id).as_leaf_mut();
        let mid = leaf.keys.len() / 2;
        let rkeys = leaf.keys.split_off(mid);
        let rvals = leaf.values.split_off(mid);
        let next = leaf.next;
        let sep = rkeys[0].clone();
        let right = self.alloc(Node::Leaf(Leaf {
            keys: rkeys,
            values: rvals,
            next,
        }));
        self.node_mut(id).as_leaf_mut().next = Some(right);
        (sep, right)
    }

    fn split_internal(&mut self, id: NodeId) -> (K, NodeId) {
        let (sep, rkeys, rchildren) = {
            let int = self.node_mut(id).as_internal_mut();
            let mid = int.keys.len() / 2;
            let rkeys = int.keys.split_off(mid + 1);
            let sep = int.keys.pop().expect("mid key exists");
            let rchildren = int.children.split_off(mid + 1);
            (sep, rkeys, rchildren)
        };
        let rtotal: usize = rchildren.iter().map(|&c| self.node(c).total()).sum();
        {
            let int = self.node_mut(id).as_internal_mut();
            int.total -= rtotal;
        }
        let right = self.alloc(Node::Internal(Internal {
            keys: rkeys,
            children: rchildren,
            total: rtotal,
        }));
        (sep, right)
    }

    // ----- deletion ----------------------------------------------------------

    /// Remove `k`, returning its value if present.
    pub fn remove<Q>(&mut self, k: &Q) -> Option<V>
    where
        K: Borrow<Q>,
        Q: Ord + ?Sized,
    {
        let root = self.root;
        let old = self.remove_rec(root, k);
        if old.is_some() {
            self.len -= 1;
        }
        // Shrink the root while it is an internal node with a single child.
        loop {
            let r = self.root;
            let promote = match self.node(r) {
                Node::Internal(int) if int.children.len() == 1 => Some(int.children[0]),
                _ => None,
            };
            match promote {
                Some(c) => {
                    self.free_slot(r);
                    self.root = c;
                }
                None => break,
            }
        }
        old
    }

    fn remove_rec<Q>(&mut self, id: NodeId, k: &Q) -> Option<V>
    where
        K: Borrow<Q>,
        Q: Ord + ?Sized,
    {
        if self.node(id).is_leaf() {
            let leaf = self.node_mut(id).as_leaf_mut();
            match leaf.keys.binary_search_by(|x| x.borrow().cmp(k)) {
                Ok(i) => {
                    leaf.keys.remove(i);
                    Some(leaf.values.remove(i))
                }
                Err(_) => None,
            }
        } else {
            let (child_idx, child_id) = {
                let int = self.node(id).as_internal();
                let i = Self::route(&int.keys, k);
                (i, int.children[i])
            };
            let old = self.remove_rec(child_id, k);
            if old.is_some() {
                self.node_mut(id).as_internal_mut().total -= 1;
            }
            let child = self.node(child_id);
            if child.key_count() < self.min_keys_of(child) {
                self.rebalance(id, child_idx);
            }
            old
        }
    }

    /// Fix an underflowing child `idx` of `parent`: borrow from a richer
    /// sibling or merge with one.
    fn rebalance(&mut self, parent: NodeId, idx: usize) {
        let (nchildren, left_rich, right_rich) = {
            let int = self.node(parent).as_internal();
            let rich = |id: NodeId| {
                let n = self.node(id);
                n.key_count() > self.min_keys_of(n)
            };
            let left = idx > 0 && rich(int.children[idx - 1]);
            let right = idx + 1 < int.children.len() && rich(int.children[idx + 1]);
            (int.children.len(), left, right)
        };
        if left_rich {
            self.borrow_from_left(parent, idx);
        } else if right_rich {
            self.borrow_from_right(parent, idx);
        } else if idx > 0 {
            self.merge_children(parent, idx - 1);
        } else if nchildren > 1 {
            self.merge_children(parent, idx);
        }
        // A root leaf (or a root with a single child, handled by the caller)
        // may legitimately stay below the minimum.
    }

    fn borrow_from_left(&mut self, parent: NodeId, idx: usize) {
        let mut p = self.take(parent);
        let pint = p.as_internal_mut();
        let (lid, cid) = (pint.children[idx - 1], pint.children[idx]);
        let mut l = self.take(lid);
        let mut c = self.take(cid);
        match (&mut l, &mut c) {
            (Node::Leaf(l), Node::Leaf(c)) => {
                let k = l.keys.pop().expect("rich sibling");
                let v = l.values.pop().expect("rich sibling");
                c.keys.insert(0, k);
                c.values.insert(0, v);
                pint.keys[idx - 1] = c.keys[0].clone();
            }
            (Node::Internal(l), Node::Internal(c)) => {
                let moved_child = l.children.pop().expect("rich sibling");
                let moved_total = self.node(moved_child).total();
                let sep = std::mem::replace(&mut pint.keys[idx - 1], l.keys.pop().expect("rich"));
                c.keys.insert(0, sep);
                c.children.insert(0, moved_child);
                l.total -= moved_total;
                c.total += moved_total;
            }
            _ => unreachable!("siblings at the same level share a kind"),
        }
        self.put(lid, l);
        self.put(cid, c);
        self.put(parent, p);
    }

    fn borrow_from_right(&mut self, parent: NodeId, idx: usize) {
        let mut p = self.take(parent);
        let pint = p.as_internal_mut();
        let (cid, rid) = (pint.children[idx], pint.children[idx + 1]);
        let mut c = self.take(cid);
        let mut r = self.take(rid);
        match (&mut c, &mut r) {
            (Node::Leaf(c), Node::Leaf(r)) => {
                c.keys.push(r.keys.remove(0));
                c.values.push(r.values.remove(0));
                pint.keys[idx] = r.keys[0].clone();
            }
            (Node::Internal(c), Node::Internal(r)) => {
                let moved_child = r.children.remove(0);
                let moved_total = self.node(moved_child).total();
                let sep = std::mem::replace(&mut pint.keys[idx], r.keys.remove(0));
                c.keys.push(sep);
                c.children.push(moved_child);
                r.total -= moved_total;
                c.total += moved_total;
            }
            _ => unreachable!("siblings at the same level share a kind"),
        }
        self.put(cid, c);
        self.put(rid, r);
        self.put(parent, p);
    }

    /// Merge child `li + 1` of `parent` into child `li`.
    fn merge_children(&mut self, parent: NodeId, li: usize) {
        let mut p = self.take(parent);
        let pint = p.as_internal_mut();
        let lid = pint.children[li];
        let rid = pint.children[li + 1];
        let sep = pint.keys.remove(li);
        pint.children.remove(li + 1);
        let mut l = self.take(lid);
        let r = self.take(rid);
        match (&mut l, r) {
            (Node::Leaf(l), Node::Leaf(r)) => {
                l.keys.extend(r.keys);
                l.values.extend(r.values);
                l.next = r.next;
            }
            (Node::Internal(l), Node::Internal(r)) => {
                l.keys.push(sep);
                l.keys.extend(r.keys);
                l.children.extend(r.children);
                l.total += r.total;
            }
            _ => unreachable!("siblings at the same level share a kind"),
        }
        self.put(lid, l);
        self.put(parent, p);
        self.free.push(rid);
    }

    /// Remove every entry (retains the allocation of the root leaf only).
    pub fn clear(&mut self) {
        self.slots.clear();
        self.free.clear();
        self.len = 0;
        self.root = self.alloc(Node::Leaf(Leaf {
            keys: Vec::new(),
            values: Vec::new(),
            next: None,
        }));
    }

    // ----- validation (tests) ------------------------------------------------

    /// Exhaustively verify the structural invariants; panics on violation.
    /// Exposed for tests and fuzzing.
    #[doc(hidden)]
    pub fn check_invariants(&self)
    where
        K: std::fmt::Debug,
    {
        let depth = self.check_node(self.root, None, None, true);
        // All leaves at the same depth.
        let _ = depth;
        // Leaf chain yields all keys in sorted order.
        let keys: Vec<&K> = self.iter().map(|(k, _)| k).collect();
        assert_eq!(keys.len(), self.len, "leaf chain length vs len()");
        for w in keys.windows(2) {
            assert!(
                w[0] < w[1],
                "leaf chain out of order: {:?} !< {:?}",
                w[0],
                w[1]
            );
        }
        assert_eq!(self.node(self.root).total(), self.len, "root total");
    }

    /// Returns the depth of the subtree; checks key bounds, fill and totals.
    fn check_node(&self, id: NodeId, lo: Option<&K>, hi: Option<&K>, is_root: bool) -> usize
    where
        K: std::fmt::Debug,
    {
        match self.node(id) {
            Node::Leaf(leaf) => {
                assert_eq!(leaf.keys.len(), leaf.values.len());
                assert!(leaf.keys.len() <= self.order, "leaf overflow");
                if !is_root {
                    assert!(leaf.keys.len() >= self.min_leaf(), "leaf underflow");
                }
                for w in leaf.keys.windows(2) {
                    assert!(w[0] < w[1], "unsorted leaf");
                }
                if let (Some(lo), Some(first)) = (lo, leaf.keys.first()) {
                    assert!(lo <= first, "leaf key below lower bound");
                }
                if let (Some(hi), Some(last)) = (hi, leaf.keys.last()) {
                    assert!(last < hi, "leaf key at/above upper bound");
                }
                1
            }
            Node::Internal(int) => {
                assert_eq!(int.children.len(), int.keys.len() + 1);
                assert!(int.children.len() <= self.order, "internal overflow");
                if !is_root {
                    assert!(
                        int.keys.len() >= self.min_internal_keys(),
                        "internal underflow"
                    );
                } else {
                    assert!(
                        int.children.len() >= 2,
                        "root internal must have >= 2 children"
                    );
                }
                for w in int.keys.windows(2) {
                    assert!(w[0] < w[1], "unsorted internal");
                }
                let total: usize = int.children.iter().map(|&c| self.node(c).total()).sum();
                assert_eq!(total, int.total, "internal total mismatch");
                let mut depth = None;
                for (i, &c) in int.children.iter().enumerate() {
                    let clo = if i == 0 { lo } else { Some(&int.keys[i - 1]) };
                    let chi = if i == int.keys.len() {
                        hi
                    } else {
                        Some(&int.keys[i])
                    };
                    let d = self.check_node(c, clo, chi, false);
                    match depth {
                        None => depth = Some(d),
                        Some(prev) => assert_eq!(prev, d, "unbalanced depth"),
                    }
                }
                depth.expect("internal node has children") + 1
            }
        }
    }
}

impl<K: Ord + Clone + std::fmt::Debug, V: std::fmt::Debug> std::fmt::Debug for BPlusTree<K, V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_map().entries(self.iter()).finish()
    }
}

impl<K: Ord + Clone, V> FromIterator<(K, V)> for BPlusTree<K, V> {
    fn from_iter<T: IntoIterator<Item = (K, V)>>(iter: T) -> Self {
        let mut t = BPlusTree::new();
        for (k, v) in iter {
            t.insert(k, v);
        }
        t
    }
}
