//! Node representation of the B+-tree arena.

/// Arena index of a node.
pub(crate) type NodeId = u32;

/// A B+-tree node. Internal nodes route by separator keys; leaves store the
/// entries and are forward-linked for ordered scans.
#[derive(Debug, Clone)]
pub(crate) enum Node<K, V> {
    Internal(Internal<K>),
    Leaf(Leaf<K, V>),
}

/// Internal node: `children.len() == keys.len() + 1`; subtree `i` holds keys
/// `< keys[i]` (and `>= keys[i-1]`).
#[derive(Debug, Clone)]
pub(crate) struct Internal<K> {
    pub keys: Vec<K>,
    pub children: Vec<NodeId>,
    /// Total number of entries in this subtree (order statistics).
    pub total: usize,
}

/// Leaf node: sorted parallel key/value arrays plus a forward link.
#[derive(Debug, Clone)]
pub(crate) struct Leaf<K, V> {
    pub keys: Vec<K>,
    pub values: Vec<V>,
    pub next: Option<NodeId>,
}

impl<K, V> Node<K, V> {
    pub fn as_internal(&self) -> &Internal<K> {
        match self {
            Node::Internal(i) => i,
            Node::Leaf(_) => panic!("expected internal node"),
        }
    }

    pub fn as_internal_mut(&mut self) -> &mut Internal<K> {
        match self {
            Node::Internal(i) => i,
            Node::Leaf(_) => panic!("expected internal node"),
        }
    }

    pub fn as_leaf(&self) -> &Leaf<K, V> {
        match self {
            Node::Leaf(l) => l,
            Node::Internal(_) => panic!("expected leaf node"),
        }
    }

    pub fn as_leaf_mut(&mut self) -> &mut Leaf<K, V> {
        match self {
            Node::Leaf(l) => l,
            Node::Internal(_) => panic!("expected leaf node"),
        }
    }

    pub fn is_leaf(&self) -> bool {
        matches!(self, Node::Leaf(_))
    }

    /// Number of entries in this subtree.
    pub fn total(&self) -> usize {
        match self {
            Node::Internal(i) => i.total,
            Node::Leaf(l) => l.keys.len(),
        }
    }

    /// Number of keys stored directly in this node.
    pub fn key_count(&self) -> usize {
        match self {
            Node::Internal(i) => i.keys.len(),
            Node::Leaf(l) => l.keys.len(),
        }
    }
}
