//! An in-memory **B+-tree** with linked leaves and order-statistics.
//!
//! The paper's implementation notes rely on B+-trees twice:
//!
//! * §4.2 — `MaxScore` "can be calculated at O(N·lg N) cost based on the
//!   B+-tree structure": per dimension, a tree over the observed values
//!   answers *how many objects are no better than `v`* with a rank query;
//! * §4.5 — IBIG "utilize\[s\] B+-trees … to get the set nonD(o) quickly":
//!   locating a bin's boundary takes `log(σN)` and the bin interior is then
//!   scanned sequentially through the linked leaves.
//!
//! The tree is an arena-based, iterative-splitting implementation:
//!
//! * every node lives in a slab ([`BPlusTree`] owns all memory, no
//!   `unsafe`, no `Rc`);
//! * leaves are doubly usable through forward links for ordered scans;
//! * internal nodes track subtree entry counts, so **rank queries**
//!   ([`BPlusTree::count_less_than`]) run in `O(B · log_B N)`;
//! * deletion rebalances by borrowing from or merging with siblings.
//!
//! ```
//! use tkd_btree::BPlusTree;
//!
//! let mut t = BPlusTree::new();
//! for (k, v) in [(3, "c"), (1, "a"), (2, "b")] {
//!     t.insert(k, v);
//! }
//! assert_eq!(t.get(&2), Some(&"b"));
//! assert_eq!(t.iter().map(|(k, _)| *k).collect::<Vec<_>>(), vec![1, 2, 3]);
//! assert_eq!(t.count_less_than(&3), 2);
//! ```

#![warn(missing_docs)]

mod iter;
mod key;
mod node;
mod tree;

pub use iter::{Iter, Range};
pub use key::F64Key;
pub use tree::BPlusTree;

/// Default branching factor (max children of an internal node / max entries
/// of a leaf). 32 keeps nodes within one or two cache lines for small keys
/// while keeping the tree shallow.
pub const DEFAULT_ORDER: usize = 32;
