//! Totally ordered `f64` key wrapper.

use core::cmp::Ordering;
use core::fmt;

/// An `f64` with total order, usable as a B+-tree key.
///
/// NaN is rejected at construction (the data model already forbids NaN for
/// observed values) and **−0.0 is normalized to +0.0**, so `Eq`/`Ord` are
/// honest and agree exactly with the IEEE `<`/`==` the rest of the system
/// compares values with. Without the normalization, `total_cmp` would
/// order −0.0 below +0.0 and value-equality probes (e.g. IBIG's `tagT`
/// accumulation) would miss ties between the two zeros.
#[derive(Clone, Copy, PartialEq)]
pub struct F64Key(f64);

impl F64Key {
    /// Wrap a finite-or-infinite (non-NaN) float.
    ///
    /// Returns `None` for NaN.
    pub fn new(v: f64) -> Option<Self> {
        if v.is_nan() {
            None
        } else {
            // IEEE addition sends −0.0 + 0.0 to +0.0 and fixes every other
            // non-NaN value, collapsing the zero signs into one key.
            Some(F64Key(v + 0.0))
        }
    }

    /// The wrapped value.
    pub fn get(self) -> f64 {
        self.0
    }
}

impl Eq for F64Key {}

impl PartialOrd for F64Key {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for F64Key {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.total_cmp(&other.0)
    }
}

impl fmt::Debug for F64Key {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl TryFrom<f64> for F64Key {
    type Error = &'static str;
    fn try_from(v: f64) -> Result<Self, Self::Error> {
        F64Key::new(v).ok_or("NaN is not a valid key")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_nan() {
        assert!(F64Key::new(f64::NAN).is_none());
        assert!(F64Key::try_from(f64::NAN).is_err());
    }

    #[test]
    fn orders_like_ieee() {
        let a = F64Key::new(-1.5).unwrap();
        let b = F64Key::new(0.0).unwrap();
        let c = F64Key::new(2.0).unwrap();
        assert!(a < b && b < c);
        assert_eq!(F64Key::new(2.0).unwrap(), c);
        assert_eq!(c.get(), 2.0);
    }

    #[test]
    fn negative_zero_equals_positive_zero() {
        // −0.0 normalizes to +0.0 at construction: the key order must
        // agree with IEEE equality, or range probes for 0.0 would miss
        // objects holding −0.0 (a real IBIG scoring bug caught by
        // `tests/adversarial.rs`).
        let nz = F64Key::new(-0.0).unwrap();
        let pz = F64Key::new(0.0).unwrap();
        assert!(nz == pz);
        assert_eq!(nz.cmp(&pz), Ordering::Equal);
        assert!(nz.get().is_sign_positive());
    }
}
