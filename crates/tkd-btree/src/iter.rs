//! Ordered iteration over the linked leaves.

use crate::node::NodeId;
use crate::BPlusTree;
use std::ops::Bound;

/// Iterator over all entries in ascending key order.
pub struct Iter<'a, K, V> {
    tree: &'a BPlusTree<K, V>,
    leaf: Option<NodeId>,
    pos: usize,
}

impl<'a, K: Ord + Clone, V> Iter<'a, K, V> {
    pub(crate) fn new(tree: &'a BPlusTree<K, V>) -> Self {
        Iter {
            tree,
            leaf: Some(tree.first_leaf()),
            pos: 0,
        }
    }
}

impl<'a, K: Ord + Clone, V> Iterator for Iter<'a, K, V> {
    type Item = (&'a K, &'a V);

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            let id = self.leaf?;
            let leaf = self.tree.node(id).as_leaf();
            if self.pos < leaf.keys.len() {
                let i = self.pos;
                self.pos += 1;
                return Some((&leaf.keys[i], &leaf.values[i]));
            }
            self.leaf = leaf.next;
            self.pos = 0;
        }
    }
}

/// Iterator over the entries in a key range, ascending.
pub struct Range<'a, K, V> {
    tree: &'a BPlusTree<K, V>,
    leaf: Option<NodeId>,
    pos: usize,
    end: Bound<K>,
}

impl<'a, K: Ord + Clone, V> Range<'a, K, V> {
    pub(crate) fn new(tree: &'a BPlusTree<K, V>, start: Bound<K>, end: Bound<K>) -> Self {
        let (leaf, pos) = match &start {
            Bound::Unbounded => (tree.first_leaf(), 0),
            Bound::Included(k) => tree.seek(k, false),
            Bound::Excluded(k) => tree.seek(k, true),
        };
        Range {
            tree,
            leaf: Some(leaf),
            pos,
            end,
        }
    }

    fn within_end(&self, k: &K) -> bool {
        match &self.end {
            Bound::Unbounded => true,
            Bound::Included(e) => k <= e,
            Bound::Excluded(e) => k < e,
        }
    }
}

impl<'a, K: Ord + Clone, V> Iterator for Range<'a, K, V> {
    type Item = (&'a K, &'a V);

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            let id = self.leaf?;
            let leaf = self.tree.node(id).as_leaf();
            if self.pos < leaf.keys.len() {
                let i = self.pos;
                self.pos += 1;
                let k = &leaf.keys[i];
                if !self.within_end(k) {
                    self.leaf = None;
                    return None;
                }
                return Some((k, &leaf.values[i]));
            }
            self.leaf = leaf.next;
            self.pos = 0;
        }
    }
}
