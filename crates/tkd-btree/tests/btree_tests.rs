//! Behavioural and model-based tests for the B+-tree substrate.

use proptest::prelude::*;
use std::collections::BTreeMap;
use tkd_btree::{BPlusTree, F64Key};

#[test]
fn empty_tree_basics() {
    let t: BPlusTree<u32, u32> = BPlusTree::new();
    assert!(t.is_empty());
    assert_eq!(t.len(), 0);
    assert_eq!(t.get(&1), None);
    assert_eq!(t.first_key_value(), None);
    assert_eq!(t.last_key_value(), None);
    assert_eq!(t.iter().count(), 0);
    assert_eq!(t.count_less_than(&5), 0);
    t.check_invariants();
}

#[test]
fn from_sorted_entries_matches_insertion_and_rejects_disorder() {
    let entries: Vec<(u32, u32)> = (0..500).map(|i| (i * 3, i)).collect();
    let bulk = BPlusTree::from_sorted_entries(entries.iter().copied()).unwrap();
    bulk.check_invariants();
    let mut incremental = BPlusTree::new();
    for &(k, v) in &entries {
        incremental.insert(k, v);
    }
    assert_eq!(bulk.len(), incremental.len());
    assert_eq!(
        bulk.iter().collect::<Vec<_>>(),
        incremental.iter().collect::<Vec<_>>()
    );
    assert_eq!(bulk.count_at_least(&300), incremental.count_at_least(&300));
    // Disorder and duplicates are rejected, not silently absorbed.
    assert!(BPlusTree::from_sorted_entries([(2u32, ()), (1, ())]).is_err());
    assert!(BPlusTree::from_sorted_entries([(1u32, ()), (1, ())]).is_err());
    let empty: BPlusTree<u32, ()> = BPlusTree::from_sorted_entries([]).unwrap();
    assert!(empty.is_empty());
}

#[test]
fn insert_get_replace() {
    let mut t = BPlusTree::with_order(4);
    assert_eq!(t.insert(10, "x"), None);
    assert_eq!(t.insert(10, "y"), Some("x"));
    assert_eq!(t.get(&10), Some(&"y"));
    assert_eq!(t.len(), 1);
    t.check_invariants();
}

#[test]
fn get_mut_updates_in_place() {
    let mut t = BPlusTree::new();
    t.insert(1, vec![1]);
    t.get_mut(&1).unwrap().push(2);
    assert_eq!(t.get(&1), Some(&vec![1, 2]));
    assert_eq!(t.get_mut(&99), None);
}

#[test]
fn ascending_bulk_insert_small_order() {
    let mut t = BPlusTree::with_order(4);
    for i in 0..1000u32 {
        t.insert(i, i * 2);
        if i % 97 == 0 {
            t.check_invariants();
        }
    }
    t.check_invariants();
    assert_eq!(t.len(), 1000);
    for i in 0..1000u32 {
        assert_eq!(t.get(&i), Some(&(i * 2)));
    }
    let keys: Vec<u32> = t.iter().map(|(k, _)| *k).collect();
    assert_eq!(keys, (0..1000).collect::<Vec<_>>());
}

#[test]
fn descending_bulk_insert() {
    let mut t = BPlusTree::with_order(6);
    for i in (0..500u32).rev() {
        t.insert(i, ());
    }
    t.check_invariants();
    assert_eq!(t.iter().count(), 500);
    assert_eq!(t.first_key_value(), Some((&0, &())));
    assert_eq!(t.last_key_value(), Some((&499, &())));
}

#[test]
fn shuffled_insert_then_remove_everything() {
    // Deterministic pseudo-shuffle.
    let mut keys: Vec<u64> = (0..2000).map(|i| (i * 2654435761u64) % 10_000).collect();
    keys.sort_unstable();
    keys.dedup();
    let mut t = BPlusTree::with_order(8);
    for (i, &k) in keys.iter().enumerate() {
        t.insert(k, i);
    }
    t.check_invariants();
    assert_eq!(t.len(), keys.len());
    for &k in keys.iter().rev() {
        assert!(t.remove(&k).is_some());
        assert_eq!(t.remove(&k), None);
    }
    assert!(t.is_empty());
    t.check_invariants();
}

#[test]
fn remove_missing_is_none() {
    let mut t = BPlusTree::new();
    t.insert(1, 1);
    assert_eq!(t.remove(&2), None);
    assert_eq!(t.len(), 1);
}

#[test]
fn rank_queries() {
    let mut t = BPlusTree::with_order(4);
    for i in [10, 20, 30, 40, 50] {
        t.insert(i, ());
    }
    assert_eq!(t.count_less_than(&10), 0);
    assert_eq!(t.count_less_than(&11), 1);
    assert_eq!(t.count_less_than(&30), 2);
    assert_eq!(t.count_at_most(&30), 3);
    assert_eq!(t.count_at_least(&30), 3);
    assert_eq!(t.count_at_least(&51), 0);
    assert_eq!(t.count_at_least(&10), 5);
}

#[test]
fn range_queries() {
    use std::ops::Bound;
    let mut t = BPlusTree::with_order(4);
    for i in 0..100u32 {
        t.insert(i, i);
    }
    let got: Vec<u32> = t.range(10..20).map(|(k, _)| *k).collect();
    assert_eq!(got, (10..20).collect::<Vec<_>>());
    let got: Vec<u32> = t.range(10..=20).map(|(k, _)| *k).collect();
    assert_eq!(got, (10..=20).collect::<Vec<_>>());
    let got: Vec<u32> = t.range(95..).map(|(k, _)| *k).collect();
    assert_eq!(got, (95..100).collect::<Vec<_>>());
    let got: Vec<u32> = t.range(..5).map(|(k, _)| *k).collect();
    assert_eq!(got, (0..5).collect::<Vec<_>>());
    let got: Vec<u32> = t
        .range((Bound::Excluded(10), Bound::Included(12)))
        .map(|(k, _)| *k)
        .collect();
    assert_eq!(got, vec![11, 12]);
    let empty = (Bound::Included(60u32), Bound::Excluded(40u32));
    assert_eq!(t.range(empty).count(), 0);
}

#[test]
fn range_with_gaps() {
    let mut t = BPlusTree::with_order(4);
    for i in (0..100u32).step_by(10) {
        t.insert(i, ());
    }
    let got: Vec<u32> = t.range(15..55).map(|(k, _)| *k).collect();
    assert_eq!(got, vec![20, 30, 40, 50]);
}

#[test]
fn f64_keys_work() {
    let mut t: BPlusTree<F64Key, u32> = BPlusTree::new();
    for (i, v) in [3.5, -1.0, 0.0, 7.25].into_iter().enumerate() {
        t.insert(F64Key::new(v).unwrap(), i as u32);
    }
    let keys: Vec<f64> = t.iter().map(|(k, _)| k.get()).collect();
    assert_eq!(keys, vec![-1.0, 0.0, 3.5, 7.25]);
    assert_eq!(t.count_at_least(&F64Key::new(0.0).unwrap()), 3);
}

#[test]
fn from_iterator_and_debug() {
    let t: BPlusTree<u32, &str> = [(2, "b"), (1, "a")].into_iter().collect();
    assert_eq!(format!("{t:?}"), r#"{1: "a", 2: "b"}"#);
}

#[test]
fn clear_resets() {
    let mut t = BPlusTree::with_order(4);
    for i in 0..100u32 {
        t.insert(i, ());
    }
    t.clear();
    assert!(t.is_empty());
    assert_eq!(t.iter().count(), 0);
    t.insert(5, ());
    assert_eq!(t.len(), 1);
    t.check_invariants();
}

#[test]
#[should_panic(expected = "order must be at least 4")]
fn tiny_order_rejected() {
    let _: BPlusTree<u32, ()> = BPlusTree::with_order(3);
}

#[test]
fn contains_key() {
    let mut t = BPlusTree::new();
    t.insert(7u32, ());
    assert!(t.contains_key(&7));
    assert!(!t.contains_key(&8));
}

/// One operation of the model test.
#[derive(Clone, Debug)]
enum Op {
    Insert(u16, u32),
    Remove(u16),
    Get(u16),
    CountLt(u16),
    RangeScan(u16, u16),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (any::<u16>(), any::<u32>()).prop_map(|(k, v)| Op::Insert(k % 512, v)),
        any::<u16>().prop_map(|k| Op::Remove(k % 512)),
        any::<u16>().prop_map(|k| Op::Get(k % 512)),
        any::<u16>().prop_map(|k| Op::CountLt(k % 512)),
        (any::<u16>(), any::<u16>()).prop_map(|(a, b)| Op::RangeScan(a % 512, b % 512)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The B+-tree behaves exactly like `BTreeMap` under arbitrary op
    /// sequences, for several node orders, and its structural invariants
    /// hold throughout.
    #[test]
    fn model_equivalence(ops in proptest::collection::vec(op_strategy(), 1..400), order in 4usize..12) {
        let mut tree: BPlusTree<u16, u32> = BPlusTree::with_order(order);
        let mut model: BTreeMap<u16, u32> = BTreeMap::new();
        for op in ops {
            match op {
                Op::Insert(k, v) => {
                    prop_assert_eq!(tree.insert(k, v), model.insert(k, v));
                }
                Op::Remove(k) => {
                    prop_assert_eq!(tree.remove(&k), model.remove(&k));
                }
                Op::Get(k) => {
                    prop_assert_eq!(tree.get(&k), model.get(&k));
                }
                Op::CountLt(k) => {
                    prop_assert_eq!(tree.count_less_than(&k), model.range(..k).count());
                    prop_assert_eq!(tree.count_at_most(&k), model.range(..=k).count());
                    prop_assert_eq!(tree.count_at_least(&k), model.range(k..).count());
                }
                Op::RangeScan(a, b) => {
                    let (lo, hi) = (a.min(b), a.max(b));
                    let got: Vec<(u16, u32)> = tree.range(lo..hi).map(|(k, v)| (*k, *v)).collect();
                    let want: Vec<(u16, u32)> = model.range(lo..hi).map(|(k, v)| (*k, *v)).collect();
                    prop_assert_eq!(got, want);
                }
            }
            prop_assert_eq!(tree.len(), model.len());
        }
        tree.check_invariants();
        let got: Vec<(u16, u32)> = tree.iter().map(|(k, v)| (*k, *v)).collect();
        let want: Vec<(u16, u32)> = model.iter().map(|(k, v)| (*k, *v)).collect();
        prop_assert_eq!(got, want);
        prop_assert_eq!(tree.first_key_value().map(|(k, v)| (*k, *v)),
                        model.first_key_value().map(|(k, v)| (*k, *v)));
        prop_assert_eq!(tree.last_key_value().map(|(k, v)| (*k, *v)),
                        model.last_key_value().map(|(k, v)| (*k, *v)));
    }

    /// Rank queries agree with a sorted-vec oracle for random key sets.
    #[test]
    fn rank_oracle(keys in proptest::collection::btree_set(any::<u32>(), 0..300), probe in any::<u32>()) {
        let mut t = BPlusTree::with_order(4);
        for &k in &keys {
            t.insert(k, ());
        }
        let sorted: Vec<u32> = keys.iter().copied().collect();
        prop_assert_eq!(t.count_less_than(&probe), sorted.partition_point(|&x| x < probe));
        prop_assert_eq!(t.count_at_most(&probe), sorted.partition_point(|&x| x <= probe));
    }
}
