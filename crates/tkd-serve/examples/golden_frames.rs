//! Regenerate the golden hex blocks of `docs/WIRE_PROTOCOL.md`.
//!
//! Run `cargo run -p tkd-serve --example golden_frames` after any
//! protocol change and paste the emitted blocks into the document —
//! `tests/wire_spec.rs` pins the doc to the codec, so a version bump
//! that skips this step fails the build. The typed values here must
//! stay in sync with `documented_values()` in that test (the test's
//! name-set equality check catches drift).

use tkd_core::{Algorithm, StandingSpec, UpdateOp};
use tkd_serve::cluster_wire::{encode_cluster_request, encode_cluster_response};
use tkd_serve::protocol::{encode_request, encode_response, ErrorFrame, QuerySpec};
use tkd_serve::{
    ClusterRequest, ClusterResponse, Request, Response, ShardPhase, ShardQuery, ShardUpdate,
    ShardUpdateAck, SubscribeAck, WireCandidate, WireEntry, WireNotification,
};

fn hex_block(name: &str, bytes: &[u8]) {
    println!("```hex");
    println!("# {name}");
    for chunk in bytes.chunks(16) {
        let line: Vec<String> = chunk.iter().map(|b| format!("{b:02x}")).collect();
        println!("{}", line.join(" "));
    }
    println!("```");
    println!();
}

fn main() {
    let requests: Vec<(&str, Request)> = vec![
        ("query-big-k3", Request::Query(QuerySpec::new(3))),
        (
            "query-text-select",
            Request::QueryText("SELECT TOP 2 DOMINATING".into()),
        ),
        ("stats", Request::Stats),
        ("unsubscribe-7", Request::Unsubscribe(7)),
        (
            "update-insert",
            Request::UpdateOps(vec![UpdateOp::Insert(vec![Some(1.0), None])]),
        ),
        (
            "subscribe-spec",
            Request::Subscribe(StandingSpec {
                k: 2,
                algorithm: Algorithm::Big,
                subspace: None,
                constraint: vec![],
                fallback_fraction: 0.5,
            }),
        ),
    ];
    let responses: Vec<(&str, Response)> = vec![
        (
            "query-result",
            Response::QueryResult(vec![
                WireEntry { id: 1, score: 16 },
                WireEntry { id: 11, score: 16 },
            ]),
        ),
        (
            "explain-result",
            Response::ExplainResult("algorithm: Big".into()),
        ),
        (
            "error-rejected",
            Response::Error(ErrorFrame {
                code: 4,
                datum: 0,
                message: "parse error".into(),
            }),
        ),
        (
            "subscribe-ack",
            Response::SubscribeAck(SubscribeAck {
                id: 1,
                result: vec![WireEntry { id: 1, score: 16 }],
            }),
        ),
        (
            "notify",
            Response::Notify(WireNotification {
                id: 1,
                batch_seq: 1,
                added: vec![WireEntry { id: 20, score: 19 }],
                removed: vec![9],
                rescored: vec![],
                kth_score: Some(16),
                via_fallback: false,
            }),
        ),
    ];
    let cluster_requests: Vec<(&str, ClusterRequest)> = vec![
        (
            "shard-query-bounds",
            ClusterRequest::ShardQuery(ShardQuery {
                shard: 0,
                algorithm: Algorithm::Big,
                phase: ShardPhase::Bounds,
                tau: None,
                candidates: vec![WireCandidate {
                    values: vec![Some(1.0), None],
                    member: Some(2),
                }],
            }),
        ),
        ("tau-update", ClusterRequest::TauUpdate { tau: 16 }),
        ("handoff", ClusterRequest::Handoff { shard: 1 }),
        (
            "assign",
            ClusterRequest::Assign {
                shard: 1,
                path: "shard-1.seq2.tkd".into(),
                replay: vec![],
            },
        ),
        (
            "shard-update",
            ClusterRequest::ShardUpdate(ShardUpdate {
                shard: 1,
                seq: 3,
                ops: vec![UpdateOp::Delete(7)],
            }),
        ),
    ];
    let cluster_responses: Vec<(&str, ClusterResponse)> = vec![
        (
            "shard-outcomes",
            ClusterResponse::ShardOutcomes(vec![17, 4]),
        ),
        (
            "handoff-ack",
            ClusterResponse::HandoffAck {
                path: "shard-1.seq2.tkd".into(),
                seq: 2,
            },
        ),
        (
            "assign-ack",
            ClusterResponse::AssignAck { shard: 1, live: 9 },
        ),
        (
            "shard-update-ack",
            ClusterResponse::ShardUpdateAck(ShardUpdateAck {
                seq: 3,
                live: 8,
                path: "shard-1.seq3.tkd".into(),
                inserted: vec![],
            }),
        ),
        ("tau-ack", ClusterResponse::TauAck { tau: 16 }),
    ];
    for (name, req) in &requests {
        hex_block(name, &encode_request(req).expect("encodes"));
    }
    for (name, resp) in &responses {
        hex_block(name, &encode_response(resp).expect("encodes"));
    }
    for (name, req) in &cluster_requests {
        hex_block(name, &encode_cluster_request(req).expect("encodes"));
    }
    for (name, resp) in &cluster_responses {
        hex_block(name, &encode_cluster_response(resp).expect("encodes"));
    }
}
