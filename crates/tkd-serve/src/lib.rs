//! tkd-serve: a long-running TCP query service for the dynamic TKD
//! engine.
//!
//! The paper's algorithms answer one query over one dataset; this crate
//! turns the maintained [`tkd_core::DynamicEngine`] into a *service*:
//! a server that loads a `tkd-store` snapshot, answers BIG/IBIG queries
//! and update batches for many concurrent clients over a versioned,
//! checksummed binary protocol, and persists every applied batch with
//! an atomic snapshot rewrite.
//!
//! Three layers, mirroring the crate's test layers:
//! * [`protocol`] — frame encode/decode plus socket framing. Canonical
//!   (`encode(decode(b)) == b`), allocation-guarded, and every
//!   single-byte corruption is a typed error (`frame_roundtrip` tests).
//! * [`Server`] — listener + connection threads + a single engine
//!   thread with query coalescing and admission control
//!   (`fault_injection` and `serve_stress` tests).
//! * [`Client`] — typed blocking caller (`serve_parity` pins every
//!   over-the-wire answer bit-identical to the in-process engines).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod client;
pub mod cluster_wire;
mod error;
pub mod protocol;
mod server;

pub use client::Client;
pub use cluster_wire::{
    ClusterRequest, ClusterResponse, ReplayBatch, ShardPhase, ShardQuery, ShardUpdate,
    ShardUpdateAck, WireCandidate,
};
pub use error::ServeError;
pub use protocol::{
    ErrorFrame, QuerySpec, Request, Response, ServerStats, SubscribeAck, UpdateAck, WireEntry,
    WireNotification,
};
pub use server::{ServeConfig, Server};
