//! The server: a TCP listener, per-connection reader threads, and a
//! single engine thread that owns the [`DynamicEngine`].
//!
//! # Threading model
//!
//! ```text
//! listener thread ──accept──▶ connection threads (one per client)
//!                                   │  decode → submit → await reply
//!                                   ▼
//!                        bounded queue + condvar
//!                                   │
//!                                   ▼
//!                  engine thread (sole owner of the DynamicEngine)
//!                    coalesce queries → query_many
//!                    update batches   → apply + atomic snapshot rewrite
//! ```
//!
//! Only the engine thread ever touches the engine, so updates are
//! single-writer by construction and queries always observe a complete
//! batch boundary. Consecutive single queries at the head of the queue
//! are coalesced into one [`DynamicEngine::query_many`] pass (up to
//! [`ServeConfig::batch_max`]), which amortizes the per-batch index
//! refresh across waiting clients.
//!
//! # Admission control
//!
//! Three gates, each a typed rejection rather than backpressure-by-hang:
//! * queue full at submit → [`ServeError::Overloaded`] with the depth,
//! * waited past [`ServeConfig::request_timeout`] when dequeued →
//!   [`ServeError::Timeout`] with the observed wait,
//! * server draining → [`ServeError::ShuttingDown`].
//!
//! # Shutdown
//!
//! A `shutdown` frame (or [`Server::stop`]) flips the drain flag under
//! the queue lock: no new work is admitted, everything already queued is
//! answered, a final snapshot is rewritten atomically, and the engine is
//! handed back to the caller so nothing in flight is ever silently
//! dropped.

use crate::error::ServeError;
use crate::protocol::{
    self, decode_request_body, encode_response, ErrorFrame, FramePolicy, QuerySpec, Request,
    Response, ServerStats, SubscribeAck, UpdateAck, WireEntry, WireNotification, DEFAULT_MAX_FRAME,
    ERR_BAD_REQUEST, ERR_OVERLOADED, ERR_REJECTED, ERR_SHUTTING_DOWN, ERR_TIMEOUT,
};
use std::collections::{HashMap, VecDeque};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use tkd_core::{DynamicEngine, EngineQuery, Notification, StandingSpec, TieBreak, UpdateOp};

/// Tuning knobs for [`Server::start`].
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Worker threads per `query_many` pass.
    pub threads: usize,
    /// Queue-depth bound — submissions beyond this are rejected
    /// `Overloaded` instead of queued.
    pub max_queue: usize,
    /// Most single queries coalesced into one engine pass.
    pub batch_max: usize,
    /// Queue-wait budget per request; exceeded = typed `Timeout`.
    pub request_timeout: Duration,
    /// Per-frame delivery budget on the socket (slow-loris guard) and
    /// response write budget.
    pub io_timeout: Duration,
    /// Largest accepted frame body.
    pub max_frame: u64,
    /// If set, the snapshot is atomically rewritten here after every
    /// applied update batch and once more at drain.
    pub snapshot: Option<PathBuf>,
    /// How long the startup snapshot load took, reported verbatim in
    /// the `stats` frame (`None` = engine built in-process, reported
    /// as 0). The caller that loaded the snapshot times it and passes
    /// the measurement in.
    pub load_time: Option<Duration>,
    /// Update-batch sequence number to start counting from. 0 for a
    /// fresh server; a server restarted over an existing snapshot
    /// passes its predecessor's last acked seq so the `seq` stream
    /// stays strictly increasing across the restart (the replay
    /// contract clients rely on).
    pub initial_seq: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            threads: 1,
            max_queue: 128,
            batch_max: 32,
            request_timeout: Duration::from_secs(10),
            io_timeout: Duration::from_secs(5),
            max_frame: DEFAULT_MAX_FRAME,
            snapshot: None,
            load_time: None,
            initial_seq: 0,
        }
    }
}

/// Work a connection thread hands the engine thread.
enum Work {
    Query(QuerySpec),
    Batch(Vec<QuerySpec>),
    Update(Vec<UpdateOp>),
    Stats,
    Shutdown,
    /// Register a standing query; deltas are pushed through the sink.
    Subscribe(StandingSpec, Arc<PushSink>),
    Unsubscribe(u64),
    /// A TKDQL statement (v4); `SUBSCRIBE TO …` registers on the sink.
    QueryText(String, Arc<PushSink>),
}

/// A connection's outbox for server-initiated frames. The engine thread
/// enqueues sealed `notify` frames; the owning connection thread writes
/// them between client requests (so a push can never interleave inside a
/// request/response exchange on the wire). When the connection dies it
/// flips `alive`, and the engine thread unregisters the orphaned
/// standing queries the next time it routes to the sink.
#[derive(Default)]
struct PushSink {
    frames: Mutex<VecDeque<Vec<u8>>>,
    /// Rung by [`PushSink::push`] so an idle subscriber's connection
    /// thread wakes and writes the frame immediately instead of on its
    /// next poll tick — pushes buffered *before* a poll began its sleep
    /// used to wait out the whole tick.
    bell: Condvar,
    dead: AtomicBool,
    /// Set by the engine thread when the first standing query registers
    /// on this connection; switches the idle loop to the short
    /// bell-waiting cadence. Never cleared — a once-subscribed
    /// connection stays latency-sensitive.
    subscribed: AtomicBool,
}

impl PushSink {
    fn push(&self, frame: Vec<u8>) {
        self.frames.lock().expect("push sink lock").push_back(frame);
        self.bell.notify_all();
    }

    fn drain(&self) -> Vec<Vec<u8>> {
        self.frames
            .lock()
            .expect("push sink lock")
            .drain(..)
            .collect()
    }

    /// Park until a frame is buffered or `wait` elapses. Returns
    /// immediately if one is already there.
    fn wait_for_push(&self, wait: Duration) {
        let guard = self.frames.lock().expect("push sink lock");
        if guard.is_empty() {
            let _ = self.bell.wait_timeout(guard, wait).expect("push sink lock");
        }
    }
}

/// How often an idle connection checks for pushed frames (and shutdown).
const PUSH_POLL: Duration = Duration::from_millis(50);
/// The idle cadence of a *subscribed* connection: a short socket probe,
/// then a bell-interruptible park. Worst-case delivery latency for a
/// buffered push is one probe plus one park (~5 ms), an order of
/// magnitude under [`PUSH_POLL`] — `serve_parity` asserts this.
const SUBSCRIBED_PROBE: Duration = Duration::from_millis(1);
/// Bell-interruptible park length between subscribed-idle probes.
const SUBSCRIBED_PARK: Duration = Duration::from_millis(4);

struct Pending {
    work: Work,
    enqueued: Instant,
    resp: mpsc::Sender<Response>,
}

struct Queue {
    items: VecDeque<Pending>,
    draining: bool,
}

struct Shared {
    queue: Mutex<Queue>,
    notify: Condvar,
    /// Tells connection threads and the listener to wind down. Set by
    /// the engine thread once the drain completes (or by `stop`).
    shutdown: AtomicBool,
    overloaded: AtomicU64,
    config: ServeConfig,
}

impl Shared {
    fn stopping(&self) -> bool {
        self.shutdown.load(Ordering::Acquire)
    }
}

/// A running serve instance. Dropping it without [`Server::stop`] /
/// [`Server::join`] detaches the threads (they exit on the next poll
/// after the process-exit teardown closes the listener).
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    listener_handle: Option<JoinHandle<()>>,
    engine_handle: Option<JoinHandle<()>>,
    conns: Arc<Mutex<Vec<JoinHandle<()>>>>,
    engine_rx: mpsc::Receiver<DynamicEngine>,
}

impl Server {
    /// Bind `addr`, take ownership of `engine`, and start serving.
    ///
    /// # Errors
    /// [`ServeError::Io`] if the address cannot be bound.
    pub fn start(
        engine: DynamicEngine,
        addr: impl ToSocketAddrs,
        config: ServeConfig,
    ) -> Result<Server, ServeError> {
        let listener = TcpListener::bind(addr).map_err(ServeError::from)?;
        listener.set_nonblocking(true).map_err(ServeError::from)?;
        let addr = listener.local_addr().map_err(ServeError::from)?;
        let shared = Arc::new(Shared {
            queue: Mutex::new(Queue {
                items: VecDeque::new(),
                draining: false,
            }),
            notify: Condvar::new(),
            shutdown: AtomicBool::new(false),
            overloaded: AtomicU64::new(0),
            config,
        });
        let conns: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let (engine_tx, engine_rx) = mpsc::channel();

        let engine_handle = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || engine_loop(engine, shared, engine_tx))
        };
        let listener_handle = {
            let shared = Arc::clone(&shared);
            let conns = Arc::clone(&conns);
            std::thread::spawn(move || listener_loop(listener, shared, conns))
        };
        Ok(Server {
            addr,
            shared,
            listener_handle: Some(listener_handle),
            engine_handle: Some(engine_handle),
            conns,
            engine_rx,
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Drain and stop from the server side: stop admitting work, answer
    /// everything queued, rewrite the final snapshot, and hand the
    /// engine back.
    ///
    /// # Errors
    /// [`ServeError::ShuttingDown`] if the engine thread is already gone
    /// without handing the engine over (it panicked).
    pub fn stop(mut self) -> Result<DynamicEngine, ServeError> {
        {
            let mut q = self.shared.queue.lock().expect("queue lock");
            q.draining = true;
        }
        self.shared.notify.notify_all();
        self.reap()
    }

    /// Wait for a client-initiated `shutdown` frame to drain the server,
    /// then hand the engine back.
    ///
    /// # Errors
    /// [`ServeError::ShuttingDown`] if the engine thread died without
    /// completing the drain.
    pub fn join(mut self) -> Result<DynamicEngine, ServeError> {
        self.reap()
    }

    fn reap(&mut self) -> Result<DynamicEngine, ServeError> {
        // The engine arrives when the drain finishes — from `stop`'s
        // flag or a client shutdown frame. recv also returns (with Err)
        // if the engine thread panicked, so this cannot hang.
        let engine = self.engine_rx.recv().map_err(|_| ServeError::ShuttingDown);
        self.shared.shutdown.store(true, Ordering::Release);
        if let Some(h) = self.engine_handle.take() {
            let _ = h.join();
        }
        if let Some(h) = self.listener_handle.take() {
            let _ = h.join();
        }
        let handles = std::mem::take(&mut *self.conns.lock().expect("conn list lock"));
        for h in handles {
            let _ = h.join();
        }
        engine
    }
}

/// Accept loop: nonblocking accepts with a short sleep so the shutdown
/// flag is observed promptly.
fn listener_loop(
    listener: TcpListener,
    shared: Arc<Shared>,
    conns: Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    while !shared.stopping() {
        match listener.accept() {
            Ok((stream, _)) => {
                let shared = Arc::clone(&shared);
                let handle = std::thread::spawn(move || connection_loop(stream, shared));
                conns.lock().expect("conn list lock").push(handle);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(25));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(25)),
        }
    }
}

/// One client connection: read frames, submit work, relay responses, and
/// write standing-query pushes whenever the line is quiet. Every failure
/// path ends in a typed error frame (best effort), a retired push sink,
/// and a clean close — never a panic, and never a wedged server.
fn connection_loop(stream: TcpStream, shared: Arc<Shared>) {
    let sink = Arc::new(PushSink::default());
    connection_loop_inner(stream, &shared, &sink);
    // However the connection ended, orphan its subscriptions: the engine
    // thread unregisters them on the next notification it routes here.
    sink.dead.store(true, Ordering::Release);
}

fn connection_loop_inner(mut stream: TcpStream, shared: &Arc<Shared>, sink: &Arc<PushSink>) {
    let _ = stream.set_nodelay(true);
    let policy = FramePolicy {
        frame_timeout: shared.config.io_timeout,
        idle_timeout: None,
    };
    loop {
        // Idle phase: wait for the next request to *start*, flushing
        // pushed frames between polls. `peek` consumes nothing, so a
        // frame arriving mid-poll is read intact below. Unsubscribed
        // connections idle on the long poll; subscribed ones use a
        // short probe plus a bell-interruptible park so a buffered
        // push goes out in milliseconds, not on the next tick.
        loop {
            if shared.stopping() {
                return;
            }
            if !flush_pushes(&mut stream, shared, sink) {
                return;
            }
            let subscribed = sink.subscribed.load(Ordering::Acquire);
            let probe_wait = if subscribed {
                SUBSCRIBED_PROBE
            } else {
                PUSH_POLL
            };
            if stream.set_read_timeout(Some(probe_wait)).is_err() {
                return;
            }
            let mut probe = [0u8; 1];
            match stream.peek(&mut probe) {
                Ok(0) => return, // clean EOF between frames
                Ok(_) => break,  // a frame has started
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    if subscribed {
                        sink.wait_for_push(SUBSCRIBED_PARK);
                    }
                }
                Err(_) => return,
            }
        }
        let stop = || shared.stopping();
        let (kind, body) =
            match protocol::read_frame(&mut stream, shared.config.max_frame, policy, &stop) {
                Ok(frame) => frame,
                Err(ServeError::Disconnected) | Err(ServeError::ShuttingDown) => return,
                Err(e) => {
                    // Malformed or stalled input. The stream may be
                    // desynchronized, so answer once and close.
                    respond(&mut stream, shared, bad_request(&e));
                    return;
                }
            };
        let request = match decode_request_body(kind, body.as_slice()) {
            Ok(r) => r,
            Err(e) => {
                // Frame boundaries were intact (exactly header+body was
                // consumed), but the body is invalid. Reject and close:
                // a peer that speaks the framing but not the schema is
                // not going to get better.
                respond(&mut stream, shared, bad_request(&e));
                return;
            }
        };
        let work = match request {
            Request::Query(q) => Work::Query(q),
            Request::QueryBatch(qs) => Work::Batch(qs),
            Request::UpdateOps(ops) => Work::Update(ops),
            Request::Stats => Work::Stats,
            Request::Shutdown => Work::Shutdown,
            Request::Subscribe(spec) => Work::Subscribe(spec, Arc::clone(sink)),
            Request::Unsubscribe(id) => Work::Unsubscribe(id),
            Request::QueryText(text) => Work::QueryText(text, Arc::clone(sink)),
        };
        let reply = match submit(shared, work) {
            Ok(rx) => match rx.recv() {
                Ok(resp) => resp,
                // Engine thread gone mid-request (drain raced us or it
                // panicked): the typed answer is ShuttingDown.
                Err(_) => Response::Error(ErrorFrame {
                    code: ERR_SHUTTING_DOWN,
                    datum: 0,
                    message: ServeError::ShuttingDown.to_string(),
                }),
            },
            Err(resp) => resp,
        };
        if !respond(&mut stream, shared, reply) {
            return;
        }
    }
}

/// Write every queued push frame. Returns false if the peer is gone.
fn flush_pushes(stream: &mut TcpStream, shared: &Shared, sink: &PushSink) -> bool {
    for frame in sink.drain() {
        if protocol::write_frame_bytes(stream, &frame, shared.config.io_timeout).is_err() {
            return false;
        }
    }
    true
}

/// Admission control, under the queue lock. Returns the response
/// channel on success, a typed rejection frame otherwise.
fn submit(shared: &Shared, work: Work) -> Result<mpsc::Receiver<Response>, Response> {
    let mut q = shared.queue.lock().expect("queue lock");
    if q.draining || shared.stopping() {
        return Err(Response::Error(ErrorFrame {
            code: ERR_SHUTTING_DOWN,
            datum: 0,
            message: ServeError::ShuttingDown.to_string(),
        }));
    }
    let depth = q.items.len() as u64;
    if q.items.len() >= shared.config.max_queue {
        shared.overloaded.fetch_add(1, Ordering::Relaxed);
        return Err(Response::Error(ErrorFrame {
            code: ERR_OVERLOADED,
            datum: depth,
            message: ServeError::Overloaded { depth }.to_string(),
        }));
    }
    let (tx, rx) = mpsc::channel();
    q.items.push_back(Pending {
        work,
        enqueued: Instant::now(),
        resp: tx,
    });
    drop(q);
    shared.notify.notify_all();
    Ok(rx)
}

fn bad_request(e: &ServeError) -> Response {
    Response::Error(ErrorFrame {
        code: ERR_BAD_REQUEST,
        datum: 0,
        message: e.to_string(),
    })
}

/// Write one response frame. Returns false if the connection should
/// close (write failed — peer is gone or stalled — or the response
/// itself cannot be framed).
fn respond(stream: &mut TcpStream, shared: &Shared, resp: Response) -> bool {
    match encode_response(&resp) {
        Ok(frame) => protocol::write_frame_bytes(stream, &frame, shared.config.io_timeout).is_ok(),
        Err(_) => false,
    }
}

/// Counters the engine thread owns (it also answers `stats`, so no
/// synchronization is needed beyond the shared `overloaded` atomic).
#[derive(Default)]
struct EngineCounters {
    seq: u64,
    served_queries: u64,
    coalesced_batches: u64,
    timeouts: u64,
}

/// The single-writer loop: sole owner of the engine from start to drain.
/// It also owns the subscription registry (standing-query id → the push
/// sink of the connection that registered it).
fn engine_loop(mut engine: DynamicEngine, shared: Arc<Shared>, done: mpsc::Sender<DynamicEngine>) {
    let mut counters = EngineCounters {
        seq: shared.config.initial_seq,
        ..EngineCounters::default()
    };
    let mut subs: HashMap<u64, Arc<PushSink>> = HashMap::new();
    loop {
        let (batch, drain_now) = next_batch(&shared);
        if !batch.is_empty() {
            serve_one(&mut engine, &shared, &mut counters, &mut subs, batch);
        }
        if drain_now {
            break;
        }
    }
    // Everything queued has been answered; `submit` rejects once the
    // drain flag is up and `next_batch` only reports drained when the
    // queue is empty under the same lock — but sweep anyway, so the
    // invariant "no accepted request goes unanswered" survives future
    // refactors of either side rather than resting on their interplay.
    sweep_leftovers(&shared);
    // Final snapshot, then hand the engine back.
    if let Some(path) = &shared.config.snapshot {
        let _ = tkd_store::save_engine(path, &mut engine);
    }
    shared.shutdown.store(true, Ordering::Release);
    let _ = done.send(engine);
}

/// Answer every request still queued at drain completion with a typed
/// `ShuttingDown` rejection. Returns how many were swept (0 in every
/// reachable interleaving today; the drain-race stress test pins that
/// clients never hang either way).
fn sweep_leftovers(shared: &Shared) -> usize {
    let leftovers: Vec<Pending> = {
        let mut q = shared.queue.lock().expect("queue lock");
        q.items.drain(..).collect()
    };
    let count = leftovers.len();
    for p in leftovers {
        let _ = p.resp.send(Response::Error(ErrorFrame {
            code: ERR_SHUTTING_DOWN,
            datum: 0,
            message: ServeError::ShuttingDown.to_string(),
        }));
    }
    count
}

/// Block for work; pop either one non-query item or a coalesced run of
/// consecutive single queries. Returns `(work, queue fully drained and
/// draining flag set)`.
fn next_batch(shared: &Shared) -> (Vec<Pending>, bool) {
    let mut q = shared.queue.lock().expect("queue lock");
    loop {
        if let Some(first) = q.items.pop_front() {
            let mut batch = vec![first];
            if matches!(batch[0].work, Work::Query(_)) {
                // Coalesce the run of single queries behind it.
                while batch.len() < shared.config.batch_max.max(1) {
                    match q.items.front() {
                        Some(p) if matches!(p.work, Work::Query(_)) => {
                            batch.push(q.items.pop_front().expect("front exists"));
                        }
                        _ => break,
                    }
                }
            }
            let drained = q.draining && q.items.is_empty();
            return (batch, drained);
        }
        if q.draining {
            return (Vec::new(), true);
        }
        let (guard, _) = shared
            .notify
            .wait_timeout(q, Duration::from_millis(50))
            .expect("queue lock");
        q = guard;
    }
}

fn serve_one(
    engine: &mut DynamicEngine,
    shared: &Shared,
    counters: &mut EngineCounters,
    subs: &mut HashMap<u64, Arc<PushSink>>,
    batch: Vec<Pending>,
) {
    // Per-request queue-wait timeout, checked at dequeue (shutdown,
    // stats, and subscription management are control traffic and
    // exempt).
    let mut live: Vec<Pending> = Vec::with_capacity(batch.len());
    for p in batch {
        let waited = p.enqueued.elapsed();
        let expendable = matches!(
            p.work,
            Work::Query(_) | Work::Batch(_) | Work::Update(_) | Work::QueryText(_, _)
        );
        if expendable && waited > shared.config.request_timeout {
            counters.timeouts += 1;
            // Saturate rather than truncate: a pathological wait must
            // not report as a short one.
            let waited_ms = u64::try_from(waited.as_millis()).unwrap_or(u64::MAX);
            let _ = p.resp.send(Response::Error(ErrorFrame {
                code: ERR_TIMEOUT,
                datum: waited_ms,
                message: ServeError::Timeout { waited_ms }.to_string(),
            }));
            continue;
        }
        live.push(p);
    }
    if live.is_empty() {
        return;
    }
    if live.len() > 1 {
        // Only runs of single queries are ever batched together.
        counters.coalesced_batches += 1;
        let specs: Vec<QuerySpec> = live
            .iter()
            .map(|p| match &p.work {
                Work::Query(q) => *q,
                _ => unreachable!("coalesced batches contain only single queries"),
            })
            .collect();
        let results = run_queries(engine, shared, &specs);
        counters.served_queries += specs.len() as u64;
        match results {
            Ok(all) => {
                for (p, entries) in live.into_iter().zip(all) {
                    let _ = p.resp.send(Response::QueryResult(entries));
                }
            }
            Err(resp) => {
                for p in live {
                    let _ = p.resp.send(resp.clone());
                }
            }
        }
        return;
    }
    let p = live.pop().expect("one pending");
    let resp = match &p.work {
        Work::Query(spec) => {
            counters.served_queries += 1;
            match run_queries(engine, shared, std::slice::from_ref(spec)) {
                Ok(mut all) => Response::QueryResult(all.pop().expect("one result")),
                Err(resp) => resp,
            }
        }
        Work::Batch(specs) => {
            counters.served_queries += specs.len() as u64;
            match run_queries(engine, shared, specs) {
                Ok(all) => Response::BatchResult(all),
                Err(resp) => resp,
            }
        }
        Work::Update(ops) => apply_updates(engine, shared, counters, subs, ops),
        Work::Stats => Response::StatsResult(gather_stats(engine, shared, counters)),
        Work::Subscribe(spec, sink) => match engine.register(spec.clone()) {
            Ok(id) => {
                let result = engine
                    .standing_result(id)
                    .unwrap_or(&[])
                    .iter()
                    .map(|e| WireEntry {
                        id: u64::from(e.id),
                        score: e.score as u64,
                    })
                    .collect();
                sink.subscribed.store(true, Ordering::Release);
                subs.insert(id, Arc::clone(sink));
                Response::SubscribeAck(SubscribeAck { id, result })
            }
            Err(e) => Response::Error(ErrorFrame {
                code: ERR_REJECTED,
                datum: 0,
                message: e.to_string(),
            }),
        },
        Work::Unsubscribe(id) => {
            subs.remove(id);
            Response::UnsubscribeAck(engine.unregister(*id))
        }
        Work::QueryText(text, sink) => serve_query_text(engine, counters, subs, text, sink),
        Work::Shutdown => {
            // Flip the drain flag under the queue lock so no submission
            // can slip in after the ack; everything already queued is
            // still answered before the final snapshot.
            let mut q = shared.queue.lock().expect("queue lock");
            q.draining = true;
            drop(q);
            Response::ShutdownAck
        }
    };
    let _ = p.resp.send(resp);
}

/// Answer a TKDQL statement against the serving engine: `SELECT` runs
/// one-shot, `EXPLAIN` renders the plan, `SUBSCRIBE TO SELECT` registers
/// a standing query on this connection's push sink. Statement errors
/// (with their line/column spans) come back as `ERR_REJECTED` frames —
/// the wire frame itself was well-formed.
fn serve_query_text(
    engine: &mut DynamicEngine,
    counters: &mut EngineCounters,
    subs: &mut HashMap<u64, Arc<PushSink>>,
    text: &str,
    sink: &Arc<PushSink>,
) -> Response {
    let reject = |message: String| {
        Response::Error(ErrorFrame {
            code: ERR_REJECTED,
            datum: 0,
            message,
        })
    };
    let stmt = match tkd_ql::parse(text) {
        Ok(s) => s,
        Err(e) => return reject(e.to_string()),
    };
    if stmt.select.from.is_some() {
        return reject(
            "FROM is not accepted over the wire; the server's engine is the target".into(),
        );
    }
    let plan = tkd_ql::bind(&stmt, engine.dims()).and_then(tkd_ql::optimizer::plan);
    let plan = match plan {
        Ok(p) => p,
        Err(e) => return reject(e.to_string()),
    };
    match tkd_ql::run_on_engine(&plan, engine) {
        Ok(tkd_ql::Outcome::Rows(r)) => {
            counters.served_queries += 1;
            Response::QueryResult(
                r.entries()
                    .iter()
                    .map(|e| WireEntry {
                        id: u64::from(e.id),
                        score: e.score as u64,
                    })
                    .collect(),
            )
        }
        Ok(tkd_ql::Outcome::Explain(rendered)) => Response::ExplainResult(rendered),
        Ok(tkd_ql::Outcome::Subscribed { id, initial }) => {
            let result = initial
                .iter()
                .map(|e| WireEntry {
                    id: u64::from(e.id),
                    score: e.score as u64,
                })
                .collect();
            sink.subscribed.store(true, Ordering::Release);
            subs.insert(id, Arc::clone(sink));
            Response::SubscribeAck(SubscribeAck { id, result })
        }
        Err(e) => reject(e.to_string()),
    }
}

/// Answer a slice of wire queries through one `query_many` pass.
fn run_queries(
    engine: &mut DynamicEngine,
    shared: &Shared,
    specs: &[QuerySpec],
) -> Result<Vec<Vec<WireEntry>>, Response> {
    let queries: Vec<EngineQuery> = specs
        .iter()
        .map(|s| EngineQuery {
            // Saturating: any k ≥ the object count means "all of them",
            // so clamping to usize::MAX preserves the answer on every
            // target width.
            k: usize::try_from(s.k).unwrap_or(usize::MAX),
            algorithm: s.algorithm,
            tie: TieBreak::ById,
        })
        .collect();
    match engine.query_many(&queries, shared.config.threads.max(1)) {
        Ok(results) => Ok(results
            .into_iter()
            .map(|r| {
                r.into_iter()
                    .map(|e| WireEntry {
                        id: u64::from(e.id),
                        score: e.score as u64,
                    })
                    .collect()
            })
            .collect()),
        Err(e) => Err(Response::Error(ErrorFrame {
            code: ERR_REJECTED,
            datum: 0,
            message: e.to_string(),
        })),
    }
}

/// Apply one update batch as a maintenance unit
/// ([`DynamicEngine::apply_ops`]), route the standing-query deltas it
/// produced, then atomically rewrite the snapshot. A failing op stops
/// the batch: the `Rejected` frame carries its index, and ops before it
/// remain applied (the same front-to-back contract as
/// [`DynamicEngine::apply_all`]) — standing results are maintained over
/// the partial batch, so subscribers stay consistent either way. `seq`
/// advances whenever at least one op applied, so a sequential replay of
/// acked/partially applied batches in `seq` order reproduces the engine
/// exactly.
fn apply_updates(
    engine: &mut DynamicEngine,
    shared: &Shared,
    counters: &mut EngineCounters,
    subs: &mut HashMap<u64, Arc<PushSink>>,
    ops: &[UpdateOp],
) -> Response {
    let report = engine.apply_ops(ops);
    if report.applied > 0 {
        counters.seq += 1;
    }
    route_notifications(engine, subs, &report.notifications);
    if let Some((i, e)) = &report.error {
        return Response::Error(ErrorFrame {
            code: ERR_REJECTED,
            datum: *i as u64,
            message: e.to_string(),
        });
    }
    if let Some(path) = &shared.config.snapshot {
        if let Err(e) = tkd_store::save_engine(path, engine) {
            // The ops ARE applied; the durability side failed. Surface
            // that precisely rather than pretending either way.
            return Response::Error(ErrorFrame {
                code: ERR_REJECTED,
                datum: ops.len() as u64,
                message: format!("ops applied but snapshot rewrite failed: {e}"),
            });
        }
    }
    Response::UpdateAck(UpdateAck {
        applied: report.applied as u64,
        seq: counters.seq,
        epoch: engine.epoch(),
        live: engine.len() as u64,
        tombstones: engine.tombstones() as u64,
        inserted_ids: report
            .inserted_ids
            .iter()
            .map(|&id| u64::from(id))
            .collect(),
    })
}

/// Fan each notification out to the sink of the connection that
/// registered its query. Dead sinks (disconnected subscribers) get their
/// standing queries unregistered here — the lazy half of
/// unsubscribe-on-disconnect.
fn route_notifications(
    engine: &mut DynamicEngine,
    subs: &mut HashMap<u64, Arc<PushSink>>,
    notes: &[Notification],
) {
    for note in notes {
        let Some(sink) = subs.get(&note.id) else {
            continue;
        };
        if sink.dead.load(Ordering::Acquire) {
            subs.remove(&note.id);
            engine.unregister(note.id);
            continue;
        }
        let wire = WireNotification {
            id: note.id,
            batch_seq: note.batch_seq,
            added: entries_to_wire(&note.added),
            removed: note.removed.iter().map(|&id| u64::from(id)).collect(),
            rescored: entries_to_wire(&note.rescored),
            kth_score: note.kth_score.map(|s| s as u64),
            via_fallback: note.via_fallback,
        };
        if let Ok(frame) = encode_response(&Response::Notify(wire)) {
            sink.push(frame);
        }
    }
}

fn entries_to_wire(entries: &[tkd_core::ResultEntry]) -> Vec<WireEntry> {
    entries
        .iter()
        .map(|e| WireEntry {
            id: u64::from(e.id),
            score: e.score as u64,
        })
        .collect()
}

fn gather_stats(engine: &DynamicEngine, shared: &Shared, counters: &EngineCounters) -> ServerStats {
    let es = engine.stats();
    let depth = shared.queue.lock().expect("queue lock").items.len() as u64;
    ServerStats {
        live: engine.len() as u64,
        tombstones: engine.tombstones() as u64,
        epoch: engine.epoch(),
        seq: counters.seq,
        inserts: es.inserts as u64,
        deletes: es.deletes as u64,
        cell_updates: es.cell_updates as u64,
        compactions: es.compactions as u64,
        served_queries: counters.served_queries,
        coalesced_batches: counters.coalesced_batches,
        overloaded: shared.overloaded.load(Ordering::Relaxed),
        timeouts: counters.timeouts,
        queue_depth: depth,
        load_micros: shared
            .config
            .load_time
            .map_or(0, |t| t.as_micros().min(u64::MAX as u128) as u64),
        borrowed: u64::from(engine.storage_report().is_borrowed()),
    }
}
