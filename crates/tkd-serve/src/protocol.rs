//! The versioned wire protocol — length-prefixed, checksummed binary
//! frames over TCP.
//!
//! # Frame layout (protocol version 5)
//!
//! ```text
//! magic      4 bytes   "TKDW"
//! version    u32       5
//! checksum   u64       fnv64 over every byte after this field
//!                      (kind ‖ len ‖ body)
//! kind       u8        frame kind (requests 1–8, cluster requests
//!                      16–20, responses 128–137, cluster responses
//!                      144–148)
//! len        u64       body length in bytes
//! body       len bytes kind-specific payload
//! ```
//!
//! All integers are little-endian. The checksum covers the kind and
//! length fields as well as the body, so **any** single flipped byte in
//! a frame surfaces as a typed [`ServeError`]: magic/version flips fail
//! their equality checks, and every other flip lands in the checksummed
//! region (`crates/tkd-serve/tests/frame_roundtrip.rs` fuzzes this).
//! Declared lengths are validated against the configured cap *before*
//! any allocation — a hostile `u64::MAX` length is an error, not an OOM
//! — and, when decoding from a byte buffer, against the bytes actually
//! present.
//!
//! Decoding is **canonical**: every accepted frame re-encodes to the
//! identical bytes (`encode(decode(b)) == b`), the same golden-file
//! discipline as the snapshot format. Trailing bytes, non-0/1 presence
//! flags, NaN cell values, out-of-range ids, and unknown enum bytes are
//! all rejected as [`ServeError::BadFrame`].
//!
//! **Compatibility policy:** exact version match, like snapshots — a
//! frame from any other protocol version fails with
//! [`ServeError::VersionMismatch`]; there is no negotiation.

use crate::error::ServeError;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};
use tkd_core::{Algorithm, StandingSpec, UpdateOp};
use tkd_store::fnv64;

/// First four bytes of every frame.
pub const MAGIC: [u8; 4] = *b"TKDW";

/// The protocol version this build speaks — reads and writes.
/// Version 3 added standing queries: `subscribe`/`unsubscribe` requests
/// and server-pushed `notify` frames carrying per-batch result deltas.
/// Version 4 added TKDQL text queries: a `query_text` request carrying a
/// statement, and an `explain_result` response carrying the rendered
/// plan. Version 5 adds the cluster frames — `shard_query`,
/// `tau_update`, `handoff`, `assign`, `shard_update` and their answers —
/// spoken between the `tkd-cluster` coordinator and its shard workers
/// (the normative spec is `docs/WIRE_PROTOCOL.md`).
pub const PROTOCOL_VERSION: u32 = 5;

/// Frame header bytes: magic + version + checksum + kind + len.
pub const HEADER_LEN: usize = 4 + 4 + 8 + 1 + 8;

/// Default cap on a frame body (16 MiB) — plenty for any realistic
/// batch, small enough that a hostile length cannot balloon memory.
pub const DEFAULT_MAX_FRAME: u64 = 16 * 1024 * 1024;

// Frame kinds. Requests and responses share the header format but use
// disjoint kind ranges so a misdirected frame fails loudly. The cluster
// frames (`cluster_wire`) use 16–20 / 144–148 — disjoint again, so a
// cluster frame sent at a plain server (or vice versa) is a typed
// "unknown kind" error, not a misparse.
const KIND_QUERY: u8 = 1;
const KIND_QUERY_BATCH: u8 = 2;
const KIND_UPDATE_OPS: u8 = 3;
const KIND_STATS: u8 = 4;
const KIND_SHUTDOWN: u8 = 5;
const KIND_SUBSCRIBE: u8 = 6;
const KIND_UNSUBSCRIBE: u8 = 7;
const KIND_QUERY_TEXT: u8 = 8;
const KIND_QUERY_RESULT: u8 = 128;
const KIND_BATCH_RESULT: u8 = 129;
const KIND_UPDATE_ACK: u8 = 130;
const KIND_STATS_RESULT: u8 = 131;
const KIND_SHUTDOWN_ACK: u8 = 132;
const KIND_ERROR: u8 = 133;
const KIND_SUBSCRIBE_ACK: u8 = 134;
const KIND_UNSUBSCRIBE_ACK: u8 = 135;
/// Server-initiated: pushed after an acked update batch, never in
/// answer to a request. Clients must tolerate one arriving where a
/// response is expected.
const KIND_NOTIFY: u8 = 136;
const KIND_EXPLAIN_RESULT: u8 = 137;
/// Shared with the cluster plane: a worker's typed rejection uses the
/// same error frame a plain server sends.
pub(crate) const KIND_ERROR_SHARED: u8 = KIND_ERROR;

// Error-frame codes (the `code` byte of [`ErrorFrame`]).
/// Admission control rejected the request: queue full.
pub const ERR_OVERLOADED: u8 = 1;
/// The request sat in queue past its timeout budget.
pub const ERR_TIMEOUT: u8 = 2;
/// The server is draining and admits no new work.
pub const ERR_SHUTTING_DOWN: u8 = 3;
/// The server rejected the request content (update validation, …).
pub const ERR_REJECTED: u8 = 4;
/// The server could not parse or admit the request frame.
pub const ERR_BAD_REQUEST: u8 = 5;

/// One query over the wire: `k` plus the answering algorithm.
///
/// Only the index-guided algorithms are representable — the serving
/// engine maintains BIG/IBIG artifacts, and the wire enum leaves room
/// for the rest without admitting them.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct QuerySpec {
    /// How many dominating objects to return.
    pub k: u64,
    /// BIG or IBIG (the two the dynamic store serves).
    pub algorithm: Algorithm,
}

impl QuerySpec {
    /// A top-`k` BIG query.
    pub fn new(k: usize) -> Self {
        QuerySpec {
            k: k as u64,
            algorithm: Algorithm::Big,
        }
    }

    /// Select the algorithm.
    pub fn algorithm(mut self, a: Algorithm) -> Self {
        self.algorithm = a;
        self
    }
}

/// A client→server frame.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// One query.
    Query(QuerySpec),
    /// An explicit batch of queries, answered together.
    QueryBatch(Vec<QuerySpec>),
    /// A batch of update ops, applied by the single writer in order.
    UpdateOps(Vec<UpdateOp>),
    /// Ask for server/engine statistics.
    Stats,
    /// Drain and stop the server.
    Shutdown,
    /// Register a standing query on this connection; the server pushes a
    /// [`Response::Notify`] delta after every acked update batch.
    Subscribe(StandingSpec),
    /// Remove a standing query previously registered on any connection.
    Unsubscribe(u64),
    /// A TKDQL statement (v4). `SELECT` answers with
    /// [`Response::QueryResult`], `EXPLAIN` with
    /// [`Response::ExplainResult`], and `SUBSCRIBE TO SELECT` registers
    /// on this connection and answers with [`Response::SubscribeAck`].
    /// A `FROM` clause is rejected — the server's engine is the target.
    QueryText(String),
}

/// One result entry over the wire.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WireEntry {
    /// Stable object id.
    pub id: u64,
    /// Dominating score.
    pub score: u64,
}

/// Acknowledgement of an applied update batch.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct UpdateAck {
    /// Ops applied (the whole batch, on success).
    pub applied: u64,
    /// Server-global update-batch sequence number (strictly increasing;
    /// the order a sequential replay must use).
    pub seq: u64,
    /// Engine compaction epoch after the batch.
    pub epoch: u64,
    /// Live objects after the batch.
    pub live: u64,
    /// Tombstoned slots after the batch.
    pub tombstones: u64,
    /// Stable ids assigned to this batch's inserts, in op order.
    pub inserted_ids: Vec<u64>,
}

/// Server/engine statistics (the `stats` frame's answer).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub struct ServerStats {
    /// Live objects.
    pub live: u64,
    /// Tombstoned slots.
    pub tombstones: u64,
    /// Engine compaction epoch.
    pub epoch: u64,
    /// Update batches applied so far (matches the last ack's `seq`).
    pub seq: u64,
    /// Lifetime successful inserts.
    pub inserts: u64,
    /// Lifetime successful deletes.
    pub deletes: u64,
    /// Lifetime successful cell updates.
    pub cell_updates: u64,
    /// Lifetime compactions.
    pub compactions: u64,
    /// Queries answered (batch members counted individually).
    pub served_queries: u64,
    /// `query_many` batches the coalescer formed.
    pub coalesced_batches: u64,
    /// Requests rejected by admission control.
    pub overloaded: u64,
    /// Requests abandoned after their queue-wait timeout.
    pub timeouts: u64,
    /// Pending requests at the time of the stats call.
    pub queue_depth: u64,
    /// Wall time the startup snapshot load took, in microseconds — 0
    /// when the engine was built in-process rather than loaded.
    pub load_micros: u64,
    /// 1 while the engine still serves storage **borrowed** from the
    /// zero-copy snapshot buffer, 0 once fully promoted/owned (fresh
    /// builds, big-endian hosts, or after mutations touched everything).
    pub borrowed: u64,
}

/// A typed rejection relayed to the client.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ErrorFrame {
    /// One of the `ERR_*` codes.
    pub code: u8,
    /// Code-specific datum (queue depth, waited ms, op index, …).
    pub datum: u64,
    /// Human-readable reason.
    pub message: String,
}

/// One standing-query result delta over the wire — the serialized form
/// of [`tkd_core::Notification`].
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct WireNotification {
    /// The standing-query id the delta belongs to.
    pub id: u64,
    /// The engine's batch sequence number — strictly consecutive per
    /// subscription, so a gap means a lost notification.
    pub batch_seq: u64,
    /// Entries that entered the top-k.
    pub added: Vec<WireEntry>,
    /// Ids that left the top-k.
    pub removed: Vec<u64>,
    /// Entries that stayed but were re-scored.
    pub rescored: Vec<WireEntry>,
    /// The k-th maintained score (τ) after the batch, if any.
    pub kth_score: Option<u64>,
    /// Whether the server took the full re-query path for this batch.
    pub via_fallback: bool,
}

/// Acknowledgement of a [`Request::Subscribe`].
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct SubscribeAck {
    /// The id deltas will arrive under (and `unsubscribe` takes).
    pub id: u64,
    /// The full initial result — the base the first delta applies to.
    pub result: Vec<WireEntry>,
}

/// A server→client frame.
#[derive(Clone, Debug, PartialEq)]
pub enum Response {
    /// Answer to [`Request::Query`].
    QueryResult(Vec<WireEntry>),
    /// Answer to [`Request::QueryBatch`], in batch order.
    BatchResult(Vec<Vec<WireEntry>>),
    /// Answer to [`Request::UpdateOps`].
    UpdateAck(UpdateAck),
    /// Answer to [`Request::Stats`].
    StatsResult(ServerStats),
    /// Answer to [`Request::Shutdown`].
    ShutdownAck,
    /// Typed rejection of any request.
    Error(ErrorFrame),
    /// Answer to [`Request::Subscribe`].
    SubscribeAck(SubscribeAck),
    /// Answer to [`Request::Unsubscribe`]: whether the id was registered.
    UnsubscribeAck(bool),
    /// Server-pushed standing-query delta (not an answer to anything).
    Notify(WireNotification),
    /// Answer to a [`Request::QueryText`] carrying `EXPLAIN` (v4): the
    /// rendered plan, UTF-8 text.
    ExplainResult(String),
}

impl ErrorFrame {
    /// The [`ServeError`] this frame relays.
    pub fn to_error(&self) -> ServeError {
        match self.code {
            ERR_OVERLOADED => ServeError::Overloaded { depth: self.datum },
            ERR_TIMEOUT => ServeError::Timeout {
                waited_ms: self.datum,
            },
            ERR_SHUTTING_DOWN => ServeError::ShuttingDown,
            ERR_REJECTED => ServeError::Rejected {
                index: self.datum,
                message: self.message.clone(),
            },
            _ => ServeError::BadRequest {
                message: self.message.clone(),
            },
        }
    }
}

// ---------------------------------------------------------------------------
// Wire primitives
// ---------------------------------------------------------------------------

/// Append-only little-endian body writer.
#[derive(Default)]
pub(crate) struct BodyWriter {
    pub(crate) buf: Vec<u8>,
}

/// Validate that a collection length fits the wire's `u32` count field
/// **before** encoding it. Without this gate an oversized batch would
/// truncate silently (`len as u32`) and decode as a shorter, plausible
/// frame on the other side.
pub(crate) fn check_count(what: &'static str, len: usize) -> Result<u32, ServeError> {
    u32::try_from(len).map_err(|_| ServeError::TooLarge {
        what,
        len: len as u64,
    })
}

/// Convert a wire-declared byte length into an in-memory size, rejecting
/// values the address space cannot represent. The mirror image of
/// [`check_count`]: that gate stops silent truncation on *encode*
/// (`usize → u32`), this one stops it on *decode* (`u64 → usize`, lossy
/// on 32-bit targets where `len as usize` would quietly wrap a hostile
/// length into a small, plausible allocation).
pub(crate) fn check_len(what: &'static str, len: u64) -> Result<usize, ServeError> {
    usize::try_from(len).map_err(|_| ServeError::TooLarge { what, len })
}

impl BodyWriter {
    pub(crate) fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    pub(crate) fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    pub(crate) fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    /// Write a `u32` element count, rejecting lengths that don't fit.
    pub(crate) fn put_count(&mut self, what: &'static str, len: usize) -> Result<(), ServeError> {
        self.put_u32(check_count(what, len)?);
        Ok(())
    }
    pub(crate) fn put_str(&mut self, what: &'static str, s: &str) -> Result<(), ServeError> {
        self.put_count(what, s.len())?;
        self.buf.extend_from_slice(s.as_bytes());
        Ok(())
    }
    pub(crate) fn put_cell(&mut self, cell: Option<f64>) {
        match cell {
            None => self.put_u8(0),
            Some(v) => {
                self.put_u8(1);
                self.put_u64(v.to_bits());
            }
        }
    }
}

/// Bounds-checked little-endian body reader. Every length check happens
/// before the allocation it guards.
pub(crate) struct BodyReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> BodyReader<'a> {
    pub(crate) fn new(buf: &'a [u8]) -> Self {
        BodyReader { buf, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], ServeError> {
        if self.remaining() < n {
            return Err(ServeError::Truncated {
                needed: n as u64,
                available: self.remaining() as u64,
            });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    pub(crate) fn get_u8(&mut self) -> Result<u8, ServeError> {
        Ok(self.take(1)?[0])
    }

    pub(crate) fn get_u32(&mut self) -> Result<u32, ServeError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4B")))
    }

    pub(crate) fn get_u64(&mut self) -> Result<u64, ServeError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8B")))
    }

    /// A `u32` element count validated against the bytes present
    /// (`min_elem_bytes` per element) before anything is allocated.
    pub(crate) fn get_count(&mut self, min_elem_bytes: usize) -> Result<usize, ServeError> {
        let count = self.get_u32()? as usize;
        let need = count
            .checked_mul(min_elem_bytes)
            .ok_or_else(|| bad("element count overflows"))?;
        if self.remaining() < need {
            return Err(ServeError::Truncated {
                needed: need as u64,
                available: self.remaining() as u64,
            });
        }
        Ok(count)
    }

    pub(crate) fn get_str(&mut self) -> Result<String, ServeError> {
        let len = self.get_u32()? as usize;
        let raw = self.take(len)?;
        String::from_utf8(raw.to_vec()).map_err(|_| bad("string is not UTF-8"))
    }

    pub(crate) fn get_cell(&mut self) -> Result<Option<f64>, ServeError> {
        match self.get_u8()? {
            0 => Ok(None),
            1 => {
                let v = f64::from_bits(self.get_u64()?);
                if v.is_nan() {
                    return Err(bad("NaN cell value"));
                }
                Ok(Some(v))
            }
            other => Err(bad(format!("cell presence flag {other} (want 0/1)"))),
        }
    }

    pub(crate) fn finish(self) -> Result<(), ServeError> {
        if self.remaining() != 0 {
            return Err(bad(format!("{} trailing body bytes", self.remaining())));
        }
        Ok(())
    }
}

pub(crate) fn bad(reason: impl Into<String>) -> ServeError {
    ServeError::BadFrame {
        reason: reason.into(),
    }
}

// ---------------------------------------------------------------------------
// Frame assembly / parsing
// ---------------------------------------------------------------------------

/// Wrap a kind + body into a full frame (header, checksum, body).
pub(crate) fn seal(kind: u8, body: Vec<u8>) -> Vec<u8> {
    let mut frame = Vec::with_capacity(HEADER_LEN + body.len());
    frame.extend_from_slice(&MAGIC);
    frame.extend_from_slice(&PROTOCOL_VERSION.to_le_bytes());
    let mut tail = Vec::with_capacity(9 + body.len());
    tail.push(kind);
    tail.extend_from_slice(&(body.len() as u64).to_le_bytes());
    tail.extend_from_slice(&body);
    frame.extend_from_slice(&fnv64(&tail).to_le_bytes());
    frame.extend_from_slice(&tail);
    frame
}

/// Validate a full frame buffer (magic, version, length, checksum) and
/// return `(kind, body)`. The inverse of the frame sealer — exhaustive,
/// typed, allocation-guarded.
pub fn open_frame(bytes: &[u8]) -> Result<(u8, &[u8]), ServeError> {
    if bytes.len() < HEADER_LEN {
        return Err(ServeError::Truncated {
            needed: HEADER_LEN as u64,
            available: bytes.len() as u64,
        });
    }
    if bytes[..4] != MAGIC {
        return Err(ServeError::BadMagic);
    }
    let version = u32::from_le_bytes(bytes[4..8].try_into().expect("4B"));
    if version != PROTOCOL_VERSION {
        return Err(ServeError::VersionMismatch {
            found: version,
            expected: PROTOCOL_VERSION,
        });
    }
    let checksum = u64::from_le_bytes(bytes[8..16].try_into().expect("8B"));
    let len = u64::from_le_bytes(bytes[17..25].try_into().expect("8B"));
    let body_have = (bytes.len() - HEADER_LEN) as u64;
    if len > body_have {
        return Err(ServeError::Truncated {
            needed: len,
            available: body_have,
        });
    }
    if len < body_have {
        return Err(bad(format!("{} trailing frame bytes", body_have - len)));
    }
    if fnv64(&bytes[16..]) != checksum {
        return Err(ServeError::ChecksumMismatch);
    }
    Ok((bytes[16], &bytes[HEADER_LEN..]))
}

/// Encode a request as one full frame.
///
/// # Errors
/// [`ServeError::TooLarge`] when a collection exceeds the wire's `u32`
/// count field — rejected before encoding rather than truncated on it.
pub fn encode_request(req: &Request) -> Result<Vec<u8>, ServeError> {
    let mut w = BodyWriter::default();
    let kind = match req {
        Request::Query(q) => {
            put_query(&mut w, q);
            KIND_QUERY
        }
        Request::QueryBatch(qs) => {
            w.put_count("query batch", qs.len())?;
            for q in qs {
                put_query(&mut w, q);
            }
            KIND_QUERY_BATCH
        }
        Request::UpdateOps(ops) => {
            w.put_count("update batch", ops.len())?;
            for op in ops {
                put_op(&mut w, op)?;
            }
            KIND_UPDATE_OPS
        }
        Request::Stats => KIND_STATS,
        Request::Shutdown => KIND_SHUTDOWN,
        Request::Subscribe(spec) => {
            put_standing_spec(&mut w, spec)?;
            KIND_SUBSCRIBE
        }
        Request::Unsubscribe(id) => {
            w.put_u64(*id);
            KIND_UNSUBSCRIBE
        }
        Request::QueryText(text) => {
            w.put_str("statement text", text)?;
            KIND_QUERY_TEXT
        }
    };
    Ok(seal(kind, w.buf))
}

/// Decode a full request frame.
pub fn decode_request(bytes: &[u8]) -> Result<Request, ServeError> {
    let (kind, body) = open_frame(bytes)?;
    decode_request_body(kind, body)
}

/// Decode a request body whose frame header was already validated (the
/// server's streaming path).
pub fn decode_request_body(kind: u8, body: &[u8]) -> Result<Request, ServeError> {
    let mut r = BodyReader::new(body);
    let req = match kind {
        KIND_QUERY => Request::Query(get_query(&mut r)?),
        KIND_QUERY_BATCH => {
            let count = r.get_count(9)?;
            let mut qs = Vec::with_capacity(count);
            for _ in 0..count {
                qs.push(get_query(&mut r)?);
            }
            Request::QueryBatch(qs)
        }
        KIND_UPDATE_OPS => {
            let count = r.get_count(1)?;
            let mut ops = Vec::with_capacity(count);
            for _ in 0..count {
                ops.push(get_op(&mut r)?);
            }
            Request::UpdateOps(ops)
        }
        KIND_STATS => Request::Stats,
        KIND_SHUTDOWN => Request::Shutdown,
        KIND_SUBSCRIBE => Request::Subscribe(get_standing_spec(&mut r)?),
        KIND_UNSUBSCRIBE => Request::Unsubscribe(r.get_u64()?),
        KIND_QUERY_TEXT => Request::QueryText(r.get_str()?),
        other => return Err(bad(format!("unknown request kind {other}"))),
    };
    r.finish()?;
    Ok(req)
}

/// Encode a response as one full frame.
///
/// # Errors
/// [`ServeError::TooLarge`] when a collection exceeds the wire's `u32`
/// count field — rejected before encoding rather than truncated on it.
pub fn encode_response(resp: &Response) -> Result<Vec<u8>, ServeError> {
    let mut w = BodyWriter::default();
    let kind = match resp {
        Response::QueryResult(entries) => {
            put_entries(&mut w, entries)?;
            KIND_QUERY_RESULT
        }
        Response::BatchResult(results) => {
            w.put_count("result batch", results.len())?;
            for entries in results {
                put_entries(&mut w, entries)?;
            }
            KIND_BATCH_RESULT
        }
        Response::UpdateAck(ack) => {
            w.put_u64(ack.applied);
            w.put_u64(ack.seq);
            w.put_u64(ack.epoch);
            w.put_u64(ack.live);
            w.put_u64(ack.tombstones);
            w.put_count("ack id list", ack.inserted_ids.len())?;
            for &id in &ack.inserted_ids {
                w.put_u64(id);
            }
            KIND_UPDATE_ACK
        }
        Response::StatsResult(s) => {
            for v in [
                s.live,
                s.tombstones,
                s.epoch,
                s.seq,
                s.inserts,
                s.deletes,
                s.cell_updates,
                s.compactions,
                s.served_queries,
                s.coalesced_batches,
                s.overloaded,
                s.timeouts,
                s.queue_depth,
                s.load_micros,
                s.borrowed,
            ] {
                w.put_u64(v);
            }
            KIND_STATS_RESULT
        }
        Response::ShutdownAck => KIND_SHUTDOWN_ACK,
        Response::Error(e) => {
            put_error_frame(&mut w, e)?;
            KIND_ERROR
        }
        Response::SubscribeAck(ack) => {
            w.put_u64(ack.id);
            put_entries(&mut w, &ack.result)?;
            KIND_SUBSCRIBE_ACK
        }
        Response::UnsubscribeAck(removed) => {
            w.put_u8(u8::from(*removed));
            KIND_UNSUBSCRIBE_ACK
        }
        Response::Notify(n) => {
            w.put_u64(n.id);
            w.put_u64(n.batch_seq);
            put_entries(&mut w, &n.added)?;
            w.put_count("notify removed ids", n.removed.len())?;
            for &id in &n.removed {
                w.put_u64(id);
            }
            put_entries(&mut w, &n.rescored)?;
            match n.kth_score {
                None => w.put_u8(0),
                Some(s) => {
                    w.put_u8(1);
                    w.put_u64(s);
                }
            }
            w.put_u8(u8::from(n.via_fallback));
            KIND_NOTIFY
        }
        Response::ExplainResult(text) => {
            w.put_str("explain text", text)?;
            KIND_EXPLAIN_RESULT
        }
    };
    Ok(seal(kind, w.buf))
}

/// Decode a full response frame.
pub fn decode_response(bytes: &[u8]) -> Result<Response, ServeError> {
    let (kind, body) = open_frame(bytes)?;
    decode_response_body(kind, body)
}

/// Decode a response body whose frame header was already validated (the
/// client's streaming path).
pub fn decode_response_body(kind: u8, body: &[u8]) -> Result<Response, ServeError> {
    let mut r = BodyReader::new(body);
    let resp = match kind {
        KIND_QUERY_RESULT => Response::QueryResult(get_entries(&mut r)?),
        KIND_BATCH_RESULT => {
            let count = r.get_count(4)?;
            let mut results = Vec::with_capacity(count);
            for _ in 0..count {
                results.push(get_entries(&mut r)?);
            }
            Response::BatchResult(results)
        }
        KIND_UPDATE_ACK => {
            let applied = r.get_u64()?;
            let seq = r.get_u64()?;
            let epoch = r.get_u64()?;
            let live = r.get_u64()?;
            let tombstones = r.get_u64()?;
            let count = r.get_count(8)?;
            let mut inserted_ids = Vec::with_capacity(count);
            for _ in 0..count {
                inserted_ids.push(r.get_u64()?);
            }
            Response::UpdateAck(UpdateAck {
                applied,
                seq,
                epoch,
                live,
                tombstones,
                inserted_ids,
            })
        }
        KIND_STATS_RESULT => {
            let mut get = || r.get_u64();
            let s = ServerStats {
                live: get()?,
                tombstones: get()?,
                epoch: get()?,
                seq: get()?,
                inserts: get()?,
                deletes: get()?,
                cell_updates: get()?,
                compactions: get()?,
                served_queries: get()?,
                coalesced_batches: get()?,
                overloaded: get()?,
                timeouts: get()?,
                queue_depth: get()?,
                load_micros: get()?,
                borrowed: get()?,
            };
            Response::StatsResult(s)
        }
        KIND_SHUTDOWN_ACK => Response::ShutdownAck,
        KIND_SUBSCRIBE_ACK => {
            let id = r.get_u64()?;
            let result = get_entries(&mut r)?;
            Response::SubscribeAck(SubscribeAck { id, result })
        }
        KIND_UNSUBSCRIBE_ACK => match r.get_u8()? {
            0 => Response::UnsubscribeAck(false),
            1 => Response::UnsubscribeAck(true),
            other => return Err(bad(format!("removed flag {other} (want 0/1)"))),
        },
        KIND_NOTIFY => {
            let id = r.get_u64()?;
            let batch_seq = r.get_u64()?;
            let added = get_entries(&mut r)?;
            let count = r.get_count(8)?;
            let mut removed = Vec::with_capacity(count);
            for _ in 0..count {
                removed.push(r.get_u64()?);
            }
            let rescored = get_entries(&mut r)?;
            let kth_score = match r.get_u8()? {
                0 => None,
                1 => Some(r.get_u64()?),
                other => return Err(bad(format!("kth presence flag {other} (want 0/1)"))),
            };
            let via_fallback = match r.get_u8()? {
                0 => false,
                1 => true,
                other => return Err(bad(format!("fallback flag {other} (want 0/1)"))),
            };
            Response::Notify(WireNotification {
                id,
                batch_seq,
                added,
                removed,
                rescored,
                kth_score,
                via_fallback,
            })
        }
        KIND_EXPLAIN_RESULT => Response::ExplainResult(r.get_str()?),
        KIND_ERROR => Response::Error(get_error_frame(&mut r)?),
        other => return Err(bad(format!("unknown response kind {other}"))),
    };
    r.finish()?;
    Ok(resp)
}

pub(crate) fn put_error_frame(w: &mut BodyWriter, e: &ErrorFrame) -> Result<(), ServeError> {
    w.put_u8(e.code);
    w.put_u64(e.datum);
    w.put_str("error message", &e.message)
}

pub(crate) fn get_error_frame(r: &mut BodyReader) -> Result<ErrorFrame, ServeError> {
    let code = r.get_u8()?;
    if !(ERR_OVERLOADED..=ERR_BAD_REQUEST).contains(&code) {
        return Err(bad(format!("unknown error code {code}")));
    }
    let datum = r.get_u64()?;
    let message = r.get_str()?;
    Ok(ErrorFrame {
        code,
        datum,
        message,
    })
}

fn put_query(w: &mut BodyWriter, q: &QuerySpec) {
    w.put_u64(q.k);
    w.put_u8(match q.algorithm {
        Algorithm::Big => 3,
        Algorithm::Ibig => 4,
        other => unreachable!("wire queries are BIG/IBIG only, got {other:?}"),
    });
}

fn get_query(r: &mut BodyReader) -> Result<QuerySpec, ServeError> {
    let k = r.get_u64()?;
    let algorithm = match r.get_u8()? {
        3 => Algorithm::Big,
        4 => Algorithm::Ibig,
        other => {
            return Err(bad(format!(
                "algorithm byte {other} (the serve path answers BIG=3/IBIG=4)"
            )))
        }
    };
    Ok(QuerySpec { k, algorithm })
}

fn put_entries(w: &mut BodyWriter, entries: &[WireEntry]) -> Result<(), ServeError> {
    w.put_count("result rows", entries.len())?;
    for e in entries {
        w.put_u64(e.id);
        w.put_u64(e.score);
    }
    Ok(())
}

/// A wire f64 that must be a real number (constraint bounds, fallback
/// fraction) — NaN is rejected like NaN cells are.
fn get_real(r: &mut BodyReader, what: &str) -> Result<f64, ServeError> {
    let v = f64::from_bits(r.get_u64()?);
    if v.is_nan() {
        return Err(bad(format!("NaN {what}")));
    }
    Ok(v)
}

fn get_usize(r: &mut BodyReader, what: &str) -> Result<usize, ServeError> {
    let raw = r.get_u64()?;
    usize::try_from(raw).map_err(|_| bad(format!("{what} {raw} exceeds usize")))
}

fn put_standing_spec(w: &mut BodyWriter, spec: &StandingSpec) -> Result<(), ServeError> {
    w.put_u64(spec.k as u64);
    w.put_u8(match spec.algorithm {
        Algorithm::Big => 3,
        Algorithm::Ibig => 4,
        other => unreachable!("wire standing specs are BIG/IBIG only, got {other:?}"),
    });
    match &spec.subspace {
        None => w.put_u8(0),
        Some(dims) => {
            w.put_u8(1);
            w.put_count("subspace dims", dims.len())?;
            for &d in dims {
                w.put_u64(d as u64);
            }
        }
    }
    w.put_count("constraint ranges", spec.constraint.len())?;
    for &(dim, lo, hi) in &spec.constraint {
        w.put_u64(dim as u64);
        w.put_u64(lo.to_bits());
        w.put_u64(hi.to_bits());
    }
    w.put_u64(spec.fallback_fraction.to_bits());
    Ok(())
}

fn get_standing_spec(r: &mut BodyReader) -> Result<StandingSpec, ServeError> {
    let k = get_usize(r, "standing k")?;
    let algorithm = match r.get_u8()? {
        3 => Algorithm::Big,
        4 => Algorithm::Ibig,
        other => {
            return Err(bad(format!(
                "algorithm byte {other} (standing queries answer BIG=3/IBIG=4)"
            )))
        }
    };
    let subspace = match r.get_u8()? {
        0 => None,
        1 => {
            let count = r.get_count(8)?;
            let mut dims = Vec::with_capacity(count);
            for _ in 0..count {
                dims.push(get_usize(r, "subspace dim")?);
            }
            Some(dims)
        }
        other => return Err(bad(format!("subspace presence flag {other} (want 0/1)"))),
    };
    let count = r.get_count(24)?;
    let mut constraint = Vec::with_capacity(count);
    for _ in 0..count {
        let dim = get_usize(r, "constraint dim")?;
        let lo = get_real(r, "constraint low bound")?;
        let hi = get_real(r, "constraint high bound")?;
        constraint.push((dim, lo, hi));
    }
    let fallback_fraction = get_real(r, "fallback fraction")?;
    Ok(StandingSpec {
        k,
        algorithm,
        subspace,
        constraint,
        fallback_fraction,
    })
}

fn get_entries(r: &mut BodyReader) -> Result<Vec<WireEntry>, ServeError> {
    let count = r.get_count(16)?;
    let mut entries = Vec::with_capacity(count);
    for _ in 0..count {
        entries.push(WireEntry {
            id: r.get_u64()?,
            score: r.get_u64()?,
        });
    }
    Ok(entries)
}

const OP_INSERT: u8 = 0;
const OP_INSERT_LABELED: u8 = 1;
const OP_DELETE: u8 = 2;
const OP_SET: u8 = 3;

pub(crate) fn put_op(w: &mut BodyWriter, op: &UpdateOp) -> Result<(), ServeError> {
    match op {
        UpdateOp::Insert(row) => {
            w.put_u8(OP_INSERT);
            w.put_count("insert row", row.len())?;
            for &cell in row {
                w.put_cell(cell);
            }
        }
        UpdateOp::InsertLabeled(label, row) => {
            w.put_u8(OP_INSERT_LABELED);
            w.put_str("row label", label)?;
            w.put_count("insert row", row.len())?;
            for &cell in row {
                w.put_cell(cell);
            }
        }
        UpdateOp::Delete(id) => {
            w.put_u8(OP_DELETE);
            w.put_u64(u64::from(*id));
        }
        UpdateOp::Set(id, dim, cell) => {
            w.put_u8(OP_SET);
            w.put_u64(u64::from(*id));
            w.put_u32(check_count("dimension index", *dim)?);
            w.put_cell(*cell);
        }
    }
    Ok(())
}

fn get_row(r: &mut BodyReader) -> Result<Vec<Option<f64>>, ServeError> {
    let dims = r.get_count(1)?;
    let mut row = Vec::with_capacity(dims);
    for _ in 0..dims {
        row.push(r.get_cell()?);
    }
    Ok(row)
}

fn get_id(r: &mut BodyReader) -> Result<tkd_model::ObjectId, ServeError> {
    let raw = r.get_u64()?;
    tkd_model::ObjectId::try_from(raw).map_err(|_| bad(format!("object id {raw} exceeds u32")))
}

pub(crate) fn get_op(r: &mut BodyReader) -> Result<UpdateOp, ServeError> {
    match r.get_u8()? {
        OP_INSERT => Ok(UpdateOp::Insert(get_row(r)?)),
        OP_INSERT_LABELED => {
            let label = r.get_str()?;
            Ok(UpdateOp::InsertLabeled(label, get_row(r)?))
        }
        OP_DELETE => Ok(UpdateOp::Delete(get_id(r)?)),
        OP_SET => {
            let id = get_id(r)?;
            let dim = r.get_u32()? as usize;
            Ok(UpdateOp::Set(id, dim, r.get_cell()?))
        }
        other => Err(bad(format!("unknown op tag {other}"))),
    }
}

// ---------------------------------------------------------------------------
// Socket framing
// ---------------------------------------------------------------------------

/// How long a peer may take to deliver a frame, and how idleness between
/// frames is treated.
#[derive(Clone, Copy, Debug)]
pub struct FramePolicy {
    /// Budget from the first byte of a frame to its last — the
    /// slow-loris guard. A peer trickling bytes slower than this gets a
    /// typed [`ServeError::DeadlineExpired`] and a closed connection.
    pub frame_timeout: Duration,
    /// How long to wait for a frame to *start* before giving up.
    /// `None` = wait forever (the server's idle stance, interrupted by
    /// the `should_stop` poll).
    pub idle_timeout: Option<Duration>,
}

/// Granularity of idle polling (and of `should_stop` checks).
const POLL_QUANTUM: Duration = Duration::from_millis(50);

/// Read one frame from `stream` under `policy`, returning `(kind,
/// body)`. `should_stop` is polled while idle so a draining server can
/// close idle connections promptly.
///
/// # Errors
/// [`ServeError::Disconnected`] on clean EOF between frames, a typed
/// protocol error for anything malformed, [`ServeError::DeadlineExpired`]
/// for a started-but-stalled frame, [`ServeError::ShuttingDown`] when
/// `should_stop` fires while idle.
pub fn read_frame(
    stream: &mut TcpStream,
    max_frame: u64,
    policy: FramePolicy,
    should_stop: &dyn Fn() -> bool,
) -> Result<(u8, Vec<u8>), ServeError> {
    let mut header = [0u8; HEADER_LEN];
    // Phase 1: wait (possibly forever) for the frame to start.
    let idle_start = Instant::now();
    let got = loop {
        if should_stop() {
            return Err(ServeError::ShuttingDown);
        }
        stream
            .set_read_timeout(Some(POLL_QUANTUM))
            .map_err(ServeError::from)?;
        match stream.read(&mut header) {
            Ok(0) => return Err(ServeError::Disconnected),
            Ok(n) => break n,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if let Some(limit) = policy.idle_timeout {
                    if idle_start.elapsed() >= limit {
                        return Err(ServeError::DeadlineExpired);
                    }
                }
            }
            Err(e) => return Err(ServeError::from(e)),
        }
    };
    // Phase 2: the frame has started — the rest must arrive within the
    // frame budget, however slowly the peer trickles it.
    let deadline = Instant::now() + policy.frame_timeout;
    read_exact_deadline(stream, &mut header[got..], deadline)?;
    if header[..4] != MAGIC {
        return Err(ServeError::BadMagic);
    }
    let version = u32::from_le_bytes(header[4..8].try_into().expect("4B"));
    if version != PROTOCOL_VERSION {
        return Err(ServeError::VersionMismatch {
            found: version,
            expected: PROTOCOL_VERSION,
        });
    }
    let checksum = u64::from_le_bytes(header[8..16].try_into().expect("8B"));
    let kind = header[16];
    let len = u64::from_le_bytes(header[17..25].try_into().expect("8B"));
    // The admission gate for hostile lengths: reject before allocating.
    if len > max_frame {
        return Err(ServeError::FrameTooLarge {
            len,
            max: max_frame,
        });
    }
    let mut body = vec![0u8; check_len("frame body", len)?];
    read_exact_deadline(stream, &mut body, deadline)?;
    let mut summed = Vec::with_capacity(9 + body.len());
    summed.push(kind);
    summed.extend_from_slice(&len.to_le_bytes());
    summed.extend_from_slice(&body);
    if fnv64(&summed) != checksum {
        return Err(ServeError::ChecksumMismatch);
    }
    Ok((kind, body))
}

/// `read_exact` with an absolute deadline, implemented over repeated
/// short read timeouts so a trickling peer cannot stretch one frame
/// forever.
fn read_exact_deadline(
    stream: &mut TcpStream,
    mut buf: &mut [u8],
    deadline: Instant,
) -> Result<(), ServeError> {
    while !buf.is_empty() {
        let now = Instant::now();
        if now >= deadline {
            return Err(ServeError::DeadlineExpired);
        }
        let wait = (deadline - now).min(POLL_QUANTUM);
        stream
            .set_read_timeout(Some(wait.max(Duration::from_millis(1))))
            .map_err(ServeError::from)?;
        match stream.read(buf) {
            Ok(0) => {
                return Err(ServeError::Truncated {
                    needed: buf.len() as u64,
                    available: 0,
                })
            }
            Ok(n) => buf = &mut buf[n..],
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut => {}
            Err(e) => return Err(ServeError::from(e)),
        }
    }
    Ok(())
}

/// Write one already-sealed frame, bounded by `timeout`.
pub fn write_frame_bytes(
    stream: &mut TcpStream,
    frame: &[u8],
    timeout: Duration,
) -> Result<(), ServeError> {
    stream
        .set_write_timeout(Some(timeout.max(Duration::from_millis(1))))
        .map_err(ServeError::from)?;
    stream.write_all(frame).map_err(ServeError::from)?;
    stream.flush().map_err(ServeError::from)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_roundtrip_identity() {
        let frames = [
            Request::Query(QuerySpec::new(8)),
            Request::QueryBatch(vec![
                QuerySpec::new(0),
                QuerySpec::new(3).algorithm(Algorithm::Ibig),
            ]),
            Request::QueryBatch(Vec::new()),
            Request::UpdateOps(vec![
                UpdateOp::Insert(vec![Some(1.0), None, Some(-0.0)]),
                UpdateOp::InsertLabeled("héllo".into(), vec![Some(2.5)]),
                UpdateOp::Delete(7),
                UpdateOp::Set(3, 1, None),
            ]),
            Request::Stats,
            Request::Shutdown,
            Request::Subscribe(StandingSpec::new(4)),
            Request::Subscribe(
                StandingSpec::new(0)
                    .algorithm(Algorithm::Ibig)
                    .subspace(vec![0, 2, 5])
                    .fallback_fraction(0.0),
            ),
            Request::Subscribe(
                StandingSpec::new(9)
                    .constrain(1, -0.0, 2.5)
                    .constrain(3, 0.0, 8.0)
                    .fallback_fraction(1.0),
            ),
            Request::Unsubscribe(0),
            Request::Unsubscribe(u64::MAX),
            Request::QueryText("SELECT TOP 3 DOMINATING".into()),
            Request::QueryText(String::new()),
            Request::QueryText("EXPLAIN SELECT TOP 1 DOMINATING WHERE d1 > 0.5 — π".into()),
        ];
        for f in &frames {
            let bytes = encode_request(f).expect("sane frames encode");
            let back = decode_request(&bytes).expect("own frame decodes");
            assert_eq!(&back, f);
            assert_eq!(
                encode_request(&back).expect("sane frames encode"),
                bytes,
                "canonical bytes"
            );
        }
    }

    #[test]
    fn response_roundtrip_identity() {
        let frames = [
            Response::QueryResult(vec![WireEntry { id: 1, score: 16 }]),
            Response::QueryResult(Vec::new()),
            Response::BatchResult(vec![Vec::new(), vec![WireEntry { id: 0, score: 1 }]]),
            Response::UpdateAck(UpdateAck {
                applied: 3,
                seq: 9,
                epoch: 1,
                live: 20,
                tombstones: 2,
                inserted_ids: vec![21, 22],
            }),
            Response::StatsResult(ServerStats {
                live: 5,
                seq: 2,
                ..Default::default()
            }),
            Response::ShutdownAck,
            Response::Error(ErrorFrame {
                code: ERR_OVERLOADED,
                datum: 128,
                message: "queue full".into(),
            }),
            Response::SubscribeAck(SubscribeAck {
                id: 3,
                result: vec![WireEntry { id: 9, score: 4 }],
            }),
            Response::SubscribeAck(SubscribeAck::default()),
            Response::UnsubscribeAck(true),
            Response::UnsubscribeAck(false),
            Response::Notify(WireNotification {
                id: 1,
                batch_seq: 17,
                added: vec![WireEntry { id: 21, score: 9 }],
                removed: vec![4, 7],
                rescored: vec![WireEntry { id: 2, score: 3 }],
                kth_score: Some(3),
                via_fallback: true,
            }),
            Response::Notify(WireNotification::default()),
            Response::ExplainResult("TKDQL one-shot query\n  k: 3\n".into()),
            Response::ExplainResult(String::new()),
        ];
        for f in &frames {
            let bytes = encode_response(f).expect("sane frames encode");
            let back = decode_response(&bytes).expect("own frame decodes");
            assert_eq!(&back, f);
            assert_eq!(
                encode_response(&back).expect("sane frames encode"),
                bytes,
                "canonical bytes"
            );
        }
    }

    #[test]
    fn oversized_collections_are_typed_errors_not_truncation() {
        // The wire's count fields are u32. A length that does not fit
        // must be a typed [`ServeError::TooLarge`] from the checked
        // helper every encoder now routes through — previously
        // `len as u32` truncated silently and framed a shorter,
        // plausible payload. (The collections themselves would take tens
        // of GiB to materialize, so the gate is pinned directly.)
        let over = u32::MAX as usize + 1;
        for what in ["query batch", "update batch", "result rows", "ack id list"] {
            assert_eq!(
                check_count(what, over).unwrap_err(),
                ServeError::TooLarge {
                    what,
                    len: over as u64
                },
            );
        }
        // Everything that fits still encodes.
        assert_eq!(
            check_count("result rows", u32::MAX as usize).unwrap(),
            u32::MAX
        );
        assert_eq!(check_count("result rows", 0).unwrap(), 0);
        // And the per-op dimension index uses the same gate.
        let op = UpdateOp::Set(1, over, Some(0.0));
        assert!(matches!(
            encode_request(&Request::UpdateOps(vec![op])).unwrap_err(),
            ServeError::TooLarge {
                what: "dimension index",
                ..
            }
        ));
    }

    #[test]
    fn hostile_standing_spec_bytes_are_typed_errors() {
        let good = encode_request(&Request::Subscribe(
            StandingSpec::new(2).constrain(0, 1.0, 2.0),
        ))
        .expect("encodes");
        // Body layout: k u64 ‖ alg u8 ‖ presence u8 ‖ ranges u32 ‖ ...
        // Unsupported algorithm byte.
        let mut b = good.clone();
        b[HEADER_LEN + 8] = 0;
        assert!(decode_request(&reseal(&b)).is_err());
        // Bad subspace presence flag.
        let mut b = good.clone();
        b[HEADER_LEN + 9] = 7;
        assert!(decode_request(&reseal(&b)).is_err());
        // NaN constraint bound.
        let mut w = BodyWriter::default();
        w.put_u64(2);
        w.put_u8(3);
        w.put_u8(0);
        w.put_u32(1);
        w.put_u64(0);
        w.put_u64(f64::NAN.to_bits());
        w.put_u64(2.0f64.to_bits());
        w.put_u64(0.25f64.to_bits());
        assert!(matches!(
            decode_request(&seal(KIND_SUBSCRIBE, w.buf)).unwrap_err(),
            ServeError::BadFrame { .. }
        ));
    }

    /// Re-checksum a frame whose body bytes were edited, so the decode
    /// error under test is the semantic one, not ChecksumMismatch.
    fn reseal(frame: &[u8]) -> Vec<u8> {
        seal(frame[16], frame[HEADER_LEN..].to_vec())
    }

    #[test]
    fn hostile_frames_are_typed_errors() {
        let good = encode_request(&Request::Query(QuerySpec::new(2))).expect("encodes");
        // Truncation at every byte.
        for cut in 0..good.len() {
            assert!(decode_request(&good[..cut]).is_err(), "cut at {cut}");
        }
        // Bad magic / version.
        let mut b = good.clone();
        b[0] ^= 0xFF;
        assert_eq!(decode_request(&b).unwrap_err(), ServeError::BadMagic);
        let mut b = good.clone();
        b[4] = 99;
        assert!(matches!(
            decode_request(&b).unwrap_err(),
            ServeError::VersionMismatch { found: 99, .. }
        ));
        // Hostile u64::MAX length (checksum fixed up so the length check
        // itself is what fires).
        let mut b = good.clone();
        b[17..25].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(matches!(
            decode_request(&b).unwrap_err(),
            ServeError::Truncated { .. } | ServeError::ChecksumMismatch
        ));
        // Trailing bytes.
        let mut b = good.clone();
        b.push(0);
        assert!(matches!(
            decode_request(&b).unwrap_err(),
            ServeError::BadFrame { .. }
        ));
        // NaN cell.
        let nan_op = {
            let mut w = BodyWriter::default();
            w.put_u32(1);
            w.put_u8(OP_INSERT);
            w.put_u32(1);
            w.put_u8(1);
            w.put_u64(f64::NAN.to_bits());
            seal(KIND_UPDATE_OPS, w.buf)
        };
        assert!(matches!(
            decode_request(&nan_op).unwrap_err(),
            ServeError::BadFrame { .. }
        ));
    }

    #[test]
    fn unsupported_algorithm_byte_is_rejected() {
        // Hand-roll a query frame with algorithm byte 0 (Naive).
        let mut w = BodyWriter::default();
        w.put_u64(4);
        w.put_u8(0);
        let frame = seal(KIND_QUERY, w.buf);
        assert!(matches!(
            decode_request(&frame).unwrap_err(),
            ServeError::BadFrame { .. }
        ));
    }
}
