//! A typed, blocking client for the serve protocol.
//!
//! One [`Client`] owns one TCP connection and speaks strict
//! request/response: every call writes one frame and reads exactly one
//! frame back. Server-side rejections arrive as error frames and are
//! surfaced as the [`ServeError`] they encode, so callers match on
//! `Overloaded`/`Timeout`/`ShuttingDown` the same way whether the
//! failure happened locally or across the wire.

use crate::error::ServeError;
use crate::protocol::{
    self, decode_response_body, encode_request, FramePolicy, QuerySpec, Request, Response,
    ServerStats, UpdateAck, WireEntry, DEFAULT_MAX_FRAME,
};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;
use tkd_core::UpdateOp;

/// A connected client.
pub struct Client {
    stream: TcpStream,
    timeout: Duration,
    max_frame: u64,
}

impl Client {
    /// Connect with a 30-second per-frame timeout.
    ///
    /// # Errors
    /// [`ServeError::Io`] if the connection fails.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, ServeError> {
        Client::connect_with(addr, Duration::from_secs(30))
    }

    /// Connect with an explicit per-frame timeout (applies to both the
    /// request write and the response read).
    ///
    /// # Errors
    /// [`ServeError::Io`] if the connection fails.
    pub fn connect_with(addr: impl ToSocketAddrs, timeout: Duration) -> Result<Client, ServeError> {
        let stream = TcpStream::connect(addr).map_err(ServeError::from)?;
        stream.set_nodelay(true).map_err(ServeError::from)?;
        Ok(Client {
            stream,
            timeout,
            max_frame: DEFAULT_MAX_FRAME,
        })
    }

    fn call(&mut self, req: &Request) -> Result<Response, ServeError> {
        let frame = encode_request(req);
        protocol::write_frame_bytes(&mut self.stream, &frame, self.timeout)?;
        let policy = FramePolicy {
            frame_timeout: self.timeout,
            idle_timeout: Some(self.timeout),
        };
        let (kind, body) =
            protocol::read_frame(&mut self.stream, self.max_frame, policy, &|| false)?;
        let resp = decode_response_body(kind, &body)?;
        if let Response::Error(e) = &resp {
            return Err(e.to_error());
        }
        Ok(resp)
    }

    /// Answer one query. Entries are `(stable id, score)` in the
    /// engine's deterministic order.
    ///
    /// # Errors
    /// Transport errors, or the typed rejection the server sent.
    pub fn query(&mut self, spec: QuerySpec) -> Result<Vec<WireEntry>, ServeError> {
        match self.call(&Request::Query(spec))? {
            Response::QueryResult(entries) => Ok(entries),
            other => Err(unexpected(&other)),
        }
    }

    /// Answer an explicit batch in one round trip, results in batch
    /// order. An empty batch is valid and returns an empty list.
    ///
    /// # Errors
    /// Transport errors, or the typed rejection the server sent.
    pub fn query_batch(&mut self, specs: &[QuerySpec]) -> Result<Vec<Vec<WireEntry>>, ServeError> {
        match self.call(&Request::QueryBatch(specs.to_vec()))? {
            Response::BatchResult(results) => Ok(results),
            other => Err(unexpected(&other)),
        }
    }

    /// Apply a batch of update ops through the server's single writer.
    ///
    /// # Errors
    /// Transport errors, or [`ServeError::Rejected`] naming the failing
    /// op (ops before it remain applied, as with `apply_all`).
    pub fn update(&mut self, ops: &[UpdateOp]) -> Result<UpdateAck, ServeError> {
        match self.call(&Request::UpdateOps(ops.to_vec()))? {
            Response::UpdateAck(ack) => Ok(ack),
            other => Err(unexpected(&other)),
        }
    }

    /// Fetch server/engine statistics.
    ///
    /// # Errors
    /// Transport errors, or the typed rejection the server sent.
    pub fn stats(&mut self) -> Result<ServerStats, ServeError> {
        match self.call(&Request::Stats)? {
            Response::StatsResult(s) => Ok(s),
            other => Err(unexpected(&other)),
        }
    }

    /// Ask the server to drain and stop. Returns once the ack arrives;
    /// queued work submitted before this call is still answered.
    ///
    /// # Errors
    /// Transport errors, or the typed rejection the server sent.
    pub fn shutdown(&mut self) -> Result<(), ServeError> {
        match self.call(&Request::Shutdown)? {
            Response::ShutdownAck => Ok(()),
            other => Err(unexpected(&other)),
        }
    }
}

fn unexpected(resp: &Response) -> ServeError {
    ServeError::BadFrame {
        reason: format!("response kind does not match the request: {resp:?}"),
    }
}
