//! A typed, blocking client for the serve protocol.
//!
//! One [`Client`] owns one TCP connection and speaks strict
//! request/response: every call writes one frame and reads exactly one
//! *matching* frame back. Server-side rejections arrive as error frames
//! and are surfaced as the [`ServeError`] they encode, so callers match
//! on `Overloaded`/`Timeout`/`ShuttingDown` the same way whether the
//! failure happened locally or across the wire.
//!
//! Standing queries add a second traffic class: after [`Client::subscribe`],
//! the server pushes `Notify` frames between request/response exchanges.
//! The server never interleaves a push inside an exchange (pushes are
//! flushed only while the connection is idle), but a push may already be
//! queued in the socket when a request goes out — so [`Client::call`]
//! buffers any `Notify` frames it reads while waiting for its response,
//! and [`Client::next_notification`] drains that buffer before touching
//! the socket. Notifications are therefore delivered in server order,
//! never lost, never blocking a request.

use crate::cluster_wire::{
    decode_cluster_response_body, encode_cluster_request, ClusterRequest, ClusterResponse,
};
use crate::error::ServeError;
use crate::protocol::{
    self, decode_response_body, encode_request, FramePolicy, QuerySpec, Request, Response,
    ServerStats, SubscribeAck, UpdateAck, WireEntry, WireNotification, DEFAULT_MAX_FRAME,
};
use std::collections::VecDeque;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;
use tkd_core::{StandingSpec, UpdateOp};

/// A connected client.
pub struct Client {
    stream: TcpStream,
    timeout: Duration,
    max_frame: u64,
    /// Pushed `Notify` frames read while waiting for a response, in
    /// arrival order. Drained by [`Client::next_notification`].
    pending: VecDeque<WireNotification>,
}

impl Client {
    /// Connect with a 30-second per-frame timeout.
    ///
    /// # Errors
    /// [`ServeError::Io`] if the connection fails.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, ServeError> {
        Client::connect_with(addr, Duration::from_secs(30))
    }

    /// Connect with an explicit per-frame timeout (applies to both the
    /// request write and the response read).
    ///
    /// # Errors
    /// [`ServeError::Io`] if the connection fails.
    pub fn connect_with(addr: impl ToSocketAddrs, timeout: Duration) -> Result<Client, ServeError> {
        let stream = TcpStream::connect(addr).map_err(ServeError::from)?;
        stream.set_nodelay(true).map_err(ServeError::from)?;
        Ok(Client {
            stream,
            timeout,
            max_frame: DEFAULT_MAX_FRAME,
            pending: VecDeque::new(),
        })
    }

    fn call(&mut self, req: &Request) -> Result<Response, ServeError> {
        let frame = encode_request(req)?;
        protocol::write_frame_bytes(&mut self.stream, &frame, self.timeout)?;
        let policy = FramePolicy {
            frame_timeout: self.timeout,
            idle_timeout: Some(self.timeout),
        };
        loop {
            let (kind, body) =
                protocol::read_frame(&mut self.stream, self.max_frame, policy, &|| false)?;
            let resp = decode_response_body(kind, &body)?;
            if let Response::Notify(note) = resp {
                // A push that was already in flight when our request went
                // out. Hold it for `next_notification` and keep waiting
                // for the real response.
                self.pending.push_back(note);
                continue;
            }
            if let Response::Error(e) = &resp {
                return Err(e.to_error());
            }
            return Ok(resp);
        }
    }

    /// Answer one query. Entries are `(stable id, score)` in the
    /// engine's deterministic order.
    ///
    /// # Errors
    /// Transport errors, or the typed rejection the server sent.
    pub fn query(&mut self, spec: QuerySpec) -> Result<Vec<WireEntry>, ServeError> {
        match self.call(&Request::Query(spec))? {
            Response::QueryResult(entries) => Ok(entries),
            other => Err(unexpected(&other)),
        }
    }

    /// Answer an explicit batch in one round trip, results in batch
    /// order. An empty batch is valid and returns an empty list.
    ///
    /// # Errors
    /// Transport errors, or the typed rejection the server sent.
    pub fn query_batch(&mut self, specs: &[QuerySpec]) -> Result<Vec<Vec<WireEntry>>, ServeError> {
        match self.call(&Request::QueryBatch(specs.to_vec()))? {
            Response::BatchResult(results) => Ok(results),
            other => Err(unexpected(&other)),
        }
    }

    /// Apply a batch of update ops through the server's single writer.
    ///
    /// # Errors
    /// Transport errors, or [`ServeError::Rejected`] naming the failing
    /// op (ops before it remain applied, as with `apply_all`).
    pub fn update(&mut self, ops: &[UpdateOp]) -> Result<UpdateAck, ServeError> {
        match self.call(&Request::UpdateOps(ops.to_vec()))? {
            Response::UpdateAck(ack) => Ok(ack),
            other => Err(unexpected(&other)),
        }
    }

    /// Register a standing query on this connection. The ack carries the
    /// server-assigned subscription id and the query's initial result;
    /// after each acked update batch that affects it, the server pushes a
    /// [`WireNotification`] (read it with [`Client::next_notification`]).
    /// The subscription lives until [`Client::unsubscribe`] or this
    /// connection closes.
    ///
    /// # Errors
    /// Transport errors, or [`ServeError::Rejected`] if the spec fails
    /// server-side validation.
    pub fn subscribe(&mut self, spec: &StandingSpec) -> Result<SubscribeAck, ServeError> {
        match self.call(&Request::Subscribe(spec.clone()))? {
            Response::SubscribeAck(ack) => Ok(ack),
            other => Err(unexpected(&other)),
        }
    }

    /// Drop a standing query. Returns whether the server still knew the
    /// id (false for double-unsubscribes — idempotent, not an error).
    /// Notifications already pushed for it may still be in flight or in
    /// the local buffer.
    ///
    /// # Errors
    /// Transport errors, or the typed rejection the server sent.
    pub fn unsubscribe(&mut self, id: u64) -> Result<bool, ServeError> {
        match self.call(&Request::Unsubscribe(id))? {
            Response::UnsubscribeAck(known) => Ok(known),
            other => Err(unexpected(&other)),
        }
    }

    /// Wait up to `wait` for the next pushed notification. Returns
    /// `Ok(None)` if none arrives in time — a normal outcome, not an
    /// error. Buffered notifications (read while waiting for an earlier
    /// response) are returned first, so ordering matches the server.
    ///
    /// # Errors
    /// Transport errors, or the typed error of a non-`Notify` frame
    /// arriving where only pushes are expected.
    pub fn next_notification(
        &mut self,
        wait: Duration,
    ) -> Result<Option<WireNotification>, ServeError> {
        if let Some(note) = self.pending.pop_front() {
            return Ok(Some(note));
        }
        let policy = FramePolicy {
            frame_timeout: self.timeout,
            idle_timeout: Some(wait),
        };
        let (kind, body) =
            match protocol::read_frame(&mut self.stream, self.max_frame, policy, &|| false) {
                Ok(frame) => frame,
                Err(ServeError::DeadlineExpired) => return Ok(None),
                Err(e) => return Err(e),
            };
        match decode_response_body(kind, &body)? {
            Response::Notify(note) => Ok(Some(note)),
            Response::Error(e) => Err(e.to_error()),
            other => Err(unexpected(&other)),
        }
    }

    /// Run a TKDQL statement on the server (protocol v4). The answer
    /// depends on the statement form, so this returns the raw typed
    /// [`Response`]; the convenience wrappers [`Client::query_text`] and
    /// [`Client::subscribe_text`] unwrap the common cases.
    ///
    /// # Errors
    /// Transport errors, or [`ServeError::Rejected`] carrying the
    /// statement's lex/parse/bind/plan/exec diagnostic (with its
    /// line/column span).
    pub fn statement(&mut self, text: &str) -> Result<Response, ServeError> {
        self.call(&Request::QueryText(text.to_string()))
    }

    /// Run a one-shot TKDQL `SELECT` (or `EXPLAIN`) on the server.
    /// `SELECT` answers with result entries; `EXPLAIN` answers with the
    /// rendered plan in `Err`-free textual form via [`Client::statement`]
    /// — this wrapper accepts only the entry-list answer.
    ///
    /// # Errors
    /// Transport errors, the server's typed rejection, or a mismatched
    /// response kind (e.g. the statement was an `EXPLAIN`).
    pub fn query_text(&mut self, text: &str) -> Result<Vec<WireEntry>, ServeError> {
        match self.statement(text)? {
            Response::QueryResult(entries) => Ok(entries),
            other => Err(unexpected(&other)),
        }
    }

    /// Render a TKDQL statement's plan on the server (`EXPLAIN …`).
    ///
    /// # Errors
    /// Transport errors, the server's typed rejection, or a mismatched
    /// response kind (the statement must start with `EXPLAIN`).
    pub fn explain_text(&mut self, text: &str) -> Result<String, ServeError> {
        match self.statement(text)? {
            Response::ExplainResult(rendered) => Ok(rendered),
            other => Err(unexpected(&other)),
        }
    }

    /// Register a standing query by TKDQL text
    /// (`SUBSCRIBE TO SELECT …`). Same semantics as [`Client::subscribe`]:
    /// the ack carries the subscription id and initial result, and deltas
    /// arrive via [`Client::next_notification`].
    ///
    /// # Errors
    /// Transport errors, the server's typed rejection, or a mismatched
    /// response kind (the statement must be a `SUBSCRIBE TO SELECT`).
    pub fn subscribe_text(&mut self, text: &str) -> Result<SubscribeAck, ServeError> {
        match self.statement(text)? {
            Response::SubscribeAck(ack) => Ok(ack),
            other => Err(unexpected(&other)),
        }
    }

    /// Fetch server/engine statistics.
    ///
    /// # Errors
    /// Transport errors, or the typed rejection the server sent.
    pub fn stats(&mut self) -> Result<ServerStats, ServeError> {
        match self.call(&Request::Stats)? {
            Response::StatsResult(s) => Ok(s),
            other => Err(unexpected(&other)),
        }
    }

    /// Ask the server to drain and stop. Returns once the ack arrives;
    /// queued work submitted before this call is still answered.
    ///
    /// # Errors
    /// Transport errors, or the typed rejection the server sent.
    pub fn shutdown(&mut self) -> Result<(), ServeError> {
        match self.call(&Request::Shutdown)? {
            Response::ShutdownAck => Ok(()),
            other => Err(unexpected(&other)),
        }
    }

    /// Send one cluster-plane request and read its matching answer —
    /// the `tkd-cluster` coordinator's side of the v5 cluster frames.
    /// Workers speak strict request/response (no pushes), so exactly
    /// one frame comes back; a worker's error frame is surfaced as the
    /// [`ServeError`] it encodes, like every other call on this client.
    /// The per-frame timeout doubles as the coordinator's failure
    /// detector: a worker that misses the deadline gets a typed
    /// [`ServeError::DeadlineExpired`]/[`ServeError::Io`], never a hang.
    ///
    /// # Errors
    /// Transport errors, or the typed rejection the worker sent.
    pub fn cluster_call(&mut self, req: &ClusterRequest) -> Result<ClusterResponse, ServeError> {
        let frame = encode_cluster_request(req)?;
        protocol::write_frame_bytes(&mut self.stream, &frame, self.timeout)?;
        let policy = FramePolicy {
            frame_timeout: self.timeout,
            idle_timeout: Some(self.timeout),
        };
        let (kind, body) =
            protocol::read_frame(&mut self.stream, self.max_frame, policy, &|| false)?;
        let resp = decode_cluster_response_body(kind, &body)?;
        if let ClusterResponse::Error(e) = &resp {
            return Err(e.to_error());
        }
        Ok(resp)
    }
}

fn unexpected(resp: &Response) -> ServeError {
    ServeError::BadFrame {
        reason: format!("response kind does not match the request: {resp:?}"),
    }
}
