//! The cluster plane of protocol version 5 — frames spoken between the
//! `tkd-cluster` coordinator and its shard workers.
//!
//! Cluster frames reuse the exact v5 frame envelope of [`crate::protocol`]
//! (magic ‖ version ‖ checksum ‖ kind ‖ len ‖ body) but occupy disjoint
//! kind ranges: requests 16–20, responses 144–148. A cluster frame sent
//! at a plain server therefore fails as a typed "unknown request kind",
//! and vice versa — misdirection is loud, never a misparse. Workers
//! answer rejections with the shared error frame (kind 133), so one
//! error path serves both planes.
//!
//! The frames, in protocol order:
//!
//! | kind | frame | answered by |
//! |------|-------|-------------|
//! | 16 | `shard_query` — a chunk of candidates to bound or score | 144 `shard_outcomes` |
//! | 17 | `tau_update` — the coordinator's tightening τ broadcast | 148 `tau_ack` |
//! | 18 | `handoff` — save the shard's snapshot and release it | 145 `handoff_ack` |
//! | 19 | `assign` — adopt a shard from a snapshot (+ replay log) | 146 `assign_ack` |
//! | 20 | `shard_update` — one routed update batch for a shard | 147 `shard_update_ack` |
//!
//! A `shard_query` runs one of two phases. `Bounds` asks for the
//! shard's upper-bound contribution per candidate (the suffix-table /
//! fused-count bounds of `tkd_core::cluster::ShardScorer`); the
//! coordinator sums them across shards and prunes against τ (the
//! paper's Heuristic 2, made distributive). `Partials` asks for exact
//! partial scores of the survivors; the sums are exact by the row
//! partition argument in `tkd_core::cluster`. Both answers are plain
//! `u64` vectors in candidate order — the *classification* of each
//! candidate (pruned vs. scored) is the coordinator's job, because only
//! the cross-shard sum decides it.
//!
//! τ monotonicity is part of the protocol: a worker's session τ only
//! tightens (grows) within a query, and a `tau_update` carrying a
//! smaller value than the session's current τ is a protocol error the
//! worker must reject — a cheap tripwire for reordered or misrouted
//! frames.

use crate::error::ServeError;
use crate::protocol::{
    bad, get_error_frame, get_op, open_frame, put_error_frame, put_op, seal, BodyReader,
    BodyWriter, ErrorFrame, KIND_ERROR_SHARED,
};
use tkd_core::{Algorithm, UpdateOp};

// Cluster frame kinds — disjoint from the plain plane's 1–8 / 128–137.
const KIND_SHARD_QUERY: u8 = 16;
const KIND_TAU_UPDATE: u8 = 17;
const KIND_HANDOFF: u8 = 18;
const KIND_ASSIGN: u8 = 19;
const KIND_SHARD_UPDATE: u8 = 20;
const KIND_SHARD_OUTCOMES: u8 = 144;
const KIND_HANDOFF_ACK: u8 = 145;
const KIND_ASSIGN_ACK: u8 = 146;
const KIND_SHARD_UPDATE_ACK: u8 = 147;
const KIND_TAU_ACK: u8 = 148;

/// Which half of the two-phase fan-out a `shard_query` drives.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ShardPhase {
    /// Return each candidate's upper-bound contribution from this shard.
    Bounds,
    /// Return each candidate's exact partial score on this shard.
    Partials,
}

/// One candidate shipped to a shard: its (possibly incomplete) row, and
/// — when the candidate's home row lives on this shard — its local
/// stable id, so the worker can exclude the member's own bit from its
/// partial (each object must be counted in exactly one shard).
#[derive(Clone, Debug, PartialEq)]
pub struct WireCandidate {
    /// The candidate's observed values, one slot per dimension.
    pub values: Vec<Option<f64>>,
    /// The candidate's stable id *local to this shard*, when it lives
    /// there; `None` on every other shard.
    pub member: Option<u64>,
}

/// A chunk of candidates for one shard to bound or score.
#[derive(Clone, Debug, PartialEq)]
pub struct ShardQuery {
    /// Which of the worker's hosted shards answers.
    pub shard: u64,
    /// BIG or IBIG — decides which bound/partial the worker computes.
    pub algorithm: Algorithm,
    /// Bounds (phase 1) or exact partials (phase 2).
    pub phase: ShardPhase,
    /// The coordinator's τ at send time, when one exists. Carried for
    /// the monotonicity tripwire; the pruning itself happens at the
    /// coordinator, where the cross-shard sums live.
    pub tau: Option<u64>,
    /// The candidates, in coordinator queue order.
    pub candidates: Vec<WireCandidate>,
}

/// One replayed update batch inside an [`ClusterRequest::Assign`] — a
/// batch the coordinator acked but whose snapshot rewrite the dead
/// worker may not have committed. Replay is idempotent because the
/// snapshot filename carries the last committed seq.
#[derive(Clone, Debug, PartialEq)]
pub struct ReplayBatch {
    /// The coordinator's per-shard update sequence number.
    pub seq: u64,
    /// The batch's ops, in application order.
    pub ops: Vec<UpdateOp>,
}

/// A routed update batch for one shard.
#[derive(Clone, Debug, PartialEq)]
pub struct ShardUpdate {
    /// The target shard.
    pub shard: u64,
    /// The coordinator's per-shard update sequence number — strictly
    /// increasing; the worker commits it into the snapshot filename.
    pub seq: u64,
    /// The ops, in application order.
    pub ops: Vec<UpdateOp>,
}

/// A coordinator→worker frame.
#[derive(Clone, Debug, PartialEq)]
pub enum ClusterRequest {
    /// Bound or score a chunk of candidates on one shard.
    ShardQuery(ShardQuery),
    /// Broadcast the tightening τ for the in-flight query.
    TauUpdate {
        /// The k-th maintained score so far.
        tau: u64,
    },
    /// Save the shard's snapshot, release the shard, answer with the
    /// file path — the first half of a rebalance.
    Handoff {
        /// The shard to hand off.
        shard: u64,
    },
    /// Adopt a shard from a snapshot file (the second half of a
    /// rebalance, or the repair path after a worker death), replaying
    /// any update batches newer than the snapshot.
    Assign {
        /// The shard to adopt.
        shard: u64,
        /// Path of the snapshot file to load.
        path: String,
        /// Acked-but-possibly-uncommitted batches to replay, oldest
        /// first.
        replay: Vec<ReplayBatch>,
    },
    /// Apply one routed update batch to a shard.
    ShardUpdate(ShardUpdate),
}

/// Acknowledgement of a [`ClusterRequest::ShardUpdate`]: the shard's
/// post-batch state, mirroring the plain plane's `update_ack`.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct ShardUpdateAck {
    /// The committed sequence number (echoes the request).
    pub seq: u64,
    /// Live objects on the shard after the batch.
    pub live: u64,
    /// The snapshot file the batch was committed to.
    pub path: String,
    /// Local stable ids assigned to the batch's inserts, in op order.
    pub inserted: Vec<u64>,
}

/// A worker→coordinator frame.
#[derive(Clone, Debug, PartialEq)]
pub enum ClusterResponse {
    /// Answer to [`ClusterRequest::ShardQuery`]: one `u64` per
    /// candidate, in request order — upper bounds in the `Bounds`
    /// phase, exact partial scores in the `Partials` phase.
    ShardOutcomes(Vec<u64>),
    /// Answer to [`ClusterRequest::Handoff`]: where the released
    /// shard's snapshot was written, and its committed seq.
    HandoffAck {
        /// The snapshot file path.
        path: String,
        /// The last update seq committed into that file.
        seq: u64,
    },
    /// Answer to [`ClusterRequest::Assign`].
    AssignAck {
        /// The adopted shard (echoes the request).
        shard: u64,
        /// Live objects after load + replay.
        live: u64,
    },
    /// Answer to [`ClusterRequest::ShardUpdate`].
    ShardUpdateAck(ShardUpdateAck),
    /// Answer to [`ClusterRequest::TauUpdate`]: the worker's session τ
    /// after the update (equal to the broadcast value on success).
    TauAck {
        /// The worker's session τ.
        tau: u64,
    },
    /// Typed rejection — the same error frame the plain plane uses
    /// (unknown shard, τ regression, update validation failure, …).
    Error(ErrorFrame),
}

/// Encode a cluster request as one full v5 frame.
///
/// # Errors
/// [`ServeError::TooLarge`] when a collection exceeds the wire's `u32`
/// count field.
pub fn encode_cluster_request(req: &ClusterRequest) -> Result<Vec<u8>, ServeError> {
    let mut w = BodyWriter::default();
    let kind = match req {
        ClusterRequest::ShardQuery(q) => {
            w.put_u64(q.shard);
            put_algorithm(&mut w, q.algorithm);
            w.put_u8(match q.phase {
                ShardPhase::Bounds => 0,
                ShardPhase::Partials => 1,
            });
            match q.tau {
                None => w.put_u8(0),
                Some(t) => {
                    w.put_u8(1);
                    w.put_u64(t);
                }
            }
            w.put_count("candidate chunk", q.candidates.len())?;
            for c in &q.candidates {
                w.put_count("candidate row", c.values.len())?;
                for &cell in &c.values {
                    w.put_cell(cell);
                }
                match c.member {
                    None => w.put_u8(0),
                    Some(id) => {
                        w.put_u8(1);
                        w.put_u64(id);
                    }
                }
            }
            KIND_SHARD_QUERY
        }
        ClusterRequest::TauUpdate { tau } => {
            w.put_u64(*tau);
            KIND_TAU_UPDATE
        }
        ClusterRequest::Handoff { shard } => {
            w.put_u64(*shard);
            KIND_HANDOFF
        }
        ClusterRequest::Assign {
            shard,
            path,
            replay,
        } => {
            w.put_u64(*shard);
            w.put_str("snapshot path", path)?;
            w.put_count("replay log", replay.len())?;
            for batch in replay {
                w.put_u64(batch.seq);
                w.put_count("replay batch", batch.ops.len())?;
                for op in &batch.ops {
                    put_op(&mut w, op)?;
                }
            }
            KIND_ASSIGN
        }
        ClusterRequest::ShardUpdate(u) => {
            w.put_u64(u.shard);
            w.put_u64(u.seq);
            w.put_count("shard update batch", u.ops.len())?;
            for op in &u.ops {
                put_op(&mut w, op)?;
            }
            KIND_SHARD_UPDATE
        }
    };
    Ok(seal(kind, w.buf))
}

/// Decode a full cluster request frame.
pub fn decode_cluster_request(bytes: &[u8]) -> Result<ClusterRequest, ServeError> {
    let (kind, body) = open_frame(bytes)?;
    decode_cluster_request_body(kind, body)
}

/// Decode a cluster request body whose frame header was already
/// validated (the worker's streaming path).
pub fn decode_cluster_request_body(kind: u8, body: &[u8]) -> Result<ClusterRequest, ServeError> {
    let mut r = BodyReader::new(body);
    let req = match kind {
        KIND_SHARD_QUERY => {
            let shard = r.get_u64()?;
            let algorithm = get_algorithm(&mut r)?;
            let phase = match r.get_u8()? {
                0 => ShardPhase::Bounds,
                1 => ShardPhase::Partials,
                other => return Err(bad(format!("phase byte {other} (want 0/1)"))),
            };
            let tau = match r.get_u8()? {
                0 => None,
                1 => Some(r.get_u64()?),
                other => return Err(bad(format!("tau presence flag {other} (want 0/1)"))),
            };
            let count = r.get_count(5)?;
            let mut candidates = Vec::with_capacity(count);
            for _ in 0..count {
                let dims = r.get_count(1)?;
                let mut values = Vec::with_capacity(dims);
                for _ in 0..dims {
                    values.push(r.get_cell()?);
                }
                let member = match r.get_u8()? {
                    0 => None,
                    1 => Some(r.get_u64()?),
                    other => return Err(bad(format!("member presence flag {other} (want 0/1)"))),
                };
                candidates.push(WireCandidate { values, member });
            }
            ClusterRequest::ShardQuery(ShardQuery {
                shard,
                algorithm,
                phase,
                tau,
                candidates,
            })
        }
        KIND_TAU_UPDATE => ClusterRequest::TauUpdate { tau: r.get_u64()? },
        KIND_HANDOFF => ClusterRequest::Handoff {
            shard: r.get_u64()?,
        },
        KIND_ASSIGN => {
            let shard = r.get_u64()?;
            let path = r.get_str()?;
            let count = r.get_count(12)?;
            let mut replay = Vec::with_capacity(count);
            for _ in 0..count {
                let seq = r.get_u64()?;
                let op_count = r.get_count(1)?;
                let mut ops = Vec::with_capacity(op_count);
                for _ in 0..op_count {
                    ops.push(get_op(&mut r)?);
                }
                replay.push(ReplayBatch { seq, ops });
            }
            ClusterRequest::Assign {
                shard,
                path,
                replay,
            }
        }
        KIND_SHARD_UPDATE => {
            let shard = r.get_u64()?;
            let seq = r.get_u64()?;
            let count = r.get_count(1)?;
            let mut ops = Vec::with_capacity(count);
            for _ in 0..count {
                ops.push(get_op(&mut r)?);
            }
            ClusterRequest::ShardUpdate(ShardUpdate { shard, seq, ops })
        }
        other => return Err(bad(format!("unknown cluster request kind {other}"))),
    };
    r.finish()?;
    Ok(req)
}

/// Encode a cluster response as one full v5 frame.
///
/// # Errors
/// [`ServeError::TooLarge`] when a collection exceeds the wire's `u32`
/// count field.
pub fn encode_cluster_response(resp: &ClusterResponse) -> Result<Vec<u8>, ServeError> {
    let mut w = BodyWriter::default();
    let kind = match resp {
        ClusterResponse::ShardOutcomes(values) => {
            w.put_count("outcome values", values.len())?;
            for &v in values {
                w.put_u64(v);
            }
            KIND_SHARD_OUTCOMES
        }
        ClusterResponse::HandoffAck { path, seq } => {
            w.put_str("snapshot path", path)?;
            w.put_u64(*seq);
            KIND_HANDOFF_ACK
        }
        ClusterResponse::AssignAck { shard, live } => {
            w.put_u64(*shard);
            w.put_u64(*live);
            KIND_ASSIGN_ACK
        }
        ClusterResponse::ShardUpdateAck(ack) => {
            w.put_u64(ack.seq);
            w.put_u64(ack.live);
            w.put_str("snapshot path", &ack.path)?;
            w.put_count("ack id list", ack.inserted.len())?;
            for &id in &ack.inserted {
                w.put_u64(id);
            }
            KIND_SHARD_UPDATE_ACK
        }
        ClusterResponse::TauAck { tau } => {
            w.put_u64(*tau);
            KIND_TAU_ACK
        }
        ClusterResponse::Error(e) => {
            put_error_frame(&mut w, e)?;
            KIND_ERROR_SHARED
        }
    };
    Ok(seal(kind, w.buf))
}

/// Decode a full cluster response frame.
pub fn decode_cluster_response(bytes: &[u8]) -> Result<ClusterResponse, ServeError> {
    let (kind, body) = open_frame(bytes)?;
    decode_cluster_response_body(kind, body)
}

/// Decode a cluster response body whose frame header was already
/// validated (the coordinator's streaming path).
pub fn decode_cluster_response_body(kind: u8, body: &[u8]) -> Result<ClusterResponse, ServeError> {
    let mut r = BodyReader::new(body);
    let resp = match kind {
        KIND_SHARD_OUTCOMES => {
            let count = r.get_count(8)?;
            let mut values = Vec::with_capacity(count);
            for _ in 0..count {
                values.push(r.get_u64()?);
            }
            ClusterResponse::ShardOutcomes(values)
        }
        KIND_HANDOFF_ACK => {
            let path = r.get_str()?;
            let seq = r.get_u64()?;
            ClusterResponse::HandoffAck { path, seq }
        }
        KIND_ASSIGN_ACK => {
            let shard = r.get_u64()?;
            let live = r.get_u64()?;
            ClusterResponse::AssignAck { shard, live }
        }
        KIND_SHARD_UPDATE_ACK => {
            let seq = r.get_u64()?;
            let live = r.get_u64()?;
            let path = r.get_str()?;
            let count = r.get_count(8)?;
            let mut inserted = Vec::with_capacity(count);
            for _ in 0..count {
                inserted.push(r.get_u64()?);
            }
            ClusterResponse::ShardUpdateAck(ShardUpdateAck {
                seq,
                live,
                path,
                inserted,
            })
        }
        KIND_TAU_ACK => ClusterResponse::TauAck { tau: r.get_u64()? },
        KIND_ERROR_SHARED => ClusterResponse::Error(get_error_frame(&mut r)?),
        other => return Err(bad(format!("unknown cluster response kind {other}"))),
    };
    r.finish()?;
    Ok(resp)
}

fn put_algorithm(w: &mut BodyWriter, a: Algorithm) {
    w.put_u8(match a {
        Algorithm::Big => 3,
        Algorithm::Ibig => 4,
        other => unreachable!("cluster queries are BIG/IBIG only, got {other:?}"),
    });
}

fn get_algorithm(r: &mut BodyReader) -> Result<Algorithm, ServeError> {
    match r.get_u8()? {
        3 => Ok(Algorithm::Big),
        4 => Ok(Algorithm::Ibig),
        other => Err(bad(format!(
            "algorithm byte {other} (the cluster plane answers BIG=3/IBIG=4)"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{decode_request_body, ERR_REJECTED};

    fn sample_requests() -> Vec<ClusterRequest> {
        vec![
            ClusterRequest::ShardQuery(ShardQuery {
                shard: 2,
                algorithm: Algorithm::Big,
                phase: ShardPhase::Bounds,
                tau: None,
                candidates: vec![
                    WireCandidate {
                        values: vec![Some(1.0), None, Some(-0.0)],
                        member: Some(7),
                    },
                    WireCandidate {
                        values: vec![None],
                        member: None,
                    },
                ],
            }),
            ClusterRequest::ShardQuery(ShardQuery {
                shard: 0,
                algorithm: Algorithm::Ibig,
                phase: ShardPhase::Partials,
                tau: Some(16),
                candidates: Vec::new(),
            }),
            ClusterRequest::TauUpdate { tau: 0 },
            ClusterRequest::TauUpdate { tau: u64::MAX },
            ClusterRequest::Handoff { shard: 1 },
            ClusterRequest::Assign {
                shard: 1,
                path: "/tmp/shard-1.seq3.tkd".into(),
                replay: vec![
                    ReplayBatch {
                        seq: 4,
                        ops: vec![UpdateOp::Insert(vec![Some(2.5), None])],
                    },
                    ReplayBatch {
                        seq: 5,
                        ops: vec![UpdateOp::Delete(3), UpdateOp::Set(0, 1, Some(9.0))],
                    },
                ],
            },
            ClusterRequest::Assign {
                shard: 0,
                path: String::new(),
                replay: Vec::new(),
            },
            ClusterRequest::ShardUpdate(ShardUpdate {
                shard: 2,
                seq: 9,
                ops: vec![UpdateOp::InsertLabeled("héllo".into(), vec![Some(1.5)])],
            }),
        ]
    }

    fn sample_responses() -> Vec<ClusterResponse> {
        vec![
            ClusterResponse::ShardOutcomes(vec![0, 16, u64::MAX]),
            ClusterResponse::ShardOutcomes(Vec::new()),
            ClusterResponse::HandoffAck {
                path: "/tmp/shard-1.seq3.tkd".into(),
                seq: 3,
            },
            ClusterResponse::AssignAck { shard: 1, live: 40 },
            ClusterResponse::ShardUpdateAck(ShardUpdateAck {
                seq: 9,
                live: 41,
                path: "/tmp/shard-2.seq9.tkd".into(),
                inserted: vec![13],
            }),
            ClusterResponse::ShardUpdateAck(ShardUpdateAck::default()),
            ClusterResponse::TauAck { tau: 16 },
            ClusterResponse::Error(ErrorFrame {
                code: ERR_REJECTED,
                datum: 2,
                message: "shard 2 is not hosted here".into(),
            }),
        ]
    }

    #[test]
    fn cluster_frame_roundtrip_identity() {
        for f in &sample_requests() {
            let bytes = encode_cluster_request(f).expect("sane frames encode");
            let back = decode_cluster_request(&bytes).expect("own frame decodes");
            assert_eq!(&back, f);
            assert_eq!(
                encode_cluster_request(&back).expect("sane frames encode"),
                bytes,
                "canonical bytes"
            );
        }
        for f in &sample_responses() {
            let bytes = encode_cluster_response(f).expect("sane frames encode");
            let back = decode_cluster_response(&bytes).expect("own frame decodes");
            assert_eq!(&back, f);
            assert_eq!(
                encode_cluster_response(&back).expect("sane frames encode"),
                bytes,
                "canonical bytes"
            );
        }
    }

    #[test]
    fn misdirected_frames_fail_loudly_on_both_planes() {
        // A cluster frame at the plain server's decoder…
        let frame = encode_cluster_request(&ClusterRequest::Handoff { shard: 0 }).unwrap();
        let (kind, body) = open_frame(&frame).unwrap();
        let err = decode_request_body(kind, body).unwrap_err();
        assert!(
            matches!(&err, ServeError::BadFrame { reason } if reason.contains("unknown request kind 18")),
            "{err:?}"
        );
        // …and a plain frame at the cluster decoder.
        let frame = crate::protocol::encode_request(&crate::protocol::Request::Stats).unwrap();
        let (kind, body) = open_frame(&frame).unwrap();
        let err = decode_cluster_request_body(kind, body).unwrap_err();
        assert!(
            matches!(&err, ServeError::BadFrame { reason } if reason.contains("unknown cluster request kind 4")),
            "{err:?}"
        );
    }

    #[test]
    fn hostile_cluster_bytes_are_typed_errors() {
        let good = encode_cluster_request(&ClusterRequest::ShardQuery(ShardQuery {
            shard: 0,
            algorithm: Algorithm::Big,
            phase: ShardPhase::Bounds,
            tau: None,
            candidates: vec![WireCandidate {
                values: vec![Some(1.0)],
                member: None,
            }],
        }))
        .unwrap();
        // Truncation at every byte.
        for cut in 0..good.len() {
            assert!(
                decode_cluster_request(&good[..cut]).is_err(),
                "cut at {cut}"
            );
        }
        // Body layout: shard u64 ‖ alg u8 ‖ phase u8 ‖ tau flag u8 ‖ …
        let reseal = |frame: &[u8]| {
            seal(
                frame[crate::protocol::HEADER_LEN - 9],
                frame[crate::protocol::HEADER_LEN..].to_vec(),
            )
        };
        // Unsupported algorithm byte.
        let mut b = good.clone();
        b[crate::protocol::HEADER_LEN + 8] = 0;
        assert!(decode_cluster_request(&reseal(&b)).is_err());
        // Bad phase byte.
        let mut b = good.clone();
        b[crate::protocol::HEADER_LEN + 9] = 7;
        assert!(decode_cluster_request(&reseal(&b)).is_err());
        // Bad tau presence flag.
        let mut b = good.clone();
        b[crate::protocol::HEADER_LEN + 10] = 9;
        assert!(decode_cluster_request(&reseal(&b)).is_err());
        // Trailing bytes.
        let mut b = good.clone();
        b.push(0);
        assert!(matches!(
            decode_cluster_request(&b).unwrap_err(),
            ServeError::BadFrame { .. }
        ));
        // Flipping any checksummed byte is caught.
        let mut b = good.clone();
        let last = b.len() - 1;
        b[last] ^= 0x40;
        assert_eq!(
            decode_cluster_request(&b).unwrap_err(),
            ServeError::ChecksumMismatch
        );
    }
}
