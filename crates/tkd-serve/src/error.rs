//! The typed error currency of the serve layer.
//!
//! Every way a connection, frame, or request can go wrong maps to one
//! variant — the fault-injection harness's contract is that hostile
//! input of any shape surfaces as one of these, never as a panic, hang,
//! or wedged server.

use std::fmt;

/// Why a frame, request, or connection failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ServeError {
    /// Socket-level failure (message carries the OS error).
    Io(String),
    /// The peer closed the connection cleanly between frames.
    Disconnected,
    /// Frame does not start with [`crate::protocol::MAGIC`].
    BadMagic,
    /// Frame speaks a protocol version this build does not.
    VersionMismatch {
        /// Version found in the frame header.
        found: u32,
        /// The only version this build speaks.
        expected: u32,
    },
    /// Declared body length exceeds the configured frame cap — rejected
    /// before any allocation, so a hostile `u64::MAX` length cannot OOM.
    FrameTooLarge {
        /// Declared body length.
        len: u64,
        /// The configured cap.
        max: u64,
    },
    /// A collection being *encoded* exceeds the wire's `u32` count field
    /// — rejected before encoding, where it would otherwise truncate
    /// silently (`len as u32`) and frame a shorter, plausible payload.
    TooLarge {
        /// Which collection (query batch, result rows, ack id list, …).
        what: &'static str,
        /// The offending length.
        len: u64,
    },
    /// Fewer bytes than the header/body promised.
    Truncated {
        /// Bytes required.
        needed: u64,
        /// Bytes present.
        available: u64,
    },
    /// Frame checksum does not match its `kind ‖ len ‖ body` bytes.
    ChecksumMismatch,
    /// Structurally invalid frame (unknown kind, out-of-range field,
    /// trailing bytes, non-UTF-8 label, …).
    BadFrame {
        /// What was wrong.
        reason: String,
    },
    /// The peer took longer than the per-frame deadline to deliver a
    /// started frame — the slow-loris guard.
    DeadlineExpired,
    /// Admission control: the server's request queue is full.
    Overloaded {
        /// Queue depth at rejection time.
        depth: u64,
    },
    /// The request waited in queue past its timeout budget.
    Timeout {
        /// Milliseconds the request had waited when it was abandoned.
        waited_ms: u64,
    },
    /// The server is draining and admits no new work.
    ShuttingDown,
    /// The server rejected the request content (update validation,
    /// snapshot rewrite failure, …).
    Rejected {
        /// Index of the failing op within its batch (updates), else 0.
        index: u64,
        /// Server-side reason.
        message: String,
    },
    /// The server reported a malformed request (relayed `BadRequest`
    /// error frame).
    BadRequest {
        /// Server-side reason.
        message: String,
    },
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Io(m) => write!(f, "i/o error: {m}"),
            ServeError::Disconnected => write!(f, "peer disconnected"),
            ServeError::BadMagic => write!(f, "bad frame magic"),
            ServeError::VersionMismatch { found, expected } => {
                write!(f, "protocol version {found} (this build speaks {expected})")
            }
            ServeError::FrameTooLarge { len, max } => {
                write!(f, "frame of {len} bytes exceeds the {max}-byte cap")
            }
            ServeError::TooLarge { what, len } => {
                write!(
                    f,
                    "cannot encode {what} of {len} elements: exceeds the u32 wire count"
                )
            }
            ServeError::Truncated { needed, available } => {
                write!(f, "truncated frame: needed {needed} bytes, got {available}")
            }
            ServeError::ChecksumMismatch => write!(f, "frame checksum mismatch"),
            ServeError::BadFrame { reason } => write!(f, "malformed frame: {reason}"),
            ServeError::DeadlineExpired => write!(f, "frame read deadline expired"),
            ServeError::Overloaded { depth } => {
                write!(f, "server overloaded (queue depth {depth})")
            }
            ServeError::Timeout { waited_ms } => {
                write!(f, "request timed out after {waited_ms}ms in queue")
            }
            ServeError::ShuttingDown => write!(f, "server is shutting down"),
            ServeError::Rejected { index, message } => {
                write!(f, "request rejected (op {index}): {message}")
            }
            ServeError::BadRequest { message } => write!(f, "bad request: {message}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e.to_string())
    }
}
