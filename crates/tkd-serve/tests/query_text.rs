//! End-to-end TKDQL over the wire (protocol v4): `query_text`,
//! `explain_text`, `subscribe_text`, and the typed rejections statements
//! earn. Every answered query is compared against the in-process oracle
//! so a text path that drifts from the binary path fails loudly.

use std::time::Duration;
use tkd_core::{Algorithm, DynamicEngine, EngineQuery, UpdateOp};
use tkd_serve::protocol::QuerySpec;
use tkd_serve::{Client, ServeConfig, ServeError, Server};

fn start_server() -> (Server, std::net::SocketAddr) {
    let engine = DynamicEngine::new(tkd_model::fixtures::fig3_sample());
    let server = Server::start(engine, "127.0.0.1:0", ServeConfig::default()).expect("bind");
    let addr = server.local_addr();
    (server, addr)
}

fn connect(addr: std::net::SocketAddr) -> Client {
    Client::connect_with(addr, Duration::from_secs(10)).expect("connect")
}

#[test]
fn select_matches_the_binary_query_path() {
    let (server, addr) = start_server();
    let mut client = connect(addr);
    let text = client
        .query_text("SELECT TOP 3 DOMINATING USING BIG")
        .expect("statement answers");
    let binary = client
        .query(QuerySpec::new(3).algorithm(Algorithm::Big))
        .expect("query answers");
    assert_eq!(text, binary);
    // And against the in-process oracle.
    let mut oracle = DynamicEngine::new(tkd_model::fixtures::fig3_sample());
    let want: Vec<(u64, u64)> = oracle
        .query(&EngineQuery::new(3).algorithm(Algorithm::Big))
        .expect("BIG supported")
        .iter()
        .map(|e| (u64::from(e.id), e.score as u64))
        .collect();
    assert_eq!(
        text.iter().map(|e| (e.id, e.score)).collect::<Vec<_>>(),
        want
    );
    drop(client);
    server.stop().expect("clean stop");
}

#[test]
fn scoped_select_and_explain_agree_on_the_algorithm() {
    let (server, addr) = start_server();
    let mut client = connect(addr);
    let rendered = client
        .explain_text("EXPLAIN SELECT TOP 2 DOMINATING WHERE d4 <= 6")
        .expect("explain answers");
    assert!(rendered.contains("algorithm:"), "{rendered}");
    // The scoped query itself answers (cost-based choice executes).
    let rows = client
        .query_text("SELECT TOP 2 DOMINATING WHERE d4 <= 6")
        .expect("scoped select answers");
    assert!(!rows.is_empty());
    drop(client);
    server.stop().expect("clean stop");
}

#[test]
fn subscribe_text_registers_and_pushes_deltas() {
    let (server, addr) = start_server();
    let mut client = connect(addr);
    let ack = client
        .subscribe_text("SUBSCRIBE TO SELECT TOP 2 DOMINATING USING BIG")
        .expect("subscription registers");
    assert_eq!(ack.result.len(), 2);
    // A dominated-by-nothing insert (all-minimum row) must enter the
    // top-k and arrive as a pushed delta.
    client
        .update(&[UpdateOp::Insert(vec![
            Some(-100.0),
            Some(-100.0),
            Some(-100.0),
            Some(-100.0),
        ])])
        .expect("update applies");
    let note = client
        .next_notification(Duration::from_secs(5))
        .expect("notification channel healthy")
        .expect("a delta arrives");
    assert_eq!(note.id, ack.id);
    assert!(!note.added.is_empty(), "the new row enters the top-k");
    drop(client);
    server.stop().expect("clean stop");
}

#[test]
fn statement_errors_are_typed_rejections_with_spans() {
    let (server, addr) = start_server();
    let mut client = connect(addr);
    for (text, needle) in [
        ("SELECT TOP x DOMINATING", "line 1, column 12"),
        ("SELECT TOP 3 DOMINATING WHERE d9 < 1", "out of range"),
        (
            "SELECT TOP 3 DOMINATING FROM 'x.csv'",
            "FROM is not accepted",
        ),
        ("SELECT TOP 3 DOMINATING USING NAIVE", "BIG"),
        ("garbage", "expected SELECT"),
    ] {
        match client.query_text(text) {
            Err(ServeError::Rejected { message, .. }) => {
                assert!(message.contains(needle), "{text}: {message}");
            }
            other => panic!("{text}: expected rejection, got {other:?}"),
        }
    }
    // The connection survives rejections and still answers.
    let rows = client
        .query_text("SELECT TOP 1 DOMINATING USING BIG")
        .expect("still serving");
    assert_eq!(rows.len(), 1);
    drop(client);
    server.stop().expect("clean stop");
}
