//! The fault-injection harness: hostile bytes, hostile timing, hostile
//! churn — and after every attack the server must still answer a clean
//! query correctly.
//!
//! The contract under test (the crate's foregrounded guarantee): every
//! malformed input surfaces as a typed error frame or a clean close —
//! never a panic, never a hang, never a wedged server. Each test ends
//! with `assert_still_serving`, which runs a full query through a fresh
//! client and compares it against the in-process oracle, so a server
//! that survived an attack but corrupted its state still fails loudly.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};
use tkd_core::{Algorithm, DynamicEngine, EngineQuery};
use tkd_serve::protocol::{
    encode_request, open_frame, QuerySpec, HEADER_LEN, MAGIC, PROTOCOL_VERSION,
};
use tkd_serve::{Client, Request, Response, ServeConfig, ServeError, Server};

/// Short timeouts so the slow-loris and stall tests finish quickly.
fn test_config() -> ServeConfig {
    ServeConfig {
        io_timeout: Duration::from_millis(400),
        request_timeout: Duration::from_secs(5),
        ..Default::default()
    }
}

fn start_server() -> (Server, std::net::SocketAddr) {
    let engine = DynamicEngine::new(tkd_model::fixtures::fig3_sample());
    let server = Server::start(engine, "127.0.0.1:0", test_config()).expect("bind");
    let addr = server.local_addr();
    (server, addr)
}

/// The in-process oracle for the fig3 dataset: entries of a top-k BIG
/// query as `(id, score)` pairs.
fn oracle(k: usize) -> Vec<(u64, u64)> {
    let mut engine = DynamicEngine::new(tkd_model::fixtures::fig3_sample());
    engine
        .query(&EngineQuery::new(k).algorithm(Algorithm::Big))
        .expect("BIG supported")
        .iter()
        .map(|e| (u64::from(e.id), e.score as u64))
        .collect()
}

/// The server must answer a clean query bit-identically to the oracle —
/// the "still alive AND still correct" postcondition of every attack.
fn assert_still_serving(addr: std::net::SocketAddr) {
    let mut client = Client::connect_with(addr, Duration::from_secs(10)).expect("connect");
    let got: Vec<(u64, u64)> = client
        .query(QuerySpec::new(3))
        .expect("query answers")
        .iter()
        .map(|e| (e.id, e.score))
        .collect();
    assert_eq!(got, oracle(3), "server state corrupted by the attack");
}

/// Read whatever the server sends until it closes the connection.
fn drain(stream: &mut TcpStream) -> Vec<u8> {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
    let mut buf = Vec::new();
    let _ = stream.read_to_end(&mut buf);
    buf
}

/// The reply to a hostile frame must be a typed error frame (or nothing
/// at all, if the write raced the close) — never garbage.
fn assert_error_reply_or_close(reply: &[u8]) {
    if reply.is_empty() {
        return;
    }
    let (_, _) = open_frame(reply).expect("reply is a well-formed frame");
    let resp = tkd_serve::protocol::decode_response(reply).expect("reply decodes");
    assert!(
        matches!(resp, Response::Error(_)),
        "hostile input must be answered by an error frame, got {resp:?}"
    );
}

#[test]
fn truncated_frames_at_every_boundary() {
    let (server, addr) = start_server();
    let good = encode_request(&Request::Query(QuerySpec::new(2))).expect("small frame encodes");
    // Cut a valid frame at every byte boundary: header-incomplete,
    // header-complete-body-missing, and mid-body. The server must treat
    // each as a disconnect or stalled frame and move on.
    for cut in 0..good.len() {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream.write_all(&good[..cut]).expect("partial write");
        // Close immediately: mid-request disconnect at this boundary.
        drop(stream);
    }
    assert_still_serving(addr);
    server.stop().expect("clean stop");
}

#[test]
fn stalled_truncated_frame_hits_the_deadline() {
    let (server, addr) = start_server();
    let good = encode_request(&Request::Query(QuerySpec::new(2))).expect("small frame encodes");
    // Send half a frame and then go silent without closing. The
    // slow-loris guard must cut the connection within the io timeout,
    // not hold the reader thread forever.
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(&good[..good.len() / 2]).expect("half");
    let start = Instant::now();
    let reply = drain(&mut stream);
    assert!(
        start.elapsed() < Duration::from_secs(8),
        "server must cut a stalled frame, not wait forever"
    );
    assert_error_reply_or_close(&reply);
    assert_still_serving(addr);
    server.stop().expect("clean stop");
}

#[test]
fn hostile_u64_max_length_is_rejected_without_allocation() {
    let (server, addr) = start_server();
    let mut frame = Vec::new();
    frame.extend_from_slice(&MAGIC);
    frame.extend_from_slice(&PROTOCOL_VERSION.to_le_bytes());
    frame.extend_from_slice(&0u64.to_le_bytes()); // checksum (never reached)
    frame.push(1); // kind: query
    frame.extend_from_slice(&u64::MAX.to_le_bytes()); // hostile length
    assert_eq!(frame.len(), HEADER_LEN);
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(&frame).expect("write");
    let reply = drain(&mut stream);
    assert_error_reply_or_close(&reply);
    assert_still_serving(addr);
    server.stop().expect("clean stop");
}

#[test]
fn garbage_magic_version_checksum_and_kind() {
    let (server, addr) = start_server();
    let good = encode_request(&Request::Query(QuerySpec::new(2))).expect("small frame encodes");
    let mut cases: Vec<Vec<u8>> = Vec::new();
    // Garbage magic.
    let mut b = good.clone();
    b[..4].copy_from_slice(b"EVIL");
    cases.push(b);
    // Wrong protocol version.
    let mut b = good.clone();
    b[4..8].copy_from_slice(&999u32.to_le_bytes());
    cases.push(b);
    // Corrupted checksum.
    let mut b = good.clone();
    b[8] ^= 0xFF;
    cases.push(b);
    // Unknown request kind (checksum intact for the tampered tail is NOT
    // recomputed, so this arrives as a checksum mismatch — still typed).
    let mut b = good.clone();
    b[16] = 200;
    cases.push(b);
    // Pure noise.
    cases.push((0..64u8).collect());
    for case in &cases {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream.write_all(case).expect("write");
        let reply = drain(&mut stream);
        assert_error_reply_or_close(&reply);
        assert_still_serving(addr);
    }
    server.stop().expect("clean stop");
}

#[test]
fn slow_loris_partial_writes_hit_the_frame_deadline() {
    let (server, addr) = start_server();
    let good = encode_request(&Request::Query(QuerySpec::new(2))).expect("small frame encodes");
    let mut stream = TcpStream::connect(addr).expect("connect");
    // Trickle one byte per 150ms against a 400ms frame budget: the
    // frame can never complete, and the per-frame deadline (not the
    // per-read timeout) must cut the connection.
    let start = Instant::now();
    let mut sent = 0usize;
    for &byte in &good {
        if stream.write_all(&[byte]).is_err() {
            break; // server already cut us off
        }
        sent += 1;
        std::thread::sleep(Duration::from_millis(150));
        if start.elapsed() > Duration::from_secs(6) {
            break;
        }
    }
    assert!(
        sent < good.len() || start.elapsed() < Duration::from_secs(6),
        "server accepted a whole slow-loris frame without cutting it"
    );
    let reply = drain(&mut stream);
    assert_error_reply_or_close(&reply);
    assert_still_serving(addr);
    server.stop().expect("clean stop");
}

#[test]
fn mid_request_disconnect_during_server_reply() {
    let (server, addr) = start_server();
    // Send a valid query and disconnect without reading the reply: the
    // server's write hits a dead socket and must just drop the
    // connection state, nothing else.
    for _ in 0..8 {
        let mut stream = TcpStream::connect(addr).expect("connect");
        let frame =
            encode_request(&Request::Query(QuerySpec::new(5))).expect("small frame encodes");
        stream.write_all(&frame).expect("write");
        drop(stream);
    }
    assert_still_serving(addr);
    server.stop().expect("clean stop");
}

#[test]
fn concurrent_client_churn_under_fault_mix() {
    let (server, addr) = start_server();
    // Several threads hammer the server simultaneously with a mix of
    // valid queries, truncated frames, garbage, and instant disconnects.
    let handles: Vec<_> = (0..6)
        .map(|t| {
            std::thread::spawn(move || {
                let good = encode_request(&Request::Query(QuerySpec::new(3)))
                    .expect("small frame encodes");
                for round in 0..12 {
                    match (t + round) % 4 {
                        0 => {
                            // Well-behaved client; must get the right answer.
                            let mut c = Client::connect_with(addr, Duration::from_secs(10))
                                .expect("connect");
                            let entries = c.query(QuerySpec::new(3)).expect("query");
                            assert_eq!(entries.len(), 3);
                        }
                        1 => {
                            let mut s = TcpStream::connect(addr).expect("connect");
                            let cut = 1 + (round * 3) % (good.len() - 1);
                            let _ = s.write_all(&good[..cut]);
                        }
                        2 => {
                            let mut s = TcpStream::connect(addr).expect("connect");
                            let _ = s.write_all(&[round as u8; 40]);
                        }
                        _ => {
                            let s = TcpStream::connect(addr).expect("connect");
                            drop(s);
                        }
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("churn thread");
    }
    assert_still_serving(addr);
    server.stop().expect("clean stop");
}

#[test]
fn shutdown_drains_and_later_clients_get_typed_rejection() {
    let (server, addr) = start_server();
    let mut client = Client::connect_with(addr, Duration::from_secs(10)).expect("connect");
    client.shutdown().expect("shutdown acked");
    // After the drain, new requests get ShuttingDown (if the submit
    // races the drain window) or a connection-level error (once the
    // listener is gone) — both typed, never a hang.
    let start = Instant::now();
    // Connect failure means the listener is already gone — also a clean
    // outcome; otherwise the query must fail with a typed rejection.
    if let Ok(mut c) = Client::connect_with(addr, Duration::from_secs(2)) {
        match c.query(QuerySpec::new(1)) {
            Err(
                ServeError::ShuttingDown
                | ServeError::Io(_)
                | ServeError::Disconnected
                | ServeError::DeadlineExpired,
            ) => {}
            Err(other) => panic!("unexpected rejection {other:?}"),
            Ok(_) => panic!("server answered after shutdown ack"),
        }
    }
    assert!(start.elapsed() < Duration::from_secs(15));
    let engine = server.join().expect("drained engine comes back");
    assert_eq!(engine.len(), 20, "fig3 dataset intact after drain");
}
