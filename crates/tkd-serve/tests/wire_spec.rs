//! Pins `docs/WIRE_PROTOCOL.md` to the real codec: every named
//! ` ```hex ` golden frame in the document must byte-for-byte equal the
//! codec's encoding of the typed value it documents, and must decode
//! back to that value. Editing either side without the other fails here.
//! Both planes are covered: the client plane (`protocol`) and the v5
//! cluster plane (`cluster_wire`).

use std::collections::BTreeMap;
use tkd_core::{Algorithm, StandingSpec, UpdateOp};
use tkd_serve::cluster_wire::{
    decode_cluster_request, decode_cluster_response, encode_cluster_request,
    encode_cluster_response,
};
use tkd_serve::protocol::{
    decode_request, decode_response, encode_request, encode_response, ErrorFrame, QuerySpec,
    Request, Response, SubscribeAck, WireEntry, WireNotification, PROTOCOL_VERSION,
};
use tkd_serve::{
    ClusterRequest, ClusterResponse, ShardPhase, ShardQuery, ShardUpdate, ShardUpdateAck,
    WireCandidate,
};

fn spec_text() -> String {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../docs/WIRE_PROTOCOL.md");
    std::fs::read_to_string(path).expect("docs/WIRE_PROTOCOL.md exists")
}

/// Extract `name -> bytes` from the doc's ```hex blocks (first line a
/// `# name` comment, remaining lines hex bytes).
fn golden_frames(md: &str) -> BTreeMap<String, Vec<u8>> {
    let mut frames = BTreeMap::new();
    let lines: Vec<&str> = md.lines().collect();
    let mut i = 0;
    while i < lines.len() {
        if lines[i].trim() != "```hex" {
            i += 1;
            continue;
        }
        i += 1;
        let name = lines[i]
            .trim()
            .strip_prefix("# ")
            .unwrap_or_else(|| panic!("hex block at line {} lacks a `# name` header", i))
            .to_string();
        let mut bytes = Vec::new();
        i += 1;
        while i < lines.len() && lines[i].trim() != "```" {
            for tok in lines[i].split_whitespace() {
                bytes.push(
                    u8::from_str_radix(tok, 16)
                        .unwrap_or_else(|_| panic!("{name}: bad hex byte {tok:?}")),
                );
            }
            i += 1;
        }
        assert!(
            frames.insert(name.clone(), bytes).is_none(),
            "duplicate golden frame {name}"
        );
        i += 1;
    }
    frames
}

/// The typed value each documented client-plane frame encodes. Requests
/// are Ok(..), responses Err(..) — just to carry both through one table.
fn documented_values() -> Vec<(&'static str, Result<Request, Response>)> {
    vec![
        ("query-big-k3", Ok(Request::Query(QuerySpec::new(3)))),
        (
            "query-text-select",
            Ok(Request::QueryText("SELECT TOP 2 DOMINATING".into())),
        ),
        ("stats", Ok(Request::Stats)),
        ("unsubscribe-7", Ok(Request::Unsubscribe(7))),
        (
            "update-insert",
            Ok(Request::UpdateOps(vec![UpdateOp::Insert(vec![
                Some(1.0),
                None,
            ])])),
        ),
        (
            "subscribe-spec",
            Ok(Request::Subscribe(StandingSpec {
                k: 2,
                algorithm: Algorithm::Big,
                subspace: None,
                constraint: vec![],
                fallback_fraction: 0.5,
            })),
        ),
        (
            "query-result",
            Err(Response::QueryResult(vec![
                WireEntry { id: 1, score: 16 },
                WireEntry { id: 11, score: 16 },
            ])),
        ),
        (
            "explain-result",
            Err(Response::ExplainResult("algorithm: Big".into())),
        ),
        (
            "error-rejected",
            Err(Response::Error(ErrorFrame {
                code: 4,
                datum: 0,
                message: "parse error".into(),
            })),
        ),
        (
            "subscribe-ack",
            Err(Response::SubscribeAck(SubscribeAck {
                id: 1,
                result: vec![WireEntry { id: 1, score: 16 }],
            })),
        ),
        (
            "notify",
            Err(Response::Notify(WireNotification {
                id: 1,
                batch_seq: 1,
                added: vec![WireEntry { id: 20, score: 19 }],
                removed: vec![9],
                rescored: vec![],
                kth_score: Some(16),
                via_fallback: false,
            })),
        ),
    ]
}

/// The typed value each documented cluster-plane frame encodes, same
/// Ok-request / Err-response convention as [`documented_values`].
fn documented_cluster_values() -> Vec<(&'static str, Result<ClusterRequest, ClusterResponse>)> {
    vec![
        (
            "shard-query-bounds",
            Ok(ClusterRequest::ShardQuery(ShardQuery {
                shard: 0,
                algorithm: Algorithm::Big,
                phase: ShardPhase::Bounds,
                tau: None,
                candidates: vec![WireCandidate {
                    values: vec![Some(1.0), None],
                    member: Some(2),
                }],
            })),
        ),
        ("tau-update", Ok(ClusterRequest::TauUpdate { tau: 16 })),
        ("handoff", Ok(ClusterRequest::Handoff { shard: 1 })),
        (
            "assign",
            Ok(ClusterRequest::Assign {
                shard: 1,
                path: "shard-1.seq2.tkd".into(),
                replay: vec![],
            }),
        ),
        (
            "shard-update",
            Ok(ClusterRequest::ShardUpdate(ShardUpdate {
                shard: 1,
                seq: 3,
                ops: vec![UpdateOp::Delete(7)],
            })),
        ),
        (
            "shard-outcomes",
            Err(ClusterResponse::ShardOutcomes(vec![17, 4])),
        ),
        (
            "handoff-ack",
            Err(ClusterResponse::HandoffAck {
                path: "shard-1.seq2.tkd".into(),
                seq: 2,
            }),
        ),
        (
            "assign-ack",
            Err(ClusterResponse::AssignAck { shard: 1, live: 9 }),
        ),
        (
            "shard-update-ack",
            Err(ClusterResponse::ShardUpdateAck(ShardUpdateAck {
                seq: 3,
                live: 8,
                path: "shard-1.seq3.tkd".into(),
                inserted: vec![],
            })),
        ),
        ("tau-ack", Err(ClusterResponse::TauAck { tau: 16 })),
    ]
}

#[test]
fn every_documented_frame_matches_the_codec() {
    let frames = golden_frames(&spec_text());
    let values = documented_values();
    let cluster_values = documented_cluster_values();
    // Same name set on both sides — a frame documented but untyped (or
    // vice versa) is a drift bug. The doc's set is the union of both
    // planes' tables.
    let doc_names: Vec<&str> = frames.keys().map(String::as_str).collect();
    let mut table_names: Vec<&str> = values
        .iter()
        .map(|(n, _)| *n)
        .chain(cluster_values.iter().map(|(n, _)| *n))
        .collect();
    table_names.sort_unstable();
    assert_eq!(doc_names, table_names, "golden-frame name sets differ");
    for (name, value) in &values {
        let doc_bytes = &frames[*name];
        match value {
            Ok(req) => {
                let encoded = encode_request(req).expect("encodable");
                assert_eq!(&encoded, doc_bytes, "{name}: encoding differs from the doc");
                assert_eq!(
                    &decode_request(doc_bytes).expect("decodable"),
                    req,
                    "{name}"
                );
            }
            Err(resp) => {
                let encoded = encode_response(resp).expect("encodable");
                assert_eq!(&encoded, doc_bytes, "{name}: encoding differs from the doc");
                assert_eq!(
                    &decode_response(doc_bytes).expect("decodable"),
                    resp,
                    "{name}"
                );
            }
        }
    }
    for (name, value) in &cluster_values {
        let doc_bytes = &frames[*name];
        match value {
            Ok(req) => {
                let encoded = encode_cluster_request(req).expect("encodable");
                assert_eq!(&encoded, doc_bytes, "{name}: encoding differs from the doc");
                assert_eq!(
                    &decode_cluster_request(doc_bytes).expect("decodable"),
                    req,
                    "{name}"
                );
            }
            Err(resp) => {
                let encoded = encode_cluster_response(resp).expect("encodable");
                assert_eq!(&encoded, doc_bytes, "{name}: encoding differs from the doc");
                assert_eq!(
                    &decode_cluster_response(doc_bytes).expect("decodable"),
                    resp,
                    "{name}"
                );
            }
        }
    }
}

#[test]
fn documented_header_constants_hold() {
    let spec = spec_text();
    // The doc's version table and header layout must match the build.
    assert_eq!(PROTOCOL_VERSION, 5);
    assert!(spec.contains("version 5"), "doc title names the version");
    for frame in golden_frames(&spec).values() {
        assert_eq!(&frame[..4], b"TKDW");
        assert_eq!(
            u32::from_le_bytes(frame[4..8].try_into().unwrap()),
            PROTOCOL_VERSION
        );
    }
}

#[test]
fn documented_kind_numbers_match_the_frames() {
    // The kind table in the doc claims fixed numbers; the golden frames
    // carry the kind at byte 16. Spot-check the v4/v5 additions and the
    // disjoint request/response ranges on both planes.
    let frames = golden_frames(&spec_text());
    assert_eq!(frames["query-text-select"][16], 8);
    assert_eq!(frames["explain-result"][16], 137);
    assert_eq!(frames["shard-query-bounds"][16], 16);
    assert_eq!(frames["tau-ack"][16], 148);
    let values = documented_values();
    let cluster_values = documented_cluster_values();
    for (name, frame) in &frames {
        let kind = frame[16];
        if let Some((_, v)) = values.iter().find(|(n, _)| n == name) {
            let range = if v.is_err() { 128..=137 } else { 1..=8 };
            assert!(range.contains(&kind), "{name}: client-plane kind {kind}");
        } else {
            let v = &cluster_values
                .iter()
                .find(|(n, _)| n == name)
                .unwrap_or_else(|| panic!("{name}: in neither documented table"))
                .1;
            let range = if v.is_err() { 144..=148 } else { 16..=20 };
            assert!(range.contains(&kind), "{name}: cluster-plane kind {kind}");
        }
    }
}
