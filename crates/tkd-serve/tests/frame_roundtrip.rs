//! Property tests for the wire protocol: every frame type round-trips
//! to identical bytes, and seeded single-byte corruption of any frame
//! always decodes to a typed error — never a panic, never a silently
//! different value.
//!
//! The second property is the load-bearing one: the frame checksum
//! covers `kind ‖ len ‖ body`, the magic and version fields are checked
//! by equality, and the checksum field itself is self-verifying, so
//! there is no byte in a frame whose corruption can go unnoticed.

use proptest::collection::vec;
use proptest::option;
use proptest::prelude::*;
use tkd_core::{Algorithm, StandingSpec, UpdateOp};
use tkd_serve::protocol::{
    decode_request, decode_response, encode_request, encode_response, QuerySpec,
};
use tkd_serve::{
    ErrorFrame, Request, Response, ServerStats, SubscribeAck, UpdateAck, WireEntry,
    WireNotification,
};

fn spec_strategy() -> impl Strategy<Value = QuerySpec> {
    (0u64..64, 0u8..2).prop_map(|(k, a)| QuerySpec {
        k,
        algorithm: if a == 0 {
            Algorithm::Big
        } else {
            Algorithm::Ibig
        },
    })
}

fn cell_strategy() -> impl Strategy<Value = Option<f64>> {
    option::weighted(0.7, (0u32..12).prop_map(|v| f64::from(v) / 2.0 - 1.0))
}

fn label_strategy() -> impl Strategy<Value = String> {
    vec(0u8..26, 0..8).prop_map(|bs| bs.iter().map(|b| char::from(b'a' + b)).collect())
}

fn op_strategy() -> impl Strategy<Value = UpdateOp> {
    prop_oneof![
        vec(cell_strategy(), 1..5).prop_map(UpdateOp::Insert),
        (label_strategy(), vec(cell_strategy(), 1..5))
            .prop_map(|(l, r)| UpdateOp::InsertLabeled(l, r)),
        (0u32..1000).prop_map(UpdateOp::Delete),
        (0u32..1000, 0u8..5, cell_strategy()).prop_map(|(id, d, c)| UpdateOp::Set(
            id,
            usize::from(d),
            c
        )),
    ]
}

fn standing_spec_strategy() -> impl Strategy<Value = StandingSpec> {
    (
        0usize..8,
        0u8..2,
        option::of(vec(0usize..6, 0..4)),
        vec((0usize..6, 0u32..8, 0u32..8), 0..3),
        0u32..=4,
    )
        .prop_map(|(k, a, subspace, ranges, frac)| StandingSpec {
            k,
            algorithm: if a == 0 {
                Algorithm::Big
            } else {
                Algorithm::Ibig
            },
            subspace,
            constraint: ranges
                .into_iter()
                .map(|(d, lo, hi)| (d, f64::from(lo) - 4.0, f64::from(hi)))
                .collect(),
            fallback_fraction: f64::from(frac) / 4.0,
        })
}

fn request_strategy() -> impl Strategy<Value = Request> {
    prop_oneof![
        spec_strategy().prop_map(Request::Query),
        vec(spec_strategy(), 0..6).prop_map(Request::QueryBatch),
        vec(op_strategy(), 0..6).prop_map(Request::UpdateOps),
        Just(Request::Stats),
        Just(Request::Shutdown),
        standing_spec_strategy().prop_map(Request::Subscribe),
        (0u64..1000).prop_map(Request::Unsubscribe),
    ]
}

fn entries_strategy() -> impl Strategy<Value = Vec<WireEntry>> {
    vec(
        (0u64..1000, 0u64..1000).prop_map(|(id, score)| WireEntry { id, score }),
        0..8,
    )
}

fn response_strategy() -> impl Strategy<Value = Response> {
    prop_oneof![
        entries_strategy().prop_map(Response::QueryResult),
        vec(entries_strategy(), 0..4).prop_map(Response::BatchResult),
        (0u64..20, 1u64..500, 0u64..5, vec(0u64..1000, 0..6)).prop_map(
            |(applied, seq, epoch, inserted_ids)| Response::UpdateAck(UpdateAck {
                applied,
                seq,
                epoch,
                live: applied + seq,
                tombstones: epoch,
                inserted_ids,
            })
        ),
        (0u64..100, 0u64..100, 0u64..100).prop_map(|(live, seq, served)| {
            Response::StatsResult(ServerStats {
                live,
                seq,
                served_queries: served,
                ..Default::default()
            })
        }),
        Just(Response::ShutdownAck),
        (1u8..6, 0u64..1000, label_strategy()).prop_map(|(code, datum, message)| {
            Response::Error(ErrorFrame {
                code,
                datum,
                message,
            })
        }),
        (0u64..1000, entries_strategy())
            .prop_map(|(id, result)| Response::SubscribeAck(SubscribeAck { id, result })),
        any::<bool>().prop_map(Response::UnsubscribeAck),
        (
            0u64..1000,
            1u64..500,
            entries_strategy(),
            vec(0u64..1000, 0..6),
            entries_strategy(),
            option::of(0u64..1000),
            any::<bool>(),
        )
            .prop_map(
                |(id, batch_seq, added, removed, rescored, kth_score, via_fallback)| {
                    Response::Notify(WireNotification {
                        id,
                        batch_seq,
                        added,
                        removed,
                        rescored,
                        kth_score,
                        via_fallback,
                    })
                }
            ),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// `encode(decode(b)) == b` for every request frame type.
    #[test]
    fn request_frames_roundtrip(req in request_strategy()) {
        let bytes = encode_request(&req).expect("bounded strategy encodes");
        let back = decode_request(&bytes).expect("own frame decodes");
        prop_assert_eq!(&back, &req);
        prop_assert_eq!(encode_request(&back).expect("bounded strategy encodes"), bytes);
    }

    /// `encode(decode(b)) == b` for every response frame type.
    #[test]
    fn response_frames_roundtrip(resp in response_strategy()) {
        let bytes = encode_response(&resp).expect("bounded strategy encodes");
        let back = decode_response(&bytes).expect("own frame decodes");
        prop_assert_eq!(&back, &resp);
        prop_assert_eq!(encode_response(&back).expect("bounded strategy encodes"), bytes);
    }

    /// Flipping any single bit of any request frame yields a typed
    /// decode error — corruption can never pass for a different valid
    /// frame or escape as a panic.
    #[test]
    fn request_byte_flips_are_typed_errors(
        req in request_strategy(),
        pos_seed in 0u64..u64::MAX,
        bit in 0u8..8,
    ) {
        let mut bytes = encode_request(&req).expect("bounded strategy encodes");
        let pos = (pos_seed % bytes.len() as u64) as usize;
        bytes[pos] ^= 1 << bit;
        prop_assert!(
            decode_request(&bytes).is_err(),
            "flip at byte {} bit {} must not decode", pos, bit
        );
    }

    /// The same corruption guarantee for response frames (the client's
    /// decode path).
    #[test]
    fn response_byte_flips_are_typed_errors(
        resp in response_strategy(),
        pos_seed in 0u64..u64::MAX,
        bit in 0u8..8,
    ) {
        let mut bytes = encode_response(&resp).expect("bounded strategy encodes");
        let pos = (pos_seed % bytes.len() as u64) as usize;
        bytes[pos] ^= 1 << bit;
        prop_assert!(
            decode_response(&bytes).is_err(),
            "flip at byte {} bit {} must not decode", pos, bit
        );
    }

    /// Truncating a frame at any boundary yields a typed error.
    #[test]
    fn request_truncations_are_typed_errors(
        req in request_strategy(),
        cut_seed in 0u64..u64::MAX,
    ) {
        let bytes = encode_request(&req).expect("bounded strategy encodes");
        let cut = (cut_seed % bytes.len() as u64) as usize;
        prop_assert!(decode_request(&bytes[..cut]).is_err(), "cut at {}", cut);
    }
}
