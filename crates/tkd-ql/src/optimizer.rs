//! The rule-based optimizer: [`Bound`] statement → [`Plan`].
//!
//! Three rewrites run here, in order:
//!
//! 1. **Constant folding** — every right-hand expression collapses to one
//!    `f64`; a fold that produces NaN (`0/0`, `inf - inf`) is a plan
//!    error at the expression's span.
//! 2. **Predicate pushdown** — each `WHERE` conjunct becomes an inclusive
//!    per-dimension interval, and conjuncts on the same dimension are
//!    intersected into at most one [`DimRange`] per dimension. Strict
//!    bounds are made inclusive *exactly* via the next representable
//!    float: `v > c ⟺ v ≥ next_up(c)` holds for every f64, so nothing is
//!    lost in the translation to the engines' inclusive-range machinery.
//! 3. **Algorithm selection setup** — `USING` fixes the algorithm;
//!    otherwise the plan carries [`AlgoChoice::Auto`] and the executor
//!    resolves it with [`crate::plan::resolve_algorithm`] on the derived
//!    dataset's statistics (so EXPLAIN and execution cannot disagree).
//!
//! An intersection that comes out empty (`lo > hi`) is kept for one-shot
//! queries — it admits exactly the objects *missing* that dimension,
//! because each conjunct is vacuously true on a missing value — but is
//! rejected for subscriptions, whose standing-region validation requires
//! a satisfiable range.

use crate::ast::{ArithOp, CmpOp, Expr};
use crate::binder::Bound;
use crate::error::QlError;
use crate::plan::{AlgoChoice, DimRange, Plan};

/// Fold a constant expression to a value.
///
/// # Errors
/// Plan-stage [`QlError`] if the arithmetic produces NaN.
pub fn fold(e: &Expr) -> Result<f64, QlError> {
    let v = match e {
        Expr::Num(v, _) => *v,
        Expr::Neg(inner, _) => -fold(inner)?,
        Expr::Bin(lhs, op, rhs, _) => {
            let l = fold(lhs)?;
            let r = fold(rhs)?;
            match op {
                ArithOp::Add => l + r,
                ArithOp::Sub => l - r,
                ArithOp::Mul => l * r,
                ArithOp::Div => l / r,
            }
        }
    };
    if v.is_nan() {
        return Err(QlError::plan(
            e.span(),
            "constant expression folds to NaN (not a number)",
        ));
    }
    Ok(v)
}

/// Optimize a bound statement into an executable plan.
///
/// # Errors
/// Plan-stage [`QlError`] for NaN constants and, on subscriptions,
/// contradictory predicate conjunctions.
pub fn plan(bound: Bound) -> Result<Plan, QlError> {
    // Rule 2: pushdown. One inclusive interval per mentioned dimension.
    let mut ranges: Vec<DimRange> = Vec::new();
    for p in &bound.predicates {
        let (lo, hi) = match p.op {
            CmpOp::Lt => (f64::NEG_INFINITY, fold(&p.rhs)?.next_down()),
            CmpOp::Le => (f64::NEG_INFINITY, fold(&p.rhs)?),
            CmpOp::Gt => (fold(&p.rhs)?.next_up(), f64::INFINITY),
            CmpOp::Ge => (fold(&p.rhs)?, f64::INFINITY),
            CmpOp::Eq => {
                let v = fold(&p.rhs)?;
                (v, v)
            }
            CmpOp::Between => (
                fold(&p.rhs)?,
                fold(p.rhs2.as_ref().expect("parser guarantees BETWEEN bounds"))?,
            ),
        };
        match ranges.iter_mut().find(|r| r.dim == p.dim) {
            Some(r) => {
                r.lo = r.lo.max(lo);
                r.hi = r.hi.min(hi);
            }
            None => ranges.push(DimRange { dim: p.dim, lo, hi }),
        }
        if bound.subscribe {
            let r = ranges.iter().find(|r| r.dim == p.dim).unwrap();
            if r.is_contradiction() {
                return Err(QlError::plan(
                    p.span,
                    format!(
                        "the WHERE conjuncts on d{} contradict each other; \
                         a subscription region must be satisfiable",
                        p.dim + 1
                    ),
                ));
            }
        }
    }
    ranges.sort_by_key(|r| r.dim);

    let algo = match bound.algorithm {
        Some(a) => AlgoChoice::Fixed(a),
        None => AlgoChoice::Auto,
    };

    Ok(Plan {
        explain: bound.explain,
        subscribe: bound.subscribe,
        k: bound.k,
        from: bound.from,
        subspace: bound.subspace,
        ranges,
        algo,
        threads: bound.threads,
        window: bound.window,
        bins: bound.bins,
        fallback: bound.fallback,
        dims: bound.dims,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binder::bind;
    use crate::parser::parse;
    use tkd_core::Algorithm;

    fn plan_text(text: &str, dims: usize) -> Result<Plan, QlError> {
        plan(bind(&parse(text).unwrap(), dims)?)
    }

    #[test]
    fn folding_handles_precedence_and_negation() {
        let p = plan_text(
            "SELECT TOP 1 DOMINATING WHERE d1 <= 1 + 2 * 3 AND d2 >= -(2 - 5)",
            4,
        )
        .unwrap();
        assert_eq!(p.ranges[0].hi, 7.0);
        assert_eq!(p.ranges[1].lo, 3.0);
    }

    #[test]
    fn nan_constant_is_a_plan_error() {
        let e = plan_text("SELECT TOP 1 DOMINATING WHERE d1 < 0 / 0", 4).unwrap_err();
        assert!(e.message.contains("NaN"), "{e}");
        let e = plan_text("SELECT TOP 1 DOMINATING WHERE d1 < 1e400 - 1e400", 4).unwrap_err();
        assert!(e.message.contains("NaN"), "{e}");
    }

    #[test]
    fn strict_bounds_are_nudged_exactly() {
        let p = plan_text("SELECT TOP 1 DOMINATING WHERE d1 > 5 AND d2 < 5", 4).unwrap();
        assert_eq!(p.ranges[0].lo, 5.0_f64.next_up());
        assert_eq!(p.ranges[0].hi, f64::INFINITY);
        assert_eq!(p.ranges[1].hi, 5.0_f64.next_down());
        // The nudge is exact: no f64 lies in (5, next_up(5)).
        assert!(5.0 < 5.0_f64.next_up());
        assert_eq!(5.0_f64.next_up().next_down(), 5.0);
    }

    #[test]
    fn same_dimension_conjuncts_intersect() {
        let p = plan_text(
            "SELECT TOP 1 DOMINATING WHERE d3 >= 1 AND d3 <= 9 AND d3 BETWEEN 2 AND 8",
            4,
        )
        .unwrap();
        assert_eq!(
            p.ranges,
            vec![DimRange {
                dim: 2,
                lo: 2.0,
                hi: 8.0
            }]
        );
    }

    #[test]
    fn contradictions_survive_for_one_shot_but_not_subscribe() {
        let p = plan_text("SELECT TOP 1 DOMINATING WHERE d1 > 5 AND d1 < 3", 4).unwrap();
        assert!(p.ranges[0].is_contradiction());
        let e = plan_text(
            "SUBSCRIBE TO SELECT TOP 1 DOMINATING WHERE d1 > 5 AND d1 < 3",
            4,
        )
        .unwrap_err();
        assert!(e.message.contains("contradict"), "{e}");
    }

    #[test]
    fn equality_is_a_point_range() {
        let p = plan_text("SELECT TOP 1 DOMINATING WHERE d2 = 3.5", 4).unwrap();
        assert_eq!(
            p.ranges,
            vec![DimRange {
                dim: 1,
                lo: 3.5,
                hi: 3.5
            }]
        );
    }

    #[test]
    fn using_fixes_the_algorithm() {
        let p = plan_text("SELECT TOP 1 DOMINATING USING UBB", 4).unwrap();
        assert_eq!(p.algo, AlgoChoice::Fixed(Algorithm::Ubb));
        let p = plan_text("SELECT TOP 1 DOMINATING", 4).unwrap();
        assert_eq!(p.algo, AlgoChoice::Auto);
    }
}
