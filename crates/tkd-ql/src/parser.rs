//! Recursive-descent parser: token stream → [`Statement`].
//!
//! The grammar (normative EBNF in `docs/TKDQL.md`):
//!
//! ```text
//! statement   = [ "EXPLAIN" ] ( select | subscribe ) [ ";" ] ;
//! subscribe   = "SUBSCRIBE" "TO" select ;
//! select      = "SELECT" "TOP" integer "DOMINATING"
//!               [ "FROM" string ]
//!               [ "SUBSPACE" "(" dim { "," dim } ")" ]
//!               [ "WHERE" predicate { "AND" predicate } ]
//!               [ "USING" algorithm ]
//!               [ "WITH" with-item { "," with-item } ] ;
//! predicate   = dim ( cmp expr | "BETWEEN" expr "AND" expr ) ;
//! cmp         = "<" | "<=" | ">" | ">=" | "=" ;
//! expr        = term { ("+"|"-") term } ;
//! term        = factor { ("*"|"/") factor } ;
//! factor      = [ "-" ] ( number | "(" expr ")" ) ;
//! with-item   = "THREADS" integer | "WINDOW" integer
//!             | "BINS" integer | "FALLBACK" number ;
//! algorithm   = "NAIVE" | "ESB" | "UBB" | "BIG" | "IBIG" ;
//! ```
//!
//! Clauses must appear in the order above (each is optional). `BETWEEN`'s
//! `AND` never conflicts with the conjunction `AND` because constant
//! expressions cannot contain keywords.

use crate::ast::{ArithOp, CmpOp, Expr, Predicate, SelectStmt, Statement, WithItem};
use crate::error::{QlError, Span};
use crate::lexer::{lex, Token, TokenKind, ALGORITHM_NAMES};

/// Parse one TKDQL statement.
///
/// # Errors
/// A lex- or parse-stage [`QlError`] with the span of the first offending
/// token.
pub fn parse(text: &str) -> Result<Statement, QlError> {
    let tokens = lex(text)?;
    let mut p = Parser { tokens, pos: 0 };
    let stmt = p.statement()?;
    p.expect_end()?;
    Ok(stmt)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Token {
        // The stream is Eof-terminated; clamp defensively.
        self.tokens
            .get(self.pos)
            .unwrap_or_else(|| self.tokens.last().expect("eof token"))
    }

    fn bump(&mut self) -> Token {
        let t = self.peek().clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn at_keyword(&self, kw: &str) -> bool {
        matches!(&self.peek().kind, TokenKind::Keyword(k) if *k == kw)
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.at_keyword(kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<Span, QlError> {
        let t = self.peek().clone();
        if self.eat_keyword(kw) {
            Ok(t.span)
        } else {
            Err(QlError::parse(
                t.span,
                format!("expected {kw}, found {}", t.kind.describe()),
            ))
        }
    }

    fn statement(&mut self) -> Result<Statement, QlError> {
        let explain = self.eat_keyword("EXPLAIN");
        let subscribe = self.eat_keyword("SUBSCRIBE");
        if subscribe {
            self.expect_keyword("TO")?;
        }
        Ok(Statement {
            explain,
            subscribe,
            select: self.select()?,
        })
    }

    fn select(&mut self) -> Result<SelectStmt, QlError> {
        self.expect_keyword("SELECT")?;
        self.expect_keyword("TOP")?;
        let k = self.integer("the TOP count")?;
        self.expect_keyword("DOMINATING")?;
        let from = if self.eat_keyword("FROM") {
            let t = self.bump();
            match t.kind {
                TokenKind::Str(s) => Some((s, t.span)),
                other => {
                    return Err(QlError::parse(
                        t.span,
                        format!("FROM expects a quoted path, found {}", other.describe()),
                    ))
                }
            }
        } else {
            None
        };
        let subspace = if self.eat_keyword("SUBSPACE") {
            let t = self.peek().clone();
            if !matches!(t.kind, TokenKind::LParen) {
                return Err(QlError::parse(
                    t.span,
                    format!(
                        "SUBSPACE expects a parenthesized dimension list, found {}",
                        t.kind.describe()
                    ),
                ));
            }
            self.bump();
            let mut dims = Vec::new();
            loop {
                let t = self.bump();
                match t.kind {
                    TokenKind::Ident(name) => dims.push((name, t.span)),
                    other => {
                        return Err(QlError::parse(
                            t.span,
                            format!("expected a dimension name, found {}", other.describe()),
                        ))
                    }
                }
                let t = self.bump();
                match t.kind {
                    TokenKind::Comma => continue,
                    TokenKind::RParen => break,
                    other => {
                        return Err(QlError::parse(
                            t.span,
                            format!("expected `,` or `)`, found {}", other.describe()),
                        ))
                    }
                }
            }
            Some(dims)
        } else {
            None
        };
        let mut predicates = Vec::new();
        if self.eat_keyword("WHERE") {
            loop {
                predicates.push(self.predicate()?);
                if !self.eat_keyword("AND") {
                    break;
                }
            }
        }
        let using = if self.eat_keyword("USING") {
            let t = self.bump();
            match t.kind {
                TokenKind::Ident(name)
                    if ALGORITHM_NAMES.contains(&name.to_ascii_uppercase().as_str()) =>
                {
                    Some((name.to_ascii_uppercase(), t.span))
                }
                other => {
                    return Err(QlError::parse(
                        t.span,
                        format!(
                            "USING expects an algorithm (NAIVE, ESB, UBB, BIG, IBIG), found {}",
                            other.describe()
                        ),
                    ))
                }
            }
        } else {
            None
        };
        let mut with = Vec::new();
        if self.eat_keyword("WITH") {
            loop {
                with.push(self.with_item()?);
                if !matches!(self.peek().kind, TokenKind::Comma) {
                    break;
                }
                self.bump();
            }
        }
        Ok(SelectStmt {
            k,
            from,
            subspace,
            predicates,
            using,
            with,
        })
    }

    fn predicate(&mut self) -> Result<Predicate, QlError> {
        let t = self.bump();
        let dim = match t.kind {
            TokenKind::Ident(name) => (name, t.span),
            other => {
                return Err(QlError::parse(
                    t.span,
                    format!(
                        "a predicate starts with a dimension name, found {}",
                        other.describe()
                    ),
                ))
            }
        };
        let t = self.bump();
        let op = match t.kind {
            TokenKind::Lt => CmpOp::Lt,
            TokenKind::Le => CmpOp::Le,
            TokenKind::Gt => CmpOp::Gt,
            TokenKind::Ge => CmpOp::Ge,
            TokenKind::Eq => CmpOp::Eq,
            TokenKind::Keyword("BETWEEN") => CmpOp::Between,
            other => {
                return Err(QlError::parse(
                    t.span,
                    format!(
                        "expected a comparison (<, <=, >, >=, =, BETWEEN), found {}",
                        other.describe()
                    ),
                ))
            }
        };
        let rhs = self.expr()?;
        let rhs2 = if op == CmpOp::Between {
            self.expect_keyword("AND")?;
            Some(self.expr()?)
        } else {
            None
        };
        Ok(Predicate { dim, op, rhs, rhs2 })
    }

    fn with_item(&mut self) -> Result<WithItem, QlError> {
        let t = self.bump();
        match t.kind {
            TokenKind::Keyword("THREADS") => {
                Ok(WithItem::Threads(self.integer("THREADS")?.0, t.span))
            }
            TokenKind::Keyword("WINDOW") => Ok(WithItem::Window(self.integer("WINDOW")?.0, t.span)),
            TokenKind::Keyword("BINS") => Ok(WithItem::Bins(self.integer("BINS")?.0, t.span)),
            TokenKind::Keyword("FALLBACK") => {
                let t2 = self.bump();
                match t2.kind {
                    TokenKind::Number(raw) => {
                        let v: f64 = raw.parse().expect("lexer validated");
                        Ok(WithItem::Fallback(v, t2.span))
                    }
                    other => Err(QlError::parse(
                        t2.span,
                        format!("FALLBACK expects a number, found {}", other.describe()),
                    )),
                }
            }
            other => Err(QlError::parse(
                t.span,
                format!(
                    "expected a WITH item (THREADS, WINDOW, BINS, FALLBACK), found {}",
                    other.describe()
                ),
            )),
        }
    }

    /// An unsigned integer literal, as `(value, span)`.
    fn integer(&mut self, what: &str) -> Result<(u64, Span), QlError> {
        let t = self.bump();
        match t.kind {
            TokenKind::Number(raw) => match raw.parse::<u64>() {
                Ok(v) => Ok((v, t.span)),
                Err(_) => Err(QlError::parse(
                    t.span,
                    format!("{what} must be a non-negative integer, found {raw}"),
                )),
            },
            other => Err(QlError::parse(
                t.span,
                format!(
                    "{what} must be a non-negative integer, found {}",
                    other.describe()
                ),
            )),
        }
    }

    // Precedence climbing: expr > term > factor.
    fn expr(&mut self) -> Result<Expr, QlError> {
        let mut lhs = self.term()?;
        loop {
            let op = match self.peek().kind {
                TokenKind::Plus => ArithOp::Add,
                TokenKind::Minus => ArithOp::Sub,
                _ => break,
            };
            let span = self.bump().span;
            let rhs = self.term()?;
            lhs = Expr::Bin(Box::new(lhs), op, Box::new(rhs), span);
        }
        Ok(lhs)
    }

    fn term(&mut self) -> Result<Expr, QlError> {
        let mut lhs = self.factor()?;
        loop {
            let op = match self.peek().kind {
                TokenKind::Star => ArithOp::Mul,
                TokenKind::Slash => ArithOp::Div,
                _ => break,
            };
            let span = self.bump().span;
            let rhs = self.factor()?;
            lhs = Expr::Bin(Box::new(lhs), op, Box::new(rhs), span);
        }
        Ok(lhs)
    }

    fn factor(&mut self) -> Result<Expr, QlError> {
        let t = self.bump();
        match t.kind {
            TokenKind::Minus => Ok(Expr::Neg(Box::new(self.factor()?), t.span)),
            TokenKind::Number(raw) => {
                let v: f64 = raw.parse().expect("lexer validated");
                Ok(Expr::Num(v, t.span))
            }
            TokenKind::LParen => {
                let e = self.expr()?;
                let t2 = self.bump();
                if matches!(t2.kind, TokenKind::RParen) {
                    Ok(e)
                } else {
                    Err(QlError::parse(
                        t2.span,
                        format!("expected `)`, found {}", t2.kind.describe()),
                    ))
                }
            }
            other => Err(QlError::parse(
                t.span,
                format!("expected a number, found {}", other.describe()),
            )),
        }
    }

    fn expect_end(&mut self) -> Result<(), QlError> {
        // One optional trailing semicolon.
        if matches!(self.peek().kind, TokenKind::Semicolon) {
            self.bump();
        }
        let t = self.peek();
        if matches!(t.kind, TokenKind::Eof) {
            Ok(())
        } else {
            Err(QlError::parse(
                t.span,
                format!(
                    "unexpected {} after the end of the statement",
                    t.kind.describe()
                ),
            ))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimal_select() {
        let s = parse("SELECT TOP 3 DOMINATING").unwrap();
        let sel = s.select();
        assert_eq!(sel.k.0, 3);
        assert!(sel.from.is_none() && sel.subspace.is_none());
        assert!(sel.predicates.is_empty() && sel.using.is_none() && sel.with.is_empty());
    }

    #[test]
    fn full_clause_order() {
        let s = parse(
            "SELECT TOP 8 DOMINATING FROM 'data.csv' SUBSPACE (d1, d3) \
             WHERE d2 > 0.5 AND d4 BETWEEN 1 AND 4 USING ibig WITH THREADS 2, BINS 16;",
        )
        .unwrap();
        let sel = s.select();
        assert_eq!(sel.k.0, 8);
        assert_eq!(sel.from.as_ref().unwrap().0, "data.csv");
        assert_eq!(
            sel.subspace
                .as_ref()
                .unwrap()
                .iter()
                .map(|(n, _)| n.as_str())
                .collect::<Vec<_>>(),
            vec!["d1", "d3"]
        );
        assert_eq!(sel.predicates.len(), 2);
        assert_eq!(sel.predicates[1].op, CmpOp::Between);
        assert!(sel.predicates[1].rhs2.is_some());
        assert_eq!(sel.using.as_ref().unwrap().0, "IBIG");
        assert_eq!(sel.with.len(), 2);
    }

    #[test]
    fn explain_and_subscribe_wrappers() {
        let s = parse("EXPLAIN SELECT TOP 1 DOMINATING").unwrap();
        assert!(s.explain && !s.subscribe);
        let s = parse("SUBSCRIBE TO SELECT TOP 1 DOMINATING").unwrap();
        assert!(!s.explain && s.subscribe);
        let s = parse("EXPLAIN SUBSCRIBE TO SELECT TOP 1 DOMINATING").unwrap();
        assert!(s.explain && s.subscribe);
        let e = parse("SUBSCRIBE SELECT TOP 1 DOMINATING").unwrap_err();
        assert!(e.message.contains("expected TO"), "{e}");
    }

    #[test]
    fn between_and_binds_to_between_not_conjunction() {
        let s = parse("SELECT TOP 1 DOMINATING WHERE d1 BETWEEN 1 + 1 AND 4 AND d2 < 9").unwrap();
        assert_eq!(s.select().predicates.len(), 2);
    }

    #[test]
    fn arithmetic_precedence() {
        let s = parse("SELECT TOP 1 DOMINATING WHERE d1 < 1 + 2 * 3").unwrap();
        // 1 + (2*3), not (1+2)*3 — folded later; check the tree shape.
        match &s.select().predicates[0].rhs {
            Expr::Bin(_, ArithOp::Add, rhs, _) => {
                assert!(matches!(**rhs, Expr::Bin(_, ArithOp::Mul, _, _)));
            }
            other => panic!("unexpected tree {other:?}"),
        }
    }

    #[test]
    fn errors_name_the_offender() {
        let e = parse("SELECT TOP x DOMINATING").unwrap_err();
        assert!(e.message.contains("non-negative integer"), "{e}");
        let e = parse("SELECT TOP 3").unwrap_err();
        assert!(e.message.contains("expected DOMINATING"), "{e}");
        let e = parse("SELECT TOP 3 DOMINATING USING quantum").unwrap_err();
        assert!(e.message.contains("algorithm"), "{e}");
        let e = parse("SELECT TOP 3 DOMINATING extra").unwrap_err();
        assert!(e.message.contains("after the end"), "{e}");
        let e = parse("SELECT TOP 3 DOMINATING WHERE d1 ~ 3");
        assert!(e.is_err());
    }

    #[test]
    fn reserved_words_are_not_dimensions() {
        let e = parse("SELECT TOP 3 DOMINATING WHERE SELECT > 1").unwrap_err();
        assert!(e.message.contains("dimension name"), "{e}");
    }
}
