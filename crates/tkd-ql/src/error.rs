//! Typed TKDQL errors with source spans.
//!
//! Every failure on the text path — lexing, parsing, binding, planning,
//! execution — is a [`QlError`] carrying the 1-based line/column of the
//! offending text, so callers (CLI, REPL, wire) can point at the problem
//! instead of echoing the whole statement. The fuzz harness
//! (`crates/tkd-ql/tests/fuzz.rs`) pins the stronger contract: *any*
//! byte sequence yields `Ok` or a `QlError` — never a panic.

use std::fmt;

/// A half-open region of the source text, 1-based.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub struct Span {
    /// 1-based line of the first character (0 = unknown/end of input).
    pub line: u32,
    /// 1-based column of the first character.
    pub col: u32,
    /// Length in characters (0 = a point, e.g. end of input).
    pub len: u32,
}

impl Span {
    /// A span starting at `line:col` covering `len` characters.
    pub fn new(line: u32, col: u32, len: u32) -> Self {
        Span { line, col, len }
    }

    /// The zero span: "somewhere after the end of the statement".
    pub fn eof() -> Self {
        Span::default()
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "end of input")
        } else {
            write!(f, "line {}, column {}", self.line, self.col)
        }
    }
}

/// Which stage of the pipeline rejected the statement.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum QlStage {
    /// Tokenization: stray characters, malformed numbers, unterminated
    /// strings.
    Lex,
    /// Grammar: unexpected or missing tokens.
    Parse,
    /// Name/type resolution against the source schema: unknown
    /// dimensions, out-of-range counts, clause combinations the engine
    /// cannot serve.
    Bind,
    /// Planning: constant folding and pushdown failures (non-finite
    /// constant expressions, empty standing regions).
    Plan,
    /// Execution: failures against the concrete target (missing source,
    /// algorithm unsupported by a snapshot engine).
    Exec,
}

impl fmt::Display for QlStage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            QlStage::Lex => "lex",
            QlStage::Parse => "parse",
            QlStage::Bind => "bind",
            QlStage::Plan => "plan",
            QlStage::Exec => "execution",
        })
    }
}

/// A typed TKDQL failure: stage, message, and source location.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct QlError {
    /// The pipeline stage that rejected the statement.
    pub stage: QlStage,
    /// Human-readable description of the problem.
    pub message: String,
    /// Where in the statement text it was detected.
    pub span: Span,
}

impl QlError {
    /// Construct an error for `stage` at `span`.
    pub fn new(stage: QlStage, span: Span, message: impl Into<String>) -> Self {
        QlError {
            stage,
            message: message.into(),
            span,
        }
    }

    /// Shorthand for a lex-stage error.
    pub fn lex(span: Span, message: impl Into<String>) -> Self {
        QlError::new(QlStage::Lex, span, message)
    }

    /// Shorthand for a parse-stage error.
    pub fn parse(span: Span, message: impl Into<String>) -> Self {
        QlError::new(QlStage::Parse, span, message)
    }

    /// Shorthand for a bind-stage error.
    pub fn bind(span: Span, message: impl Into<String>) -> Self {
        QlError::new(QlStage::Bind, span, message)
    }

    /// Shorthand for a plan-stage error.
    pub fn plan(span: Span, message: impl Into<String>) -> Self {
        QlError::new(QlStage::Plan, span, message)
    }

    /// Shorthand for an execution-stage error.
    pub fn exec(span: Span, message: impl Into<String>) -> Self {
        QlError::new(QlStage::Exec, span, message)
    }

    /// Render the offending source line with a caret marker under the
    /// span — the two-line snippet a CLI or REPL prints beneath the
    /// error message. Returns `None` when the span does not point into
    /// `source` (end-of-input errors, or a span from a different text).
    pub fn snippet(&self, source: &str) -> Option<String> {
        if self.span.line == 0 {
            return None;
        }
        let line = source.lines().nth(self.span.line as usize - 1)?;
        let col = self.span.col as usize;
        if col == 0 || col > line.chars().count() + 1 {
            return None;
        }
        let pad: String = line
            .chars()
            .take(col - 1)
            .map(|c| if c == '\t' { '\t' } else { ' ' })
            .collect();
        let marker = "^".repeat((self.span.len as usize).max(1));
        Some(format!("  {line}\n  {pad}{marker}"))
    }
}

impl fmt::Display for QlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} error at {}: {}", self.stage, self.span, self.message)
    }
}

impl std::error::Error for QlError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snippet_points_at_the_offender() {
        let text = "SELECT TOP x DOMINATING";
        let e = QlError::parse(Span::new(1, 12, 1), "expected a number");
        assert_eq!(
            e.snippet(text).unwrap(),
            "  SELECT TOP x DOMINATING\n             ^"
        );
        // End-of-input and out-of-text spans render nothing.
        assert!(QlError::parse(Span::eof(), "x").snippet(text).is_none());
        assert!(QlError::parse(Span::new(9, 1, 1), "x")
            .snippet(text)
            .is_none());
    }

    #[test]
    fn display_carries_location() {
        let e = QlError::parse(Span::new(2, 7, 3), "expected TOP");
        assert_eq!(
            e.to_string(),
            "parse error at line 2, column 7: expected TOP"
        );
        let e = QlError::parse(Span::eof(), "unexpected end of statement");
        assert_eq!(
            e.to_string(),
            "parse error at end of input: unexpected end of statement"
        );
    }
}
