//! The TKDQL abstract syntax tree — what the parser produces and the
//! binder consumes. Every node keeps the [`Span`] of the text it came
//! from so later stages can point diagnostics at the source.

use crate::error::Span;

/// A complete TKDQL statement: the select core plus its wrappers.
///
/// `EXPLAIN` and `SUBSCRIBE TO` compose (`EXPLAIN SUBSCRIBE TO SELECT …`
/// plans the registration without registering), so they are flags rather
/// than variants.
#[derive(Clone, Debug, PartialEq)]
pub struct Statement {
    /// `EXPLAIN …` — plan, don't run.
    pub explain: bool,
    /// `SUBSCRIBE TO …` — register a standing query instead of running
    /// once.
    pub subscribe: bool,
    /// The `SELECT TOP k DOMINATING …` core.
    pub select: SelectStmt,
}

impl Statement {
    /// The inner select (kept for symmetry with the field).
    pub fn select(&self) -> &SelectStmt {
        &self.select
    }
}

/// The `SELECT TOP k DOMINATING …` clause bundle.
#[derive(Clone, Debug, PartialEq)]
pub struct SelectStmt {
    /// The `k` of top-k, with its span.
    pub k: (u64, Span),
    /// `FROM 'path'` — where the data lives (optional; the CLI/REPL/serve
    /// contexts supply an ambient source).
    pub from: Option<(String, Span)>,
    /// `SUBSPACE (d1, d3, …)` — dimension names, unresolved.
    pub subspace: Option<Vec<(String, Span)>>,
    /// `WHERE p1 AND p2 AND …` — the predicate conjunction, in source
    /// order.
    pub predicates: Vec<Predicate>,
    /// `USING <algorithm>` — explicit algorithm selection (None = the
    /// planner chooses by cost).
    pub using: Option<(String, Span)>,
    /// `WITH item, item, …` — execution knobs.
    pub with: Vec<WithItem>,
}

/// One `WHERE` conjunct.
#[derive(Clone, Debug, PartialEq)]
pub struct Predicate {
    /// The dimension name on the left-hand side, unresolved.
    pub dim: (String, Span),
    /// The comparison.
    pub op: CmpOp,
    /// Right-hand constant expression (the lower bound for `BETWEEN`).
    pub rhs: Expr,
    /// `BETWEEN`'s upper-bound expression.
    pub rhs2: Option<Expr>,
}

/// Comparison operators of the `WHERE` clause.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CmpOp {
    /// `<` — strictly less.
    Lt,
    /// `<=` — at most.
    Le,
    /// `>` — strictly greater.
    Gt,
    /// `>=` — at least.
    Ge,
    /// `=` — exactly.
    Eq,
    /// `BETWEEN lo AND hi` — inclusive on both ends.
    Between,
}

impl CmpOp {
    /// Source spelling, for plan rendering.
    pub fn symbol(&self) -> &'static str {
        match self {
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
            CmpOp::Eq => "=",
            CmpOp::Between => "BETWEEN",
        }
    }
}

/// A constant numeric expression (folded by the optimizer).
#[derive(Clone, Debug, PartialEq)]
pub enum Expr {
    /// A literal.
    Num(f64, Span),
    /// Unary negation.
    Neg(Box<Expr>, Span),
    /// A binary arithmetic node.
    Bin(Box<Expr>, ArithOp, Box<Expr>, Span),
}

impl Expr {
    /// The span of the expression's head token.
    pub fn span(&self) -> Span {
        match self {
            Expr::Num(_, s) | Expr::Neg(_, s) | Expr::Bin(_, _, _, s) => *s,
        }
    }
}

/// Arithmetic operators usable in constant expressions.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ArithOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
}

/// One `WITH` knob.
#[derive(Clone, Debug, PartialEq)]
pub enum WithItem {
    /// `THREADS t` — worker threads for BIG/IBIG.
    Threads(u64, Span),
    /// `WINDOW n` — sliding-window capacity (subscriptions only).
    Window(u64, Span),
    /// `BINS x` — IBIG bins per dimension.
    Bins(u64, Span),
    /// `FALLBACK f` — standing-query re-query threshold in `[0, 1]`.
    Fallback(f64, Span),
}
