//! The TKDQL tokenizer.
//!
//! Hand-rolled, span-tracking, and total: every byte sequence produces
//! either a token stream or a [`QlError`] pointing at the offending
//! character. Keywords are case-insensitive; identifiers (dimension
//! names) preserve their spelling for error messages.

use crate::error::{QlError, Span};

/// One lexical token with its source span.
#[derive(Clone, Debug, PartialEq)]
pub struct Token {
    /// What was recognized.
    pub kind: TokenKind,
    /// Where it sits in the statement text.
    pub span: Span,
}

/// The token alphabet of TKDQL.
#[derive(Clone, Debug, PartialEq)]
pub enum TokenKind {
    /// A reserved word (stored upper-cased; see [`KEYWORDS`]).
    Keyword(&'static str),
    /// A non-keyword identifier, e.g. the dimension name `d3`.
    Ident(String),
    /// A numeric literal (original spelling kept for integer checks).
    Number(String),
    /// A quoted string literal (quotes stripped, no escapes).
    Str(String),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `;`
    Semicolon,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `=`
    Eq,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// End of statement.
    Eof,
}

impl TokenKind {
    /// Human-readable token description for diagnostics.
    pub fn describe(&self) -> String {
        match self {
            TokenKind::Keyword(k) => format!("keyword {k}"),
            TokenKind::Ident(s) => format!("identifier `{s}`"),
            TokenKind::Number(s) => format!("number {s}"),
            TokenKind::Str(s) => format!("string '{s}'"),
            TokenKind::LParen => "`(`".into(),
            TokenKind::RParen => "`)`".into(),
            TokenKind::Comma => "`,`".into(),
            TokenKind::Semicolon => "`;`".into(),
            TokenKind::Lt => "`<`".into(),
            TokenKind::Le => "`<=`".into(),
            TokenKind::Gt => "`>`".into(),
            TokenKind::Ge => "`>=`".into(),
            TokenKind::Eq => "`=`".into(),
            TokenKind::Plus => "`+`".into(),
            TokenKind::Minus => "`-`".into(),
            TokenKind::Star => "`*`".into(),
            TokenKind::Slash => "`/`".into(),
            TokenKind::Eof => "end of statement".into(),
        }
    }
}

/// The reserved words of the language, upper-cased.
pub const KEYWORDS: [&str; 20] = [
    "SELECT",
    "TOP",
    "DOMINATING",
    "FROM",
    "SUBSPACE",
    "WHERE",
    "AND",
    "BETWEEN",
    "USING",
    "WITH",
    "EXPLAIN",
    "SUBSCRIBE",
    "TO",
    "THREADS",
    "WINDOW",
    "BINS",
    "FALLBACK",
    "TIES",
    "SEED",
    "BY",
];

/// Algorithm names — contextual keywords (valid only after `USING`), so
/// they stay available as future identifiers.
pub const ALGORITHM_NAMES: [&str; 5] = ["NAIVE", "ESB", "UBB", "BIG", "IBIG"];

/// Tokenize `text` into a `Eof`-terminated stream.
///
/// # Errors
/// [`QlError`] (lex stage) for stray characters, unterminated strings,
/// and malformed numbers, with the span of the offending character.
pub fn lex(text: &str) -> Result<Vec<Token>, QlError> {
    let mut tokens = Vec::new();
    let chars: Vec<char> = text.chars().collect();
    let mut i = 0usize;
    let mut line: u32 = 1;
    let mut col: u32 = 1;
    while i < chars.len() {
        let c = chars[i];
        let span1 = Span::new(line, col, 1);
        // Whitespace (newline tracking) and `--` line comments.
        if c == '\n' {
            i += 1;
            line += 1;
            col = 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            col += 1;
            continue;
        }
        if c == '-' && chars.get(i + 1) == Some(&'-') {
            while i < chars.len() && chars[i] != '\n' {
                i += 1;
            }
            continue; // newline handled above
        }
        // Single- and double-character symbols.
        let sym = match c {
            '(' => Some(TokenKind::LParen),
            ')' => Some(TokenKind::RParen),
            ',' => Some(TokenKind::Comma),
            ';' => Some(TokenKind::Semicolon),
            '=' => Some(TokenKind::Eq),
            '+' => Some(TokenKind::Plus),
            '-' => Some(TokenKind::Minus),
            '*' => Some(TokenKind::Star),
            '/' => Some(TokenKind::Slash),
            _ => None,
        };
        if let Some(kind) = sym {
            tokens.push(Token { kind, span: span1 });
            i += 1;
            col += 1;
            continue;
        }
        if c == '<' || c == '>' {
            let wide = chars.get(i + 1) == Some(&'=');
            let kind = match (c, wide) {
                ('<', true) => TokenKind::Le,
                ('<', false) => TokenKind::Lt,
                ('>', true) => TokenKind::Ge,
                (_, false) => TokenKind::Gt,
                (_, true) => TokenKind::Ge,
            };
            let len = if wide { 2 } else { 1 };
            tokens.push(Token {
                kind,
                span: Span::new(line, col, len),
            });
            i += len as usize;
            col += len;
            continue;
        }
        // String literals: '...' or "...", no escapes (these are paths).
        if c == '\'' || c == '"' {
            let quote = c;
            let start = Span::new(line, col, 1);
            let mut j = i + 1;
            let mut text = String::new();
            loop {
                match chars.get(j) {
                    None | Some('\n') => {
                        return Err(QlError::lex(start, "unterminated string literal"))
                    }
                    Some(&q) if q == quote => break,
                    Some(&ch) => {
                        text.push(ch);
                        j += 1;
                    }
                }
            }
            let len = (j + 1 - i) as u32;
            tokens.push(Token {
                kind: TokenKind::Str(text),
                span: Span::new(line, col, len),
            });
            i = j + 1;
            col += len;
            continue;
        }
        // Numbers: digits, optional fraction/exponent. A leading `.` is
        // not a number start (no other token uses `.`, so it errors).
        if c.is_ascii_digit() {
            let start_col = col;
            let mut j = i;
            let mut seen_dot = false;
            let mut seen_exp = false;
            while let Some(&ch) = chars.get(j) {
                match ch {
                    '0'..='9' => j += 1,
                    '.' if !seen_dot && !seen_exp => {
                        seen_dot = true;
                        j += 1;
                    }
                    'e' | 'E' if !seen_exp => {
                        seen_exp = true;
                        j += 1;
                        if matches!(chars.get(j), Some('+') | Some('-')) {
                            j += 1;
                        }
                    }
                    _ => break,
                }
            }
            let raw: String = chars[i..j].iter().collect();
            let len = (j - i) as u32;
            let span = Span::new(line, start_col, len);
            if raw.parse::<f64>().is_err() {
                return Err(QlError::lex(span, format!("malformed number `{raw}`")));
            }
            // A number must not run straight into a word (`1x`).
            if chars
                .get(j)
                .is_some_and(|ch| ch.is_alphanumeric() || *ch == '_')
            {
                return Err(QlError::lex(
                    span,
                    format!("number `{raw}` runs into the next word; separate them"),
                ));
            }
            tokens.push(Token {
                kind: TokenKind::Number(raw),
                span,
            });
            col += len;
            i = j;
            continue;
        }
        // Identifiers / keywords.
        if c.is_alphabetic() || c == '_' {
            let start_col = col;
            let mut j = i;
            while chars
                .get(j)
                .is_some_and(|ch| ch.is_alphanumeric() || *ch == '_')
            {
                j += 1;
            }
            let raw: String = chars[i..j].iter().collect();
            let len = (j - i) as u32;
            let span = Span::new(line, start_col, len);
            let upper = raw.to_ascii_uppercase();
            let kind = match KEYWORDS.iter().find(|k| **k == upper) {
                Some(k) => TokenKind::Keyword(k),
                None => TokenKind::Ident(raw),
            };
            tokens.push(Token { kind, span });
            col += len;
            i = j;
            continue;
        }
        return Err(QlError::lex(
            span1,
            format!("unexpected character `{c}` (U+{:04X})", c as u32),
        ));
    }
    tokens.push(Token {
        kind: TokenKind::Eof,
        span: Span::eof(),
    });
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(text: &str) -> Vec<TokenKind> {
        lex(text).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn keywords_are_case_insensitive() {
        assert_eq!(
            kinds("select TOP Dominating"),
            vec![
                TokenKind::Keyword("SELECT"),
                TokenKind::Keyword("TOP"),
                TokenKind::Keyword("DOMINATING"),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn spans_track_lines_and_columns() {
        let toks = lex("SELECT\n  TOP 3").unwrap();
        assert_eq!(toks[0].span, Span::new(1, 1, 6));
        assert_eq!(toks[1].span, Span::new(2, 3, 3));
        assert_eq!(toks[2].span, Span::new(2, 7, 1));
    }

    #[test]
    fn comparison_operators() {
        assert_eq!(
            kinds("< <= > >= ="),
            vec![
                TokenKind::Lt,
                TokenKind::Le,
                TokenKind::Gt,
                TokenKind::Ge,
                TokenKind::Eq,
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn numbers_and_strings() {
        assert_eq!(
            kinds("3 0.5 1e3 'a b' \"c\""),
            vec![
                TokenKind::Number("3".into()),
                TokenKind::Number("0.5".into()),
                TokenKind::Number("1e3".into()),
                TokenKind::Str("a b".into()),
                TokenKind::Str("c".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            kinds("SELECT -- the whole rest\nTOP"),
            vec![
                TokenKind::Keyword("SELECT"),
                TokenKind::Keyword("TOP"),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn lex_errors_carry_spans() {
        let e = lex("SELECT @").unwrap_err();
        assert_eq!(e.span, Span::new(1, 8, 1));
        let e = lex("'unterminated").unwrap_err();
        assert!(e.message.contains("unterminated"));
        let e = lex("12x").unwrap_err();
        assert!(e.message.contains("runs into"));
    }

    #[test]
    fn algorithm_names_lex_as_identifiers() {
        // Contextual: `BIG` is an Ident, promoted only after USING.
        assert_eq!(
            kinds("big"),
            vec![TokenKind::Ident("big".into()), TokenKind::Eof]
        );
    }
}
