//! The executable logical plan, dataset statistics, and the cost-based
//! algorithm choice (the paper's §4.5 model, Eq. 5–8, applied as a
//! planner rule).

use std::fmt;
use tkd_core::Algorithm;
use tkd_model::{stats, Dataset};

/// A per-dimension inclusive value range pushed down from `WHERE`.
///
/// `lo > hi` is a *contradictory* range: no observed value satisfies it,
/// so it admits exactly the objects missing that dimension (every
/// conjunct is vacuously true on a missing value — the paper's "no
/// assumption about missing values").
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DimRange {
    /// 0-based dimension.
    pub dim: usize,
    /// Inclusive lower bound (`-inf` = unbounded).
    pub lo: f64,
    /// Inclusive upper bound (`+inf` = unbounded).
    pub hi: f64,
}

impl DimRange {
    /// Whether no observed value can satisfy the range.
    pub fn is_contradiction(&self) -> bool {
        self.lo > self.hi
    }
}

impl fmt::Display for DimRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_contradiction() {
            return write!(
                f,
                "d{} in ∅ (contradiction; admits missing-d{} only)",
                self.dim + 1,
                self.dim + 1
            );
        }
        match (self.lo == f64::NEG_INFINITY, self.hi == f64::INFINITY) {
            (true, true) => write!(f, "d{} unconstrained", self.dim + 1),
            (true, false) => write!(f, "d{} <= {}", self.dim + 1, self.hi),
            (false, true) => write!(f, "d{} >= {}", self.dim + 1, self.lo),
            (false, false) => write!(f, "d{} in [{}, {}]", self.dim + 1, self.lo, self.hi),
        }
    }
}

/// How the executor picks the algorithm.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AlgoChoice {
    /// `USING <name>` fixed it.
    Fixed(Algorithm),
    /// No `USING` clause — resolve by cost on the derived dataset at
    /// execution (and EXPLAIN) time, via [`resolve_algorithm`].
    Auto,
}

/// The optimized logical plan: everything the executor needs, fully
/// resolved except for the cost-based algorithm choice (which depends on
/// the data the plan eventually runs against).
#[derive(Clone, Debug, PartialEq)]
pub struct Plan {
    /// Render the plan instead of running it.
    pub explain: bool,
    /// Register a standing query instead of running once.
    pub subscribe: bool,
    /// Top-k count.
    pub k: usize,
    /// `FROM 'path'` — resolved by the caller, not the executor.
    pub from: Option<String>,
    /// Projection onto these dimensions (strictly increasing), if any.
    pub subspace: Option<Vec<usize>>,
    /// Pushed-down per-dimension ranges, at most one per dimension,
    /// sorted by dimension (the pre-ANDed intersection of all `WHERE`
    /// conjuncts).
    pub ranges: Vec<DimRange>,
    /// Fixed or cost-based algorithm.
    pub algo: AlgoChoice,
    /// Worker threads for BIG/IBIG.
    pub threads: usize,
    /// Sliding-window capacity (subscriptions).
    pub window: Option<usize>,
    /// IBIG bin count per dimension (one-shot).
    pub bins: Option<usize>,
    /// Standing-query fallback fraction (subscriptions).
    pub fallback: Option<f64>,
    /// Dimensionality the plan was bound against.
    pub dims: usize,
}

/// Statistics of the (derived) dataset a query will run against — the
/// inputs of the §4.5 cost model.
#[derive(Clone, Debug, PartialEq)]
pub struct PlanStats {
    /// Object count `N`.
    pub n: usize,
    /// Dimensionality `d`.
    pub dims: usize,
    /// Missing rate `σ ∈ [0, 1]`.
    pub sigma: f64,
    /// Distinct observed values `Vᵢ` per dimension.
    pub distinct: Vec<usize>,
}

impl PlanStats {
    /// Measure `ds`.
    pub fn of(ds: &Dataset) -> Self {
        PlanStats {
            n: ds.len(),
            dims: ds.dims(),
            sigma: stats::missing_rate(ds),
            distinct: (0..ds.dims())
                .map(|d| stats::distinct_values(ds, d).len())
                .collect(),
        }
    }
}

/// The resolved algorithm plus the numbers that chose it, so EXPLAIN can
/// show its work.
#[derive(Clone, Debug, PartialEq)]
pub struct AlgoDecision {
    /// What will run.
    pub algorithm: Algorithm,
    /// One line of justification.
    pub rationale: String,
}

/// Cost-based algorithm selection on `stats` (the derived dataset).
///
/// The rule, from the paper's §4.5 space/time model:
///
/// * `σN ≤ 2` — the model degenerates (the bitmap machinery has almost no
///   incomplete rows to help with): pick UBB, the best index-free bound
///   method; on a dynamic engine (`engine_only`), which serves only the
///   bitmap algorithms, pick BIG.
/// * otherwise compare Eq. 7 combined costs: BIG keeps one bitmap per
///   distinct value (space `N·Σ(Vᵢ+1)` bits, time Eq. 6 with exact bins
///   `x = ⌈σN⌉`) against IBIG at the Eq. 8 optimum `x*` (space Eq. 5,
///   time Eq. 6). The smaller product wins.
///
/// Both EXPLAIN and execution call this one function on the same stats,
/// so the printed choice is by construction the executed choice.
pub fn resolve_algorithm(stats: &PlanStats, engine_only: bool) -> AlgoDecision {
    use tkd_index::cost;
    let sn = stats.sigma * stats.n as f64;
    if sn <= 2.0 {
        let algorithm = if engine_only {
            Algorithm::Big
        } else {
            Algorithm::Ubb
        };
        return AlgoDecision {
            algorithm,
            rationale: format!("σN = {sn:.2} ≤ 2: cost model degenerate, default {algorithm:?}"),
        };
    }
    let x_big = (sn.ceil() as usize).max(1);
    let space_big: u64 = stats
        .distinct
        .iter()
        .map(|&v| stats.n as u64 * (v as u64 + 1))
        .sum();
    let time_big = cost::query_cost(stats.n, stats.dims, stats.sigma, x_big);
    let big_cost = space_big as f64 * time_big;
    let x_star = cost::optimal_bins(stats.n, stats.sigma);
    let ibig_cost = cost::combined_cost(stats.n, stats.dims, stats.sigma, x_star);
    let algorithm = if big_cost <= ibig_cost {
        Algorithm::Big
    } else {
        Algorithm::Ibig
    };
    AlgoDecision {
        algorithm,
        rationale: format!(
            "Eq.7 combined cost: BIG {big_cost:.3e} (exact bins) vs IBIG {ibig_cost:.3e} \
             (x* = {x_star}); {algorithm:?} wins"
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tkd_model::fixtures;

    #[test]
    fn stats_of_fig3() {
        let s = PlanStats::of(&fixtures::fig3_sample());
        assert_eq!(s.n, 20);
        assert_eq!(s.dims, 4);
        assert!(s.sigma > 0.0 && s.sigma < 1.0);
        assert_eq!(s.distinct.len(), 4);
    }

    #[test]
    fn degenerate_picks_ubb_or_big() {
        let s = PlanStats {
            n: 100,
            dims: 3,
            sigma: 0.0,
            distinct: vec![10, 10, 10],
        };
        assert_eq!(resolve_algorithm(&s, false).algorithm, Algorithm::Ubb);
        assert_eq!(resolve_algorithm(&s, true).algorithm, Algorithm::Big);
    }

    #[test]
    fn high_cardinality_prefers_ibig() {
        // Many distinct values make BIG's per-value bitmaps expensive in
        // Eq. 7; the binned index wins.
        let s = PlanStats {
            n: 100_000,
            dims: 8,
            sigma: 0.2,
            distinct: vec![100_000; 8],
        };
        assert_eq!(resolve_algorithm(&s, false).algorithm, Algorithm::Ibig);
    }

    #[test]
    fn tiny_cardinality_prefers_big() {
        // With a handful of distinct values BIG's index is smaller than
        // any binned approximation and its scan is exact.
        let s = PlanStats {
            n: 100_000,
            dims: 8,
            sigma: 0.2,
            distinct: vec![2; 8],
        };
        assert_eq!(resolve_algorithm(&s, false).algorithm, Algorithm::Big);
    }

    #[test]
    fn range_display() {
        let r = DimRange {
            dim: 0,
            lo: 1.0,
            hi: 4.0,
        };
        assert_eq!(r.to_string(), "d1 in [1, 4]");
        let r = DimRange {
            dim: 2,
            lo: f64::NEG_INFINITY,
            hi: 0.5,
        };
        assert_eq!(r.to_string(), "d3 <= 0.5");
        let r = DimRange {
            dim: 1,
            lo: 5.0,
            hi: 3.0,
        };
        assert!(r.is_contradiction());
        assert!(r.to_string().contains("contradiction"));
    }
}
