//! Name and range resolution: AST → [`Bound`] statement.
//!
//! Binding happens against a *schema* — the dimensionality of the target
//! data — and turns textual dimension names (`d1` … `dN`, 1-based in the
//! language) into 0-based indices, checks counts fit the machine, and
//! enforces the clause combinations the engines can actually serve.
//! Constant expressions are left unfolded; that is the planner's job.

use crate::ast::{CmpOp, Expr, Statement, WithItem};
use crate::error::{QlError, Span};
use tkd_core::Algorithm;

/// A bound (name-resolved, count-checked) statement.
#[derive(Clone, Debug, PartialEq)]
pub struct Bound {
    /// `EXPLAIN` was requested.
    pub explain: bool,
    /// `SUBSCRIBE TO` was requested.
    pub subscribe: bool,
    /// Top-k count.
    pub k: usize,
    /// `FROM 'path'`, verbatim.
    pub from: Option<String>,
    /// Resolved subspace dimensions, strictly increasing.
    pub subspace: Option<Vec<usize>>,
    /// Resolved predicates, in source order.
    pub predicates: Vec<BoundPredicate>,
    /// Explicit `USING` algorithm; `None` = planner chooses by cost.
    pub algorithm: Option<Algorithm>,
    /// `WITH THREADS t` (default 1).
    pub threads: usize,
    /// `WITH WINDOW n` (subscriptions only).
    pub window: Option<usize>,
    /// `WITH BINS x` (one-shot IBIG only).
    pub bins: Option<usize>,
    /// `WITH FALLBACK f` (subscriptions only).
    pub fallback: Option<f64>,
    /// Dimensionality the statement was bound against.
    pub dims: usize,
}

/// One `WHERE` conjunct with its dimension resolved to a 0-based index.
#[derive(Clone, Debug, PartialEq)]
pub struct BoundPredicate {
    /// 0-based dimension index.
    pub dim: usize,
    /// The comparison.
    pub op: CmpOp,
    /// Right-hand constant expression (lower bound for `BETWEEN`).
    pub rhs: Expr,
    /// `BETWEEN`'s upper bound.
    pub rhs2: Option<Expr>,
    /// Span of the whole predicate's dimension token, for diagnostics.
    pub span: Span,
}

/// Resolve `stmt` against a target of dimensionality `dims`.
///
/// # Errors
/// Bind-stage [`QlError`] for unknown dimensions, duplicate subspace or
/// `WITH` entries, out-of-range counts, and clause combinations the
/// standing-query layer rejects (`SUBSCRIBE` with both `SUBSPACE` and
/// `WHERE`, non-BIG/IBIG `USING`, one-shot `WINDOW`/`FALLBACK`).
pub fn bind(stmt: &Statement, dims: usize) -> Result<Bound, QlError> {
    let sel = &stmt.select;
    if dims == 0 {
        return Err(QlError::bind(sel.k.1, "the target has no dimensions"));
    }
    let k = usize::try_from(sel.k.0).map_err(|_| {
        QlError::bind(
            sel.k.1,
            format!("k = {} does not fit this machine", sel.k.0),
        )
    })?;

    let subspace = match &sel.subspace {
        None => None,
        Some(names) => {
            let mut resolved: Vec<(usize, Span)> = Vec::with_capacity(names.len());
            for (name, span) in names {
                let dim = resolve_dim(name, *span, dims)?;
                if let Some((_, first)) = resolved.iter().find(|(d, _)| *d == dim) {
                    return Err(QlError::bind(
                        *span,
                        format!("dimension {name} appears twice in SUBSPACE (first at {first})"),
                    ));
                }
                resolved.push((dim, *span));
            }
            // The language accepts any order; the engines want strictly
            // increasing indices, and dominance is order-blind.
            resolved.sort_by_key(|(d, _)| *d);
            Some(resolved.into_iter().map(|(d, _)| d).collect())
        }
    };

    let mut predicates = Vec::with_capacity(sel.predicates.len());
    for p in &sel.predicates {
        let dim = resolve_dim(&p.dim.0, p.dim.1, dims)?;
        predicates.push(BoundPredicate {
            dim,
            op: p.op,
            rhs: p.rhs.clone(),
            rhs2: p.rhs2.clone(),
            span: p.dim.1,
        });
    }

    let algorithm = match &sel.using {
        None => None,
        Some((name, span)) => Some(match name.as_str() {
            "NAIVE" => Algorithm::Naive,
            "ESB" => Algorithm::Esb,
            "UBB" => Algorithm::Ubb,
            "BIG" => Algorithm::Big,
            "IBIG" => Algorithm::Ibig,
            other => return Err(QlError::bind(*span, format!("unknown algorithm {other}"))),
        }),
    };

    let mut threads: Option<(u64, Span)> = None;
    let mut window: Option<(u64, Span)> = None;
    let mut bins: Option<(u64, Span)> = None;
    let mut fallback: Option<(f64, Span)> = None;
    for item in &sel.with {
        match item {
            WithItem::Threads(v, s) => set_once("THREADS", &mut threads, *v, *s)?,
            WithItem::Window(v, s) => set_once("WINDOW", &mut window, *v, *s)?,
            WithItem::Bins(v, s) => set_once("BINS", &mut bins, *v, *s)?,
            WithItem::Fallback(v, s) => set_once("FALLBACK", &mut fallback, *v, *s)?,
        }
    }
    let threads = match threads {
        None => 1,
        Some((v, s)) => positive("THREADS", v, s)?,
    };
    let window = window.map(|(v, s)| positive("WINDOW", v, s)).transpose()?;
    let bins = bins.map(|(v, s)| positive("BINS", v, s)).transpose()?;
    let fallback = match fallback {
        None => None,
        Some((v, s)) => {
            if !v.is_finite() || !(0.0..=1.0).contains(&v) {
                return Err(QlError::bind(
                    s,
                    format!("FALLBACK must be a fraction in [0, 1], got {v}"),
                ));
            }
            Some(v)
        }
    };

    if stmt.subscribe {
        if subspace.is_some() && !predicates.is_empty() {
            return Err(QlError::bind(
                sel.subspace.as_ref().unwrap()[0].1,
                "a subscription cannot combine SUBSPACE and WHERE \
                 (the standing-query layer serves one scope at a time)",
            ));
        }
        if let Some(a) = algorithm {
            if !matches!(a, Algorithm::Big | Algorithm::Ibig) {
                return Err(QlError::bind(
                    sel.using.as_ref().unwrap().1,
                    format!("subscriptions run on BIG or IBIG, not {a:?}"),
                ));
            }
        }
        if threads != 1 {
            return Err(QlError::bind(
                with_span(sel, "THREADS"),
                "THREADS does not apply to subscriptions \
                 (patching is incremental, not parallel)",
            ));
        }
        if bins.is_some() {
            return Err(QlError::bind(
                with_span(sel, "BINS"),
                "BINS does not apply to subscriptions \
                 (the engine manages its own binning)",
            ));
        }
    } else {
        if window.is_some() {
            return Err(QlError::bind(
                with_span(sel, "WINDOW"),
                "WINDOW applies to subscriptions only",
            ));
        }
        if fallback.is_some() {
            return Err(QlError::bind(
                with_span(sel, "FALLBACK"),
                "FALLBACK applies to subscriptions only",
            ));
        }
    }

    Ok(Bound {
        explain: stmt.explain,
        subscribe: stmt.subscribe,
        k,
        from: sel.from.as_ref().map(|(p, _)| p.clone()),
        subspace,
        predicates,
        algorithm,
        threads,
        window,
        bins,
        fallback,
        dims,
    })
}

/// Resolve a dimension name (`d1` … `dN`, case-insensitive, 1-based) to a
/// 0-based index.
fn resolve_dim(name: &str, span: Span, dims: usize) -> Result<usize, QlError> {
    let rest = name
        .strip_prefix('d')
        .or_else(|| name.strip_prefix('D'))
        .unwrap_or("");
    let parsed: Option<usize> = if rest.is_empty() || rest.starts_with('0') {
        None
    } else {
        rest.parse().ok()
    };
    match parsed {
        Some(n) if n <= dims => Ok(n - 1),
        Some(n) => Err(QlError::bind(
            span,
            format!(
                "dimension d{n} is out of range; the target has {dims} dimensions (d1..d{dims})"
            ),
        )),
        None => Err(QlError::bind(
            span,
            format!("unknown dimension `{name}`; dimensions are named d1..d{dims}"),
        )),
    }
}

fn set_once<T: Copy>(
    what: &str,
    slot: &mut Option<(T, Span)>,
    v: T,
    s: Span,
) -> Result<(), QlError> {
    if let Some((_, first)) = slot {
        return Err(QlError::bind(
            s,
            format!("{what} given twice (first at {first})"),
        ));
    }
    *slot = Some((v, s));
    Ok(())
}

fn positive(what: &str, v: u64, s: Span) -> Result<usize, QlError> {
    match usize::try_from(v) {
        Ok(v) if v >= 1 => Ok(v),
        _ => Err(QlError::bind(s, format!("{what} must be at least 1"))),
    }
}

/// Span of a named `WITH` item, for diagnostics (the item is known to be
/// present when this is called).
fn with_span(sel: &crate::ast::SelectStmt, what: &str) -> Span {
    for item in &sel.with {
        match (item, what) {
            (WithItem::Threads(_, s), "THREADS")
            | (WithItem::Window(_, s), "WINDOW")
            | (WithItem::Bins(_, s), "BINS")
            | (WithItem::Fallback(_, s), "FALLBACK") => return *s,
            _ => {}
        }
    }
    Span::eof()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn bind_text(text: &str, dims: usize) -> Result<Bound, QlError> {
        bind(&parse(text).unwrap(), dims)
    }

    #[test]
    fn resolves_dimensions_one_based() {
        let b = bind_text("SELECT TOP 2 DOMINATING SUBSPACE (d4, d1) WHERE d2 < 5", 4).unwrap();
        assert_eq!(b.subspace, Some(vec![0, 3])); // sorted ascending
        assert_eq!(b.predicates[0].dim, 1);
    }

    #[test]
    fn rejects_unknown_and_out_of_range_dims() {
        let e = bind_text("SELECT TOP 1 DOMINATING WHERE d5 < 1", 4).unwrap_err();
        assert!(e.message.contains("out of range"), "{e}");
        let e = bind_text("SELECT TOP 1 DOMINATING WHERE price < 1", 4).unwrap_err();
        assert!(e.message.contains("unknown dimension"), "{e}");
        let e = bind_text("SELECT TOP 1 DOMINATING WHERE d0 < 1", 4).unwrap_err();
        assert!(e.message.contains("unknown dimension"), "{e}");
        let e = bind_text("SELECT TOP 1 DOMINATING WHERE d01 < 1", 4).unwrap_err();
        assert!(e.message.contains("unknown dimension"), "{e}");
    }

    #[test]
    fn rejects_duplicate_subspace_dims_and_with_items() {
        let e = bind_text("SELECT TOP 1 DOMINATING SUBSPACE (d1, d1)", 4).unwrap_err();
        assert!(e.message.contains("twice"), "{e}");
        let e = bind_text("SELECT TOP 1 DOMINATING WITH THREADS 2, THREADS 3", 4).unwrap_err();
        assert!(e.message.contains("twice"), "{e}");
    }

    #[test]
    fn using_maps_to_algorithms() {
        for (name, alg) in [
            ("NAIVE", Algorithm::Naive),
            ("esb", Algorithm::Esb),
            ("Ubb", Algorithm::Ubb),
            ("big", Algorithm::Big),
            ("IBIG", Algorithm::Ibig),
        ] {
            let b = bind_text(&format!("SELECT TOP 1 DOMINATING USING {name}"), 4).unwrap();
            assert_eq!(b.algorithm, Some(alg));
        }
    }

    #[test]
    fn subscribe_restrictions() {
        let e = bind_text(
            "SUBSCRIBE TO SELECT TOP 1 DOMINATING SUBSPACE (d1) WHERE d2 < 5",
            4,
        )
        .unwrap_err();
        assert!(e.message.contains("cannot combine"), "{e}");
        let e = bind_text("SUBSCRIBE TO SELECT TOP 1 DOMINATING USING NAIVE", 4).unwrap_err();
        assert!(e.message.contains("BIG or IBIG"), "{e}");
        let e = bind_text("SUBSCRIBE TO SELECT TOP 1 DOMINATING WITH THREADS 4", 4).unwrap_err();
        assert!(e.message.contains("THREADS"), "{e}");
        assert!(bind_text(
            "SUBSCRIBE TO SELECT TOP 1 DOMINATING WITH WINDOW 100, FALLBACK 0.5",
            4
        )
        .is_ok());
    }

    #[test]
    fn one_shot_rejects_subscription_knobs() {
        let e = bind_text("SELECT TOP 1 DOMINATING WITH WINDOW 10", 4).unwrap_err();
        assert!(e.message.contains("subscriptions only"), "{e}");
        let e = bind_text("SELECT TOP 1 DOMINATING WITH FALLBACK 0.5", 4).unwrap_err();
        assert!(e.message.contains("subscriptions only"), "{e}");
    }

    #[test]
    fn with_value_ranges() {
        let e = bind_text("SELECT TOP 1 DOMINATING WITH THREADS 0", 4).unwrap_err();
        assert!(e.message.contains("at least 1"), "{e}");
        let e = bind_text("SUBSCRIBE TO SELECT TOP 1 DOMINATING WITH FALLBACK 1.5", 4).unwrap_err();
        assert!(e.message.contains("[0, 1]"), "{e}");
    }
}
