//! Plan execution against concrete targets, plus EXPLAIN rendering.
//!
//! Two targets exist:
//!
//! * a [`Dataset`] — any algorithm, any scope; the executor derives the
//!   sub-dataset (`WHERE` admission, then `SUBSPACE` projection), runs
//!   the core query on it, and remaps ids back to the original, exactly
//!   the composition `tkd_core::variants` uses (the differential harness
//!   pins bit-identity);
//! * a [`DynamicEngine`] — BIG/IBIG only; unscoped one-shot queries use
//!   the maintained index directly, scoped ones run against a snapshot
//!   with ids translated through the live-id table, and `SUBSCRIBE`
//!   registers a [`StandingSpec`].
//!
//! Cost-based algorithm selection ([`AlgoChoice::Auto`]) measures the
//! *derived* dataset and calls [`resolve_algorithm`]; EXPLAIN calls the
//! same function on the same stats, so the printed and executed choices
//! are one decision, not two.

use crate::error::{QlError, Span};
use crate::plan::{resolve_algorithm, AlgoChoice, AlgoDecision, Plan, PlanStats};
use tkd_core::{
    variants, Algorithm, BinChoice, DynamicEngine, EngineQuery, ResultEntry, StandingId,
    StandingSpec, TkdQuery, TkdResult,
};
use tkd_model::{Dataset, ObjectId};
use tkd_skyline::constrained::Constraints;

/// What executing a statement produced.
#[derive(Clone, Debug)]
pub enum Outcome {
    /// A one-shot result set (ids refer to the original target).
    Rows(TkdResult),
    /// The rendered plan (`EXPLAIN`).
    Explain(String),
    /// A registered standing query and its initial result.
    Subscribed {
        /// Engine-unique standing-query handle.
        id: StandingId,
        /// The result set at registration time.
        initial: Vec<ResultEntry>,
    },
}

/// Execute `plan` against a dataset.
///
/// # Errors
/// Execution-stage [`QlError`] — e.g. `SUBSCRIBE` (which needs a dynamic
/// engine) or an out-of-range subspace after the data changed.
pub fn run_on_dataset(plan: &Plan, ds: &Dataset) -> Result<Outcome, QlError> {
    check_dims(plan, ds.dims())?;
    if plan.subscribe && !plan.explain {
        return Err(QlError::exec(
            Span::eof(),
            "SUBSCRIBE needs a dynamic engine target (a loaded snapshot is read-only)",
        ));
    }
    let derived = derive(plan, ds)?;
    // An EXPLAIN SUBSCRIBE must show what registration would pick, and
    // standing queries are served by the bitmap engines only.
    let decision = decide(plan, &derived.stats, plan.subscribe);
    if plan.explain {
        return Ok(Outcome::Explain(render_explain(
            plan,
            &format!("dataset (N={}, d={})", ds.len(), ds.dims()),
            &derived,
            &decision,
        )));
    }
    Ok(Outcome::Rows(run_derived(
        plan,
        &derived,
        decision.algorithm,
    )))
}

/// Execute `plan` against a dynamic engine.
///
/// # Errors
/// Execution-stage [`QlError`] — e.g. a `USING` algorithm the engine
/// cannot serve, or a standing spec the engine rejects.
pub fn run_on_engine(plan: &Plan, engine: &mut DynamicEngine) -> Result<Outcome, QlError> {
    check_dims(plan, engine.dims())?;
    if let AlgoChoice::Fixed(a) = plan.algo {
        if !matches!(a, Algorithm::Big | Algorithm::Ibig) {
            return Err(QlError::exec(
                Span::eof(),
                format!("a dynamic engine serves BIG and IBIG, not {a:?}"),
            ));
        }
    }
    if plan.subscribe {
        return subscribe(plan, engine);
    }
    // Scoped queries (and Auto selection) measure/run against a snapshot
    // of the live rows; snapshot id `i` is live_ids()[i].
    let scoped = plan.subspace.is_some() || !plan.ranges.is_empty();
    if !scoped {
        let snap;
        let stats = {
            snap = engine.snapshot();
            PlanStats::of(&snap)
        };
        let decision = decide(plan, &stats, true);
        if plan.explain {
            let derived = Derived {
                ds: snap,
                mapping: None,
                stats,
            };
            return Ok(Outcome::Explain(render_explain(
                plan,
                &format!("engine (live N={}, d={})", engine.len(), engine.dims()),
                &derived,
                &decision,
            )));
        }
        let q = EngineQuery::new(plan.k).algorithm(decision.algorithm);
        let result = engine
            .query_threads(&q, plan.threads)
            .map_err(|e| QlError::exec(Span::eof(), e.to_string()))?;
        return Ok(Outcome::Rows(result));
    }
    let snap = engine.snapshot();
    let live = engine.live_ids();
    let derived = derive(plan, &snap)?;
    let decision = decide(plan, &derived.stats, true);
    if plan.explain {
        return Ok(Outcome::Explain(render_explain(
            plan,
            &format!("engine (live N={}, d={})", engine.len(), engine.dims()),
            &derived,
            &decision,
        )));
    }
    let result = run_derived(plan, &derived, decision.algorithm);
    // Translate snapshot ids back to engine ids.
    Ok(Outcome::Rows(variants::remap(result, &live)))
}

fn subscribe(plan: &Plan, engine: &mut DynamicEngine) -> Result<Outcome, QlError> {
    let mut spec = StandingSpec::new(plan.k);
    spec = match plan.algo {
        AlgoChoice::Fixed(a) => spec.algorithm(a),
        AlgoChoice::Auto => {
            // Standing queries patch BIG/IBIG; resolve on the live data.
            let snap = engine.snapshot();
            spec.algorithm(resolve_algorithm(&PlanStats::of(&snap), true).algorithm)
        }
    };
    if let Some(dims) = &plan.subspace {
        spec = spec.subspace(dims.clone());
    }
    for r in &plan.ranges {
        spec = spec.constrain(r.dim, r.lo, r.hi);
    }
    if let Some(f) = plan.fallback {
        spec = spec.fallback_fraction(f);
    }
    if plan.explain {
        let snap = engine.snapshot();
        let derived = derive(plan, &snap)?;
        let decision = AlgoDecision {
            algorithm: spec.algorithm,
            rationale: match plan.algo {
                AlgoChoice::Fixed(_) => "USING clause".into(),
                AlgoChoice::Auto => resolve_algorithm(&PlanStats::of(&snap), true).rationale,
            },
        };
        return Ok(Outcome::Explain(render_explain(
            plan,
            &format!("engine (live N={}, d={})", engine.len(), engine.dims()),
            &derived,
            &decision,
        )));
    }
    if let Some(w) = plan.window {
        engine.set_window(Some(w));
    }
    let id = engine
        .register(spec)
        .map_err(|e| QlError::exec(Span::eof(), e.to_string()))?;
    let initial = engine
        .standing_result(id)
        .map(<[ResultEntry]>::to_vec)
        .unwrap_or_default();
    Ok(Outcome::Subscribed { id, initial })
}

/// A plan's derived dataset plus the id mapping back to the target.
struct Derived {
    ds: Dataset,
    /// `derived id i` → original id; `None` = identity.
    mapping: Option<Vec<ObjectId>>,
    stats: PlanStats,
}

/// Apply `WHERE` admission and `SUBSPACE` projection, mirroring
/// `tkd_core::variants` (admit → select → project → compose mappings).
fn derive(plan: &Plan, ds: &Dataset) -> Result<Derived, QlError> {
    let mut current = ds.clone();
    let mut mapping: Option<Vec<ObjectId>> = None;
    if !plan.ranges.is_empty() {
        let mut c = Constraints::none(ds.dims());
        for r in &plan.ranges {
            c = c.with_interval(r.dim, r.lo, r.hi);
        }
        let admitted = c.admitted(&current);
        current = current.select(&admitted);
        mapping = Some(admitted);
    }
    if let Some(dims) = &plan.subspace {
        let (projected, kept) = current
            .project(dims)
            .map_err(|e| QlError::exec(Span::eof(), e.to_string()))?;
        mapping = Some(match mapping {
            None => kept,
            Some(outer) => kept.into_iter().map(|i| outer[i as usize]).collect(),
        });
        current = projected;
    }
    let stats = PlanStats::of(&current);
    Ok(Derived {
        ds: current,
        mapping,
        stats,
    })
}

/// Run the core query on the derived dataset and remap ids.
fn run_derived(plan: &Plan, derived: &Derived, algorithm: Algorithm) -> TkdResult {
    if derived.ds.is_empty() {
        return TkdResult::default();
    }
    let mut q = TkdQuery::new(plan.k)
        .algorithm(algorithm)
        .threads(plan.threads);
    if let Some(x) = plan.bins {
        q = q.bins(BinChoice::Fixed(x));
    }
    let result = q.run(&derived.ds);
    match &derived.mapping {
        None => result,
        Some(map) => variants::remap(result, map),
    }
}

fn decide(plan: &Plan, stats: &PlanStats, engine_only: bool) -> AlgoDecision {
    match plan.algo {
        AlgoChoice::Fixed(a) => AlgoDecision {
            algorithm: a,
            rationale: "USING clause".into(),
        },
        AlgoChoice::Auto => resolve_algorithm(stats, engine_only),
    }
}

fn check_dims(plan: &Plan, dims: usize) -> Result<(), QlError> {
    if plan.dims != dims {
        return Err(QlError::exec(
            Span::eof(),
            format!(
                "plan was bound against {} dimensions but the target has {dims}",
                plan.dims
            ),
        ));
    }
    Ok(())
}

/// Render the EXPLAIN text: bound plan, pushed-down region, derived-data
/// statistics, and the algorithm decision with its rationale.
fn render_explain(plan: &Plan, target: &str, derived: &Derived, decision: &AlgoDecision) -> String {
    let mut out = String::new();
    let kind = if plan.subscribe {
        "standing query (SUBSCRIBE)"
    } else {
        "one-shot query"
    };
    out.push_str(&format!("TKDQL {kind}\n"));
    out.push_str(&format!("  target:    {target}\n"));
    out.push_str(&format!("  k:         {}\n", plan.k));
    match &plan.subspace {
        None => out.push_str("  subspace:  full space\n"),
        Some(dims) => out.push_str(&format!(
            "  subspace:  {}\n",
            dims.iter()
                .map(|d| format!("d{}", d + 1))
                .collect::<Vec<_>>()
                .join(", ")
        )),
    }
    if plan.ranges.is_empty() {
        out.push_str("  pushdown:  none\n");
    } else {
        for r in &plan.ranges {
            out.push_str(&format!("  pushdown:  {r}\n"));
        }
    }
    let s = &derived.stats;
    out.push_str(&format!(
        "  derived:   N={}, d={}, missing rate {:.3}\n",
        s.n, s.dims, s.sigma
    ));
    out.push_str(&format!("  algorithm: {:?}\n", decision.algorithm));
    out.push_str(&format!("  chosen by: {}\n", decision.rationale));
    if plan.threads != 1 {
        out.push_str(&format!("  threads:   {}\n", plan.threads));
    }
    if let Some(x) = plan.bins {
        out.push_str(&format!("  bins:      {x}\n"));
    }
    if let Some(w) = plan.window {
        out.push_str(&format!("  window:    {w}\n"));
    }
    if let Some(f) = plan.fallback {
        out.push_str(&format!("  fallback:  {f}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile;
    use tkd_core::variants;
    use tkd_model::fixtures;

    fn run(text: &str, ds: &Dataset) -> Outcome {
        let plan = compile(text, ds.dims()).unwrap();
        run_on_dataset(&plan, ds).unwrap()
    }

    fn rows(o: Outcome) -> TkdResult {
        match o {
            Outcome::Rows(r) => r,
            other => panic!("expected rows, got {other:?}"),
        }
    }

    #[test]
    fn plain_select_matches_hand_query() {
        let ds = fixtures::fig3_sample();
        let r = rows(run("SELECT TOP 2 DOMINATING USING BIG", &ds));
        let want = TkdQuery::new(2).algorithm(Algorithm::Big).run(&ds);
        assert_eq!(r.entries(), want.entries());
        // The paper's Fig. 3 answer for T2D: {A2, C2} with score 16.
        assert_eq!(r.scores(), vec![16, 16]);
    }

    #[test]
    fn where_matches_constrained_variant() {
        let ds = fixtures::fig3_sample();
        let r = rows(run(
            "SELECT TOP 4 DOMINATING WHERE d4 BETWEEN 1 AND 4 USING UBB",
            &ds,
        ));
        let c = Constraints::none(4).with_range(3, 1.0, 4.0);
        let want =
            variants::constrained_top_k(&ds, &c, &TkdQuery::new(4).algorithm(Algorithm::Ubb));
        assert_eq!(r.entries(), want.entries());
    }

    #[test]
    fn subspace_matches_subspace_variant() {
        let ds = fixtures::fig3_sample();
        let r = rows(run(
            "SELECT TOP 3 DOMINATING SUBSPACE (d2, d4) USING IBIG",
            &ds,
        ));
        let want =
            variants::subspace_top_k(&ds, &[1, 3], &TkdQuery::new(3).algorithm(Algorithm::Ibig))
                .unwrap();
        assert_eq!(r.entries(), want.entries());
    }

    #[test]
    fn strict_bound_excludes_the_boundary() {
        let ds = fixtures::fig2_points();
        // Fig. 2: f = (4, 2). `d1 > 4` must exclude f; `d1 >= 4` keeps it.
        let f = ds.id_by_label("f").unwrap();
        let strict = rows(run("SELECT TOP 6 DOMINATING WHERE d1 > 4 USING NAIVE", &ds));
        assert!(!strict.ids().contains(&f));
        let loose = rows(run(
            "SELECT TOP 6 DOMINATING WHERE d1 >= 4 USING NAIVE",
            &ds,
        ));
        assert!(loose.ids().contains(&f));
    }

    #[test]
    fn contradiction_admits_only_missing() {
        let ds = fixtures::fig2_points();
        // Only e = (-, 4) misses d1; every conjunct is vacuously true on it.
        let r = rows(run(
            "SELECT TOP 6 DOMINATING WHERE d1 > 5 AND d1 < 3 USING NAIVE",
            &ds,
        ));
        assert_eq!(r.ids(), vec![ds.id_by_label("e").unwrap()]);
    }

    #[test]
    fn explain_reports_the_algorithm_execution_uses() {
        let ds = fixtures::fig3_sample();
        let text = "SELECT TOP 2 DOMINATING WHERE d4 <= 6";
        let explain = match run(&format!("EXPLAIN {text}"), &ds) {
            Outcome::Explain(s) => s,
            other => panic!("expected explain, got {other:?}"),
        };
        // The same Auto decision must show up when the query runs: rerun
        // both paths and compare against each fixed algorithm.
        let auto = rows(run(text, &ds));
        let algo_line = explain
            .lines()
            .find(|l| l.trim_start().starts_with("algorithm:"))
            .unwrap();
        let named: Vec<(&str, Algorithm)> = vec![
            ("Naive", Algorithm::Naive),
            ("Esb", Algorithm::Esb),
            ("Ubb", Algorithm::Ubb),
            ("Big", Algorithm::Big),
            ("Ibig", Algorithm::Ibig),
        ];
        let (_, chosen) = named
            .into_iter()
            .find(|(n, _)| algo_line.contains(n))
            .expect("explain names an algorithm");
        let fixed = rows(run(&format!("{text} USING {chosen:?}"), &ds));
        assert_eq!(auto.entries(), fixed.entries());
    }

    #[test]
    fn subscribe_on_dataset_is_an_exec_error() {
        let ds = fixtures::fig3_sample();
        let plan = compile("SUBSCRIBE TO SELECT TOP 2 DOMINATING", ds.dims()).unwrap();
        let e = run_on_dataset(&plan, &ds).unwrap_err();
        assert!(e.message.contains("dynamic engine"), "{e}");
    }

    #[test]
    fn engine_roundtrip_and_subscribe() {
        let ds = fixtures::fig3_sample();
        let mut engine = DynamicEngine::new(ds.clone());
        let plan = compile("SELECT TOP 2 DOMINATING USING BIG", 4).unwrap();
        let r = match run_on_engine(&plan, &mut engine).unwrap() {
            Outcome::Rows(r) => r,
            other => panic!("{other:?}"),
        };
        let want = TkdQuery::new(2).algorithm(Algorithm::Big).run(&ds);
        assert_eq!(r.entries(), want.entries());

        let plan = compile("SUBSCRIBE TO SELECT TOP 2 DOMINATING USING BIG", 4).unwrap();
        match run_on_engine(&plan, &mut engine).unwrap() {
            Outcome::Subscribed { initial, .. } => {
                assert_eq!(
                    initial.iter().map(|e| e.score).collect::<Vec<_>>(),
                    vec![16, 16]
                );
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn engine_scoped_query_translates_ids() {
        let ds = fixtures::fig3_sample();
        let mut engine = DynamicEngine::new(ds.clone());
        let plan = compile("SELECT TOP 3 DOMINATING SUBSPACE (d2, d4) USING BIG", 4).unwrap();
        let r = match run_on_engine(&plan, &mut engine).unwrap() {
            Outcome::Rows(r) => r,
            other => panic!("{other:?}"),
        };
        let want =
            variants::subspace_top_k(&ds, &[1, 3], &TkdQuery::new(3).algorithm(Algorithm::Big))
                .unwrap();
        assert_eq!(r.entries(), want.entries());
    }

    #[test]
    fn engine_rejects_non_bitmap_algorithms() {
        let ds = fixtures::fig3_sample();
        let mut engine = DynamicEngine::new(ds);
        let plan = compile("SELECT TOP 1 DOMINATING USING NAIVE", 4).unwrap();
        let e = run_on_engine(&plan, &mut engine).unwrap_err();
        assert!(e.message.contains("BIG"), "{e}");
    }
}
