//! **TKDQL** — a small query language for top-k dominating queries on
//! incomplete data, with a cost-based planner.
//!
//! One statement form, five clauses:
//!
//! ```text
//! SELECT TOP k DOMINATING
//!   [ FROM 'path' ]
//!   [ SUBSPACE (d1, d3, ...) ]
//!   [ WHERE d2 > 0.5 AND d4 BETWEEN 1 AND 4 ]
//!   [ USING BIG | IBIG | UBB | ESB | NAIVE ]
//!   [ WITH THREADS t, BINS x ]
//! ```
//!
//! plus the wrappers `EXPLAIN <select>` (plan, don't run) and
//! `SUBSCRIBE TO <select>` (register a standing query on a dynamic
//! engine; accepts `WITH WINDOW n, FALLBACK f`). The normative grammar,
//! keyword table, and executable examples live in `docs/TKDQL.md`; the
//! spec harness (`tests/tkdql_spec_examples.rs`) runs every example
//! against the paper's Fig. 3 dataset.
//!
//! The pipeline is classical: [`lexer`] → [`parser`] → [`binder`] →
//! [`optimizer`] → [`plan`] → [`exec`]. Missing values follow the
//! paper's semantics — a predicate on a dimension an object does not
//! observe is vacuously true, so `WHERE` never assumes anything about
//! missing values. When no `USING` clause is given, the planner picks
//! the algorithm by the paper's §4.5 space/time cost model, measured on
//! the *derived* dataset (after `WHERE`/`SUBSPACE`), and `EXPLAIN`
//! reports exactly the choice execution makes.
//!
//! ```
//! use tkd_model::fixtures;
//! let ds = fixtures::fig3_sample();
//! let plan = tkd_ql::compile("SELECT TOP 2 DOMINATING USING BIG", ds.dims()).unwrap();
//! match tkd_ql::exec::run_on_dataset(&plan, &ds).unwrap() {
//!     tkd_ql::exec::Outcome::Rows(r) => assert_eq!(r.scores(), vec![16, 16]),
//!     _ => unreachable!(),
//! }
//! ```

#![warn(missing_docs)]

pub mod ast;
pub mod binder;
pub mod error;
pub mod exec;
pub mod lexer;
pub mod optimizer;
pub mod parser;
pub mod plan;

pub use binder::bind;
pub use error::{QlError, QlStage, Span};
pub use exec::{run_on_dataset, run_on_engine, Outcome};
pub use parser::parse;
pub use plan::{resolve_algorithm, AlgoChoice, AlgoDecision, DimRange, Plan, PlanStats};

/// Parse, bind, and optimize `text` against a target of dimensionality
/// `dims` — the whole front half of the pipeline in one call.
///
/// The `FROM` clause is carried through ([`Plan::from`]) but not
/// resolved; callers that accept `FROM` should [`parse`] first, load the
/// named source, and then compile against its dimensionality.
///
/// # Errors
/// A [`QlError`] from whichever stage rejects the statement.
pub fn compile(text: &str, dims: usize) -> Result<Plan, QlError> {
    optimizer::plan(binder::bind(&parser::parse(text)?, dims)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compile_is_parse_bind_plan() {
        let p = compile("SELECT TOP 3 DOMINATING WHERE d1 >= 2", 4).unwrap();
        assert_eq!(p.k, 3);
        assert_eq!(p.ranges.len(), 1);
        assert!(compile("SELECT TOP", 4).is_err());
        assert!(compile("SELECT TOP 3 DOMINATING WHERE d9 >= 2", 4).is_err());
    }
}
