//! The parser fuzz leg: `compile` is **total**. Any byte sequence —
//! random token salads, arbitrary (even invalid) UTF-8, and seeded
//! mutations of valid statements — yields `Ok(plan)` or a typed
//! [`QlError`] carrying a usable span; never a panic, never an abort.
//! A companion golden file (`tests/golden_diagnostics.txt`) pins the
//! twelve load-bearing diagnostic renderings verbatim, so error-message
//! quality is a tested surface, not an accident.

use proptest::collection::vec;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tkd_ql::{compile, QlStage};

/// Every token the grammar knows plus near-miss junk: joining random
/// samples of this vocabulary produces statements that are wrong in
/// grammatical ways (the hard case for a recursive-descent parser),
/// unlike pure byte noise which dies in the lexer.
const VOCAB: &[&str] = &[
    "SELECT",
    "TOP",
    "DOMINATING",
    "FROM",
    "SUBSPACE",
    "WHERE",
    "USING",
    "WITH",
    "AND",
    "BETWEEN",
    "SUBSCRIBE",
    "TO",
    "EXPLAIN",
    "THREADS",
    "WINDOW",
    "BINS",
    "FALLBACK",
    "TIES",
    "SEED",
    "BY",
    "NAIVE",
    "ESB",
    "UBB",
    "BIG",
    "IBIG",
    "d1",
    "d2",
    "d4",
    "d9",
    "d0",
    "x",
    "(",
    ")",
    ",",
    "<",
    "<=",
    ">",
    ">=",
    "=",
    "+",
    "-",
    "*",
    "/",
    "0",
    "3",
    "0.5",
    "1e9",
    "1e309",
    "99999999999999999999",
    "'file.txt'",
    "'unterminated",
    "''",
    "@",
    ".",
    "\n",
    "\t",
    "--",
    "-- comment",
];

/// The totality contract: compiling must return, and an `Err` must be a
/// well-formed diagnostic (compile stages only, addressable span, a
/// non-empty rendering, and a caret snippet that agrees with the span).
fn assert_total(text: &str) {
    match compile(text, 4) {
        Ok(_) => {}
        Err(e) => {
            assert!(
                matches!(
                    e.stage,
                    QlStage::Lex | QlStage::Parse | QlStage::Bind | QlStage::Plan
                ),
                "compile-time error in stage {:?} for {text:?}",
                e.stage
            );
            assert!(!e.message.is_empty(), "empty message for {text:?}");
            let span = e.span;
            if span.line == 0 {
                assert_eq!(span.col, 0, "eof span with a column: {span:?} for {text:?}");
            } else {
                assert!(span.col >= 1, "0 column in {span:?} for {text:?}");
                assert!(
                    (span.line as usize) <= text.lines().count().max(1),
                    "span {span:?} past the text for {text:?}"
                );
            }
            // The rendering and the caret snippet must both be derivable
            // without panicking, whatever the input looked like.
            let rendered = e.to_string();
            assert!(rendered.contains("error at"), "odd rendering {rendered:?}");
            let _ = e.snippet(text);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(1024))]

    /// Token salads: grammatical noise over the real vocabulary.
    #[test]
    fn compile_is_total_on_token_streams(idxs in vec(0usize..VOCAB.len(), 0..24)) {
        let text = idxs.iter().map(|&i| VOCAB[i]).collect::<Vec<_>>().join(" ");
        assert_total(&text);
    }

    /// Raw bytes: whatever survives lossy UTF-8 conversion must not
    /// crash the lexer (multi-byte replacement chars, NULs, controls).
    #[test]
    fn compile_is_total_on_arbitrary_bytes(bytes in vec(0u8..=255, 0..64)) {
        let text = String::from_utf8_lossy(&bytes);
        assert_total(&text);
    }
}

/// Seeded byte mutations of *valid* statements: flips, insertions,
/// deletions, and truncations at random offsets. This is the classic
/// fuzz shape — inputs that are almost right — and it must always land
/// in a typed error or a still-valid plan.
#[test]
fn mutated_valid_statements_stay_typed() {
    let seeds: &[&str] = &[
        "SELECT TOP 5 DOMINATING",
        "EXPLAIN SELECT TOP 3 DOMINATING WHERE d1 < 0.5 AND d2 BETWEEN 1 AND 4",
        "SELECT TOP 10 DOMINATING FROM 'data.txt' SUBSPACE (d1, d3) USING IBIG WITH BINS 16",
        "SUBSCRIBE TO SELECT TOP 2 DOMINATING WHERE d4 >= 3 WITH WINDOW 100, FALLBACK 0.5",
        "SELECT TOP 7 DOMINATING WHERE d1 = 2 * 3 - 1 USING UBB WITH THREADS 2",
    ];
    let mut rng = StdRng::seed_from_u64(0x7d_51);
    for &base in seeds {
        compile(base, 4).expect("fuzz seeds must be valid statements");
        for _ in 0..400 {
            let mut bytes = base.as_bytes().to_vec();
            for _ in 0..rng.gen_range(1..4) {
                if bytes.is_empty() {
                    break;
                }
                let at = rng.gen_range(0..bytes.len());
                match rng.gen_range(0..4u8) {
                    0 => bytes[at] = rng.gen::<u8>(),
                    1 => bytes.insert(at, rng.gen::<u8>()),
                    2 => {
                        bytes.remove(at);
                    }
                    _ => bytes.truncate(at),
                }
            }
            let text = String::from_utf8_lossy(&bytes);
            assert_total(&text);
        }
    }
}

/// The golden diagnostics: statement/rendering pairs from
/// `tests/golden_diagnostics.txt`, compared verbatim against `Display`.
#[test]
fn golden_diagnostics_render_exactly() {
    let raw = include_str!("golden_diagnostics.txt");
    let entries: Vec<(&str, &str)> = {
        let mut lines = raw
            .lines()
            .filter(|l| !l.trim_start().starts_with('#') && !l.trim().is_empty());
        let mut out = Vec::new();
        while let Some(stmt) = lines.next() {
            let want = lines
                .next()
                .unwrap_or_else(|| panic!("golden file: statement {stmt:?} has no diagnostic"));
            out.push((stmt, want));
        }
        out
    };
    assert_eq!(
        entries.len(),
        12,
        "the golden file pins exactly twelve diagnostics"
    );
    let mut stages_seen = Vec::new();
    for (stmt, want) in entries {
        let err = compile(stmt, 4)
            .err()
            .unwrap_or_else(|| panic!("golden statement compiles cleanly: {stmt:?}"));
        assert_eq!(
            err.to_string(),
            want,
            "diagnostic drifted for {stmt:?} (update code and golden file together)"
        );
        if !stages_seen.contains(&err.stage) {
            stages_seen.push(err.stage);
        }
    }
    // The twelve must keep covering every compile stage.
    for stage in [QlStage::Lex, QlStage::Parse, QlStage::Bind, QlStage::Plan] {
        assert!(
            stages_seen.contains(&stage),
            "no golden diagnostic for {stage:?}"
        );
    }
}
