//! Multi-process sharded top-k dominating cluster.
//!
//! This crate turns the partition-parallel identity proven in
//! `tkd_core::cluster` — `score(o) = Σⱼ partialⱼ(o)` for any row
//! partition — into a process topology: a [`Coordinator`] that owns the
//! routing table and candidate queue, and N shard [`Worker`] processes
//! that each host one or more id-range shards loaded from seq-stamped
//! snapshot files (`shard-{s}.seq{n}.tkd`).
//!
//! Everything rides the v4 byte protocol's v5 cluster plane (see
//! `docs/WIRE_PROTOCOL.md`): queries fan out as two-phase
//! `shard_query` frames with budgeted τ broadcasts, updates route by
//! id through a single-writer path that only acks after an atomic
//! snapshot rewrite, and shards move between workers by snapshot
//! handoff. Worker failure is detected by a frame deadline and repaired
//! by re-assigning the dead worker's snapshots to survivors — the
//! filename seq is the commit arbiter for any in-doubt batch.
//!
//! The non-negotiable invariant, pinned by `tests/cluster_parity.rs`:
//! cluster answers are **bit-identical** (entries, scores, tie order)
//! to the in-process engines, for every shard count.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::path::{Path, PathBuf};
use tkd_serve::ServeError;

pub mod coordinator;
pub mod worker;

pub use coordinator::{ClusterConfig, ClusterStats, Coordinator};
pub use worker::{Worker, WorkerConfig};

/// Parse the commit seq out of a `shard-{s}.seq{n}.tkd` snapshot path.
///
/// The stamp is load-bearing: a worker only acks an update after the
/// stamped rewrite, so the newest parseable file under the handoff
/// directory *is* the shard's committed state. Returns `None` for
/// paths without a `.seq{n}.tkd` suffix.
pub fn seq_from_path(path: &Path) -> Option<u64> {
    let name = path.file_name()?.to_str()?;
    let stem = name.strip_suffix(".tkd")?;
    let at = stem.rfind(".seq")?;
    stem[at + 4..].parse().ok()
}

/// Find the newest committed snapshot for `shard` under `dir`:
/// the highest `.seq{n}.` stamp among `shard-{shard}.seq*.tkd` files.
pub fn newest_snapshot(dir: &Path, shard: u64) -> Option<(u64, PathBuf)> {
    let prefix = format!("shard-{shard}.seq");
    let mut best: Option<(u64, PathBuf)> = None;
    for entry in std::fs::read_dir(dir).ok()? {
        let path = entry.ok()?.path();
        let stamped = path
            .file_name()
            .and_then(|n| n.to_str())
            .is_some_and(|n| n.starts_with(&prefix));
        if !stamped {
            continue;
        }
        if let Some(seq) = seq_from_path(&path) {
            if best.as_ref().is_none_or(|&(b, _)| seq > b) {
                best = Some((seq, path));
            }
        }
    }
    best
}

/// Everything that can go wrong at the cluster layer.
#[derive(Debug)]
pub enum ClusterError {
    /// A worker exchange failed (transport error or typed rejection).
    Worker(ServeError),
    /// An update op failed validation on the coordinator's mirror; the
    /// valid prefix stayed applied, like `DynamicEngine::apply_all`.
    Rejected {
        /// Index of the first rejected op in the submitted batch.
        index: u64,
        /// The mirror's rejection message.
        message: String,
    },
    /// No live worker remains to host a shard or answer a query.
    NoWorkers,
    /// A worker answered with the wrong frame or inconsistent contents.
    Protocol(String),
    /// A snapshot could not be written, found, or loaded.
    Store(String),
}

impl fmt::Display for ClusterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClusterError::Worker(e) => write!(f, "worker exchange failed: {e}"),
            ClusterError::Rejected { index, message } => {
                write!(f, "update op {index} rejected: {message}")
            }
            ClusterError::NoWorkers => write!(f, "no live workers remain"),
            ClusterError::Protocol(msg) => write!(f, "cluster protocol violation: {msg}"),
            ClusterError::Store(msg) => write!(f, "shard snapshot store: {msg}"),
        }
    }
}

impl std::error::Error for ClusterError {}

impl From<ServeError> for ClusterError {
    fn from(e: ServeError) -> ClusterError {
        ClusterError::Worker(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seq_parses_only_stamped_paths() {
        assert_eq!(seq_from_path(Path::new("/x/shard-0.seq0.tkd")), Some(0));
        assert_eq!(seq_from_path(Path::new("shard-12.seq34.tkd")), Some(34));
        // rfind: a shard label containing ".seq" still parses the stamp.
        assert_eq!(seq_from_path(Path::new("shard-0.seq1.seq2.tkd")), Some(2));
        assert_eq!(seq_from_path(Path::new("shard-0.tkd")), None);
        assert_eq!(seq_from_path(Path::new("shard-0.seqx.tkd")), None);
        assert_eq!(seq_from_path(Path::new("shard-0.seq1.bak")), None);
    }

    #[test]
    fn newest_snapshot_picks_the_highest_stamp_per_shard() {
        let dir = std::env::temp_dir().join(format!("tkd-cluster-newest-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        for name in [
            "shard-0.seq0.tkd",
            "shard-0.seq2.tkd",
            "shard-0.seq10.tkd",
            "shard-1.seq7.tkd",
            "shard-10.seq99.tkd", // prefix `shard-1` must not claim this
            "shard-0.seqjunk.tkd",
            "notes.txt",
        ] {
            std::fs::write(dir.join(name), b"x").unwrap();
        }
        let (seq, path) = newest_snapshot(&dir, 0).unwrap();
        assert_eq!(seq, 10);
        assert_eq!(path, dir.join("shard-0.seq10.tkd"));
        let (seq, _) = newest_snapshot(&dir, 1).unwrap();
        assert_eq!(seq, 7);
        assert!(newest_snapshot(&dir, 2).is_none());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
