//! The cluster coordinator: metadata authority, query planner, and the
//! only writer.
//!
//! The coordinator owns a full [`DynamicEngine`] mirror of the logical
//! dataset — that is where the candidate queue, MaxScores, and update
//! validation come from — but **scores come only from the workers**:
//! every query fans value-based candidate chunks out to the shard
//! workers, sums their per-shard answers, and drives a
//! [`ClusterReplay`] in queue order so entries, scores, and tie order
//! are bit-identical to the in-process engines (see
//! `tkd_core::cluster` for the proof obligations, and
//! `tests/cluster_parity.rs` for the pin).
//!
//! # Failure model
//!
//! The per-frame timeout on each worker connection is the failure
//! detector. When a call fails at the transport level, the worker is
//! marked dead and every shard it hosted is re-assigned to a surviving
//! worker from the newest committed snapshot on the shared handoff
//! directory, replaying any acked-but-newer batches from the
//! coordinator's log. Queries are stateless on the workers, so a failed
//! query is simply retried after repair — the retried answer is the
//! same bit-identical result. An in-doubt update batch (sent, no ack)
//! is resolved by the seq-stamped snapshot the worker did or did not
//! commit: the filename is the arbiter.

use crate::worker::shard_options;
use crate::{newest_snapshot, ClusterError};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::net::SocketAddr;
use std::path::PathBuf;
use std::time::Duration;
use tkd_core::cluster::{empty_replay, shard_rows, ClusterReplay, Outcome};
use tkd_core::{Algorithm, DynamicEngine, TkdResult, UpdateOp};
use tkd_model::Dataset;
use tkd_serve::{
    Client, ClusterRequest, ClusterResponse, ReplayBatch, ServeError, ShardPhase, ShardQuery,
    ShardUpdate, WireCandidate,
};
use tkd_store::{ClusterManifest, ShardEntry};

/// Coordinator tuning.
#[derive(Clone, Debug)]
pub struct ClusterConfig {
    /// Shared snapshot/handoff directory (all workers must see it).
    pub dir: PathBuf,
    /// Candidates per `shard_query` frame. Smaller chunks tighten τ
    /// faster (more pruning) at the cost of more frames.
    pub chunk: usize,
    /// Per-frame deadline on worker connections — the failure detector.
    pub timeout: Duration,
}

impl ClusterConfig {
    /// Defaults with an explicit handoff directory.
    pub fn new(dir: impl Into<PathBuf>) -> ClusterConfig {
        ClusterConfig {
            dir: dir.into(),
            chunk: 16,
            timeout: Duration::from_secs(10),
        }
    }
}

/// Wire/merge counters for one coordinator — the protocol-overhead side
/// of `BENCH_10`.
#[derive(Clone, Copy, Debug, Default)]
pub struct ClusterStats {
    /// Cluster-plane request frames sent (both phases, updates, control).
    pub frames: u64,
    /// τ broadcasts performed (one round = one announce to every query
    /// worker).
    pub tau_rounds: u64,
    /// Candidate payloads shipped across all `shard_query` frames.
    pub candidates_shipped: u64,
    /// Worker failures repaired by snapshot re-assignment.
    pub repairs: u64,
}

struct WorkerLink {
    addr: SocketAddr,
    client: Option<Client>,
    dead: bool,
}

struct ShardMeta {
    worker: usize,
    seq: u64,
    path: PathBuf,
    live: u64,
    /// Every routed batch `(seq, local ops)` in order — the replay log
    /// for snapshot re-assignment.
    log: Vec<(u64, Vec<UpdateOp>)>,
    /// Next local stable id the shard engine will allocate. Local
    /// allocation is deterministic (monotone, never reused), so the
    /// coordinator predicts insert ids at send time and treats the
    /// ack's `inserted` list as a drift tripwire, not a binding source.
    next_local: u32,
}

/// Why a query attempt stopped: a dead worker (repair and retry) or a
/// non-retryable error.
enum Retry {
    Dead(usize),
    Fatal(ClusterError),
}

/// The coordinator. One per cluster; the single writer.
pub struct Coordinator {
    mirror: DynamicEngine,
    /// global stable id -> (shard, local stable id on that shard).
    route: HashMap<u32, (u64, u32)>,
    shards: Vec<ShardMeta>,
    workers: Vec<WorkerLink>,
    cfg: ClusterConfig,
    /// Wire counters, reset at the caller's discretion.
    pub stats: ClusterStats,
}

fn is_transport(e: &ServeError) -> bool {
    !matches!(
        e,
        ServeError::Overloaded { .. }
            | ServeError::Timeout { .. }
            | ServeError::ShuttingDown
            | ServeError::Rejected { .. }
            | ServeError::BadRequest { .. }
    )
}

impl Coordinator {
    /// Seed a cluster over `workers` from a dataset: split rows into
    /// `shards` contiguous ranges, commit each range as
    /// `shard-S.seq0.tkd` under the config's directory, and assign them
    /// round-robin. Global stable ids `0..n` map to `(shard, local id)`
    /// positionally, exactly like [`shard_rows`].
    ///
    /// # Errors
    /// [`ClusterError::NoWorkers`] without workers; store or worker
    /// errors if seeding snapshots cannot be written or assigned.
    pub fn seed(
        ds: &Dataset,
        shards: usize,
        workers: &[SocketAddr],
        cfg: ClusterConfig,
    ) -> Result<Coordinator, ClusterError> {
        if workers.is_empty() {
            return Err(ClusterError::NoWorkers);
        }
        std::fs::create_dir_all(&cfg.dir)
            .map_err(|e| ClusterError::Store(format!("handoff dir: {e}")))?;
        let shard_count = shards.max(1);
        let n = ds.len();
        let mut metas = Vec::with_capacity(shard_count);
        let mut route = HashMap::new();
        for j in 0..shard_count {
            let (lo, hi) = (j * n / shard_count, (j + 1) * n / shard_count);
            let sub = shard_rows(ds, lo, hi);
            let mut engine = DynamicEngine::with_options(sub, shard_options());
            let path = cfg.dir.join(format!("shard-{j}.seq0.tkd"));
            tkd_store::save_engine(&path, &mut engine)
                .map_err(|e| ClusterError::Store(format!("seed shard {j}: {e}")))?;
            for i in lo..hi {
                route.insert(i as u32, (j as u64, (i - lo) as u32));
            }
            metas.push(ShardMeta {
                worker: j % workers.len(),
                seq: 0,
                path,
                live: (hi - lo) as u64,
                log: Vec::new(),
                next_local: (hi - lo) as u32,
            });
        }
        let mut coord = Coordinator {
            mirror: DynamicEngine::with_options(ds.clone(), shard_options()),
            route,
            shards: metas,
            workers: workers
                .iter()
                .map(|&addr| WorkerLink {
                    addr,
                    client: None,
                    dead: false,
                })
                .collect(),
            cfg,
            stats: ClusterStats::default(),
        };
        for j in 0..shard_count {
            let (w, path, live) = {
                let m = &coord.shards[j];
                (m.worker, m.path.display().to_string(), m.live)
            };
            match coord.call(
                w,
                &ClusterRequest::Assign {
                    shard: j as u64,
                    path,
                    replay: Vec::new(),
                },
            ) {
                Ok(ClusterResponse::AssignAck { shard, live: got }) => {
                    if shard != j as u64 || got != live {
                        return Err(ClusterError::Protocol(format!(
                            "seed assign of shard {j} acked shard {shard} with {got} live (expected {live})"
                        )));
                    }
                }
                Ok(other) => {
                    return Err(ClusterError::Protocol(format!(
                        "seed assign answered {other:?}"
                    )))
                }
                Err(e) => return Err(ClusterError::Worker(e)),
            }
        }
        coord.write_manifest()?;
        Ok(coord)
    }

    /// Live objects in the cluster (mirror view).
    pub fn len(&self) -> usize {
        self.mirror.len()
    }

    /// Is the cluster empty?
    pub fn is_empty(&self) -> bool {
        self.mirror.is_empty()
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Which worker currently hosts `shard`.
    pub fn worker_of(&self, shard: u64) -> usize {
        self.shards[shard as usize].worker
    }

    /// Workers not marked dead.
    pub fn live_workers(&self) -> usize {
        self.workers.iter().filter(|w| !w.dead).count()
    }

    /// Where this cluster's shard manifest lives.
    pub fn manifest_path(&self) -> PathBuf {
        self.cfg.dir.join("cluster.manifest")
    }

    /// Rewrite the shard manifest to match the coordinator's committed
    /// view — called after every topology or seq change, so the
    /// directory is always self-describing.
    fn write_manifest(&self) -> Result<(), ClusterError> {
        let manifest = ClusterManifest {
            shards: self
                .shards
                .iter()
                .enumerate()
                .map(|(s, m)| ShardEntry {
                    shard: s as u64,
                    seq: m.seq,
                    live: m.live,
                    path: m.path.file_name().map_or_else(
                        || m.path.display().to_string(),
                        |n| n.to_string_lossy().into_owned(),
                    ),
                })
                .collect(),
        };
        manifest
            .save(self.manifest_path())
            .map_err(|e| ClusterError::Store(format!("manifest: {e}")))?;
        Ok(())
    }

    fn connect(&mut self, w: usize) -> Result<(), ServeError> {
        if self.workers[w].client.is_none() {
            let link = &mut self.workers[w];
            match Client::connect_with(link.addr, self.cfg.timeout) {
                Ok(c) => link.client = Some(c),
                Err(e) => {
                    link.dead = true;
                    return Err(e);
                }
            }
        }
        Ok(())
    }

    /// One cluster-plane exchange with worker `w`. Transport-level
    /// failures mark the worker dead (the caller repairs); typed worker
    /// rejections pass through with the worker still considered alive.
    fn call(&mut self, w: usize, req: &ClusterRequest) -> Result<ClusterResponse, ServeError> {
        if self.workers[w].dead {
            return Err(ServeError::Io(format!(
                "worker {w} ({}) is marked dead",
                self.workers[w].addr
            )));
        }
        self.connect(w)?;
        self.stats.frames += 1;
        let client = self.workers[w].client.as_mut().expect("connected above");
        match client.cluster_call(req) {
            Ok(resp) => Ok(resp),
            Err(e) => {
                if is_transport(&e) {
                    self.workers[w].dead = true;
                    self.workers[w].client = None;
                }
                Err(e)
            }
        }
    }

    fn cluster(&mut self, w: usize, req: &ClusterRequest) -> Result<ClusterResponse, Retry> {
        self.call(w, req).map_err(|e| {
            if self.workers[w].dead {
                Retry::Dead(w)
            } else {
                Retry::Fatal(ClusterError::Worker(e))
            }
        })
    }

    /// Pick a live worker, preferring one other than `not`.
    fn pick_live(&self, not: usize) -> Result<usize, ClusterError> {
        let n = self.workers.len();
        (1..=n)
            .map(|d| (not + d) % n)
            .find(|&w| !self.workers[w].dead)
            .ok_or(ClusterError::NoWorkers)
    }

    /// Re-host `shard` on a surviving worker from the newest committed
    /// snapshot, replaying logged batches the snapshot predates. Also
    /// resolves an in-doubt batch: if the dying worker committed it, the
    /// seq-stamped file proves it and the log entry is treated as acked.
    fn reassign(&mut self, shard: u64) -> Result<(), ClusterError> {
        let (disk_seq, disk_path) = newest_snapshot(&self.cfg.dir, shard).ok_or_else(|| {
            ClusterError::Store(format!(
                "no committed snapshot for shard {shard} under {}",
                self.cfg.dir.display()
            ))
        })?;
        let target_seq = self.shards[shard as usize]
            .log
            .last()
            .map_or(disk_seq, |&(s, _)| s.max(disk_seq));
        let replay: Vec<ReplayBatch> = self.shards[shard as usize]
            .log
            .iter()
            .filter(|&&(s, _)| s > disk_seq)
            .map(|(s, ops)| ReplayBatch {
                seq: *s,
                ops: ops.clone(),
            })
            .collect();
        let mut from = self.shards[shard as usize].worker;
        loop {
            let w = self.pick_live(from)?;
            match self.call(
                w,
                &ClusterRequest::Assign {
                    shard,
                    path: disk_path.display().to_string(),
                    replay: replay.clone(),
                },
            ) {
                Ok(ClusterResponse::AssignAck { live, .. }) => {
                    let meta = &mut self.shards[shard as usize];
                    meta.worker = w;
                    meta.seq = target_seq;
                    meta.live = live;
                    meta.path = if target_seq == disk_seq {
                        disk_path
                    } else {
                        self.cfg
                            .dir
                            .join(format!("shard-{shard}.seq{target_seq}.tkd"))
                    };
                    return self.write_manifest();
                }
                Ok(other) => {
                    return Err(ClusterError::Protocol(format!(
                        "re-assign of shard {shard} answered {other:?}"
                    )))
                }
                Err(e) if self.workers[w].dead => {
                    // That worker died too; keep walking the ring.
                    from = w;
                    let _ = e;
                }
                Err(e) => return Err(ClusterError::Worker(e)),
            }
        }
    }

    /// Repair a dead worker: every shard it hosted is re-assigned from
    /// its newest committed snapshot.
    fn repair_worker(&mut self, w: usize) -> Result<(), ClusterError> {
        self.stats.repairs += 1;
        self.workers[w].dead = true;
        self.workers[w].client = None;
        let hosted: Vec<u64> = (0..self.shards.len() as u64)
            .filter(|&s| self.shards[s as usize].worker == w)
            .collect();
        for shard in hosted {
            self.reassign(shard)?;
        }
        Ok(())
    }

    /// Move `shard` to worker `to` via snapshot handoff: the current
    /// host commits and releases the shard, then `to` loads it. A death
    /// on either side falls back to snapshot re-assignment, so the
    /// shard is never lost mid-move.
    ///
    /// # Errors
    /// [`ClusterError::NoWorkers`] when no live worker can take the
    /// shard; typed worker/protocol errors otherwise.
    pub fn handoff(&mut self, shard: u64, to: usize) -> Result<(), ClusterError> {
        assert!((shard as usize) < self.shards.len(), "unknown shard");
        assert!(to < self.workers.len(), "unknown worker");
        let from = self.shards[shard as usize].worker;
        if from == to {
            return Ok(());
        }
        match self.call(from, &ClusterRequest::Handoff { shard }) {
            Ok(ClusterResponse::HandoffAck { path, seq }) => {
                if seq != self.shards[shard as usize].seq {
                    return Err(ClusterError::Protocol(format!(
                        "handoff of shard {shard} acked seq {seq}, coordinator has {}",
                        self.shards[shard as usize].seq
                    )));
                }
                self.shards[shard as usize].path = PathBuf::from(path);
            }
            Ok(other) => {
                return Err(ClusterError::Protocol(format!(
                    "handoff answered {other:?}"
                )))
            }
            Err(_) if self.workers[from].dead => return self.reassign(shard),
            Err(e) => return Err(ClusterError::Worker(e)),
        }
        // The shard is now hosted nowhere; land it on `to`, or anywhere
        // live if `to` dies under us.
        let (path, live) = {
            let m = &self.shards[shard as usize];
            (m.path.display().to_string(), m.live)
        };
        match self.call(
            to,
            &ClusterRequest::Assign {
                shard,
                path,
                replay: Vec::new(),
            },
        ) {
            Ok(ClusterResponse::AssignAck { live: got, .. }) => {
                if got != live {
                    return Err(ClusterError::Protocol(format!(
                        "handoff re-host of shard {shard} reports {got} live, expected {live}"
                    )));
                }
                self.shards[shard as usize].worker = to;
                self.write_manifest()
            }
            Ok(other) => Err(ClusterError::Protocol(format!(
                "handoff assign answered {other:?}"
            ))),
            Err(_) if self.workers[to].dead => self.reassign(shard),
            Err(e) => Err(ClusterError::Worker(e)),
        }
    }

    /// Apply an update batch through the single-writer path: validate on
    /// the mirror, route each op to its shard by id, and commit each
    /// per-shard batch with a strictly increasing seq and an atomic
    /// snapshot rewrite on the worker. A worker death mid-batch is
    /// repaired in place (the seq-stamped snapshot resolves whether the
    /// in-doubt batch committed), so a successful return means every
    /// shard holds exactly the mirrored state.
    ///
    /// # Errors
    /// [`ClusterError::Rejected`] if an op fails mirror validation (the
    /// valid prefix stays applied, like `apply_all`); worker/store
    /// errors if the cluster cannot be brought back in sync.
    pub fn update(&mut self, ops: &[UpdateOp]) -> Result<(), ClusterError> {
        let report = self.mirror.apply_ops(ops);
        let mut inserted = report.inserted_ids.iter().copied();
        let shard_count = self.shards.len() as u64;
        let mut routed: BTreeMap<u64, Vec<UpdateOp>> = BTreeMap::new();
        let mut predicted: BTreeMap<u64, Vec<u64>> = BTreeMap::new();
        for op in &ops[..report.applied] {
            match op {
                UpdateOp::Insert(_) | UpdateOp::InsertLabeled(_, _) => {
                    let g = inserted.next().expect("one id per applied insert");
                    let shard = u64::from(g) % shard_count;
                    // Bind the route immediately from the predicted local
                    // id, so later ops in this very batch can target it.
                    let local = self.shards[shard as usize].next_local;
                    self.shards[shard as usize].next_local += 1;
                    self.route.insert(g, (shard, local));
                    predicted.entry(shard).or_default().push(u64::from(local));
                    routed.entry(shard).or_default().push(op.clone());
                }
                UpdateOp::Delete(g) => {
                    let (shard, local) = self
                        .route
                        .remove(g)
                        .unwrap_or_else(|| panic!("mirror applied delete of unrouted id {g}"));
                    routed
                        .entry(shard)
                        .or_default()
                        .push(UpdateOp::Delete(local));
                }
                UpdateOp::Set(g, dim, v) => {
                    let &(shard, local) = self
                        .route
                        .get(g)
                        .unwrap_or_else(|| panic!("mirror applied set of unrouted id {g}"));
                    routed
                        .entry(shard)
                        .or_default()
                        .push(UpdateOp::Set(local, *dim, *v));
                }
            }
        }
        for (shard, local_ops) in routed {
            let seq = self.shards[shard as usize].seq + 1;
            self.shards[shard as usize]
                .log
                .push((seq, local_ops.clone()));
            let w = self.shards[shard as usize].worker;
            match self.call(
                w,
                &ClusterRequest::ShardUpdate(ShardUpdate {
                    shard,
                    seq,
                    ops: local_ops,
                }),
            ) {
                Ok(ClusterResponse::ShardUpdateAck(ack)) => {
                    if ack.seq != seq {
                        return Err(ClusterError::Protocol(format!(
                            "shard {shard} acked seq {}, expected {seq}",
                            ack.seq
                        )));
                    }
                    let expected = predicted.get(&shard).map_or(&[][..], Vec::as_slice);
                    if ack.inserted != expected {
                        return Err(ClusterError::Protocol(format!(
                            "shard {shard} allocated inserts {:?}, coordinator predicted {:?}",
                            ack.inserted, expected
                        )));
                    }
                    let meta = &mut self.shards[shard as usize];
                    meta.seq = seq;
                    meta.live = ack.live;
                    meta.path = PathBuf::from(&ack.path);
                }
                Ok(other) => {
                    return Err(ClusterError::Protocol(format!(
                        "shard update answered {other:?}"
                    )))
                }
                Err(_) if self.workers[w].dead => {
                    // In-doubt batch: repair re-hosts the shard from the
                    // newest snapshot (which proves whether the batch
                    // committed) and replays it if it did not.
                    self.repair_worker(w)?;
                }
                Err(e) => return Err(ClusterError::Worker(e)),
            }
        }
        self.write_manifest()?;
        if let Some((i, e)) = report.error {
            return Err(ClusterError::Rejected {
                index: i as u64,
                message: e.to_string(),
            });
        }
        Ok(())
    }

    /// Answer a top-k dominating query across the cluster, bit-identical
    /// to the in-process engines. Worker deaths mid-query are repaired
    /// and the query retried (it is read-only on the workers), bounded
    /// by the worker count.
    ///
    /// # Errors
    /// [`ClusterError::NoWorkers`] once every worker has died; typed
    /// worker/protocol errors otherwise.
    pub fn query(&mut self, k: usize, algorithm: Algorithm) -> Result<TkdResult, ClusterError> {
        let mut attempts = self.workers.len() + 1;
        loop {
            match self.try_query(k, algorithm) {
                Ok(r) => return Ok(r),
                Err(Retry::Fatal(e)) => return Err(e),
                Err(Retry::Dead(w)) => {
                    attempts -= 1;
                    if attempts == 0 {
                        return Err(ClusterError::NoWorkers);
                    }
                    self.repair_worker(w)?;
                }
            }
        }
    }

    fn try_query(&mut self, k: usize, algorithm: Algorithm) -> Result<TkdResult, Retry> {
        let queue = self.mirror.maintained_queue();
        if k == 0 || queue.is_empty() {
            return Ok(empty_replay(queue.len()));
        }
        let dims = self.mirror.dims();
        let active: Vec<u64> = (0..self.shards.len() as u64)
            .filter(|&s| self.shards[s as usize].live > 0)
            .collect();
        let mut replay = ClusterReplay::new(k);
        let mut announced: Option<u64> = None;
        let chunk_size = self.cfg.chunk.max(1);
        let mut t = 0;
        'queue: while t < queue.len() {
            let end = (t + chunk_size).min(queue.len());
            let chunk = &queue[t..end];
            // τ at chunk start. Scoring a whole chunk against one τ is
            // exact: a candidate the sequential driver would have H2-
            // pruned under a tighter τ scores ≤ τ, so its offer is a
            // no-op either way — only prune counters can differ.
            let tau = replay.tau().map(|x| x as u64);
            if let Some(tv) = tau {
                if announced != Some(tv) {
                    self.stats.tau_rounds += 1;
                    let ws: BTreeSet<usize> = active
                        .iter()
                        .map(|&s| self.shards[s as usize].worker)
                        .collect();
                    for w in ws {
                        match self.cluster(w, &ClusterRequest::TauUpdate { tau: tv })? {
                            ClusterResponse::TauAck { tau: echoed } if echoed == tv => {}
                            other => {
                                return Err(Retry::Fatal(ClusterError::Protocol(format!(
                                    "tau update answered {other:?}"
                                ))))
                            }
                        }
                    }
                    announced = Some(tv);
                }
            }
            let values: Vec<Vec<Option<f64>>> = chunk
                .iter()
                .map(|&(o, _)| {
                    (0..dims)
                        .map(|d| self.mirror.value(o, d).expect("queued ids are live"))
                        .collect()
                })
                .collect();
            let homes: Vec<(u64, u32)> = chunk
                .iter()
                .map(|&(o, _)| *self.route.get(&o).expect("queued ids are routed"))
                .collect();
            // Phase 1: per-shard Heuristic-2 certificates, summed here.
            let mut sums = vec![0u64; chunk.len()];
            for &s in &active {
                let outcomes = self.shard_query(
                    s,
                    algorithm,
                    ShardPhase::Bounds,
                    tau,
                    (0..chunk.len()).collect::<Vec<_>>().as_slice(),
                    &values,
                    &homes,
                )?;
                for (i, x) in outcomes.iter().enumerate() {
                    sums[i] += x;
                }
            }
            let pruned: Vec<bool> = sums
                .iter()
                .map(|&sum| match tau {
                    None => false,
                    // BIG: Σ suffix bounds ≤ τ+1 (own bit counted once);
                    // IBIG: MaxBitScore = Σ|Q| − 1 ≤ τ.
                    Some(tv) => match algorithm {
                        Algorithm::Big => sum <= tv + 1,
                        _ => sum.saturating_sub(1) <= tv,
                    },
                })
                .collect();
            // Phase 2: exact partials for the survivors.
            let survivors: Vec<usize> = (0..chunk.len()).filter(|&i| !pruned[i]).collect();
            let mut scores = vec![0u64; chunk.len()];
            if !survivors.is_empty() {
                for &s in &active {
                    let outcomes = self.shard_query(
                        s,
                        algorithm,
                        ShardPhase::Partials,
                        tau,
                        &survivors,
                        &values,
                        &homes,
                    )?;
                    for (slot, &i) in survivors.iter().enumerate() {
                        scores[i] += outcomes[slot];
                    }
                }
            }
            // Replay in queue order with the *evolving* top-k: the H1
            // position is exact even when it lands mid-chunk.
            for (i, &(o, max_score)) in chunk.iter().enumerate() {
                if replay.h1_prunes(max_score) {
                    replay.terminate(queue.len() - (t + i));
                    break 'queue;
                }
                if pruned[i] {
                    replay.absorb(o, Outcome::PrunedBitmap);
                } else {
                    replay.absorb(o, Outcome::Score(scores[i] as usize));
                }
            }
            t = end;
        }
        Ok(replay.finish())
    }

    /// One `shard_query` frame: candidates `picks` (indices into
    /// `values`/`homes`) against shard `s`.
    #[allow(clippy::too_many_arguments)]
    fn shard_query(
        &mut self,
        s: u64,
        algorithm: Algorithm,
        phase: ShardPhase,
        tau: Option<u64>,
        picks: &[usize],
        values: &[Vec<Option<f64>>],
        homes: &[(u64, u32)],
    ) -> Result<Vec<u64>, Retry> {
        let candidates: Vec<WireCandidate> = picks
            .iter()
            .map(|&i| WireCandidate {
                values: values[i].clone(),
                member: (homes[i].0 == s).then_some(u64::from(homes[i].1)),
            })
            .collect();
        self.stats.candidates_shipped += candidates.len() as u64;
        let w = self.shards[s as usize].worker;
        match self.cluster(
            w,
            &ClusterRequest::ShardQuery(ShardQuery {
                shard: s,
                algorithm,
                phase,
                tau,
                candidates,
            }),
        )? {
            ClusterResponse::ShardOutcomes(v) if v.len() == picks.len() => Ok(v),
            other => Err(Retry::Fatal(ClusterError::Protocol(format!(
                "shard query answered {other:?}"
            )))),
        }
    }
}
