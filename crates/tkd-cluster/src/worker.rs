//! The shard-worker process: hosts one or more shard engines, answers
//! cluster-plane frames, and commits every update batch to an atomic,
//! seq-stamped snapshot before acking.
//!
//! A worker is deliberately dumb: it never sees the candidate queue, the
//! top-k, or other shards. It scores value-based candidates against its
//! local rows ([`ShardScorer`]), applies routed update batches in strict
//! seq order, and moves whole shards by snapshot path on `handoff` /
//! `assign`. All cluster smarts (τ, pruning decisions, replay-merge,
//! failure repair) live in the [`Coordinator`](crate::Coordinator).
//!
//! # Durability contract
//!
//! A `shard_update` is acked only after the shard's new state is
//! committed to `shard-S.seqN.tkd` via an atomic tmp-file rename. The
//! filename carries the committed seq, so after a crash the newest
//! parseable snapshot *is* the shard's durable state and everything
//! newer can be replayed idempotently through `assign`.

use crate::seq_from_path;
use std::collections::HashMap;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;
use tkd_core::cluster::{ShardCandidate, ShardScorer};
use tkd_core::dynamic::{CompactionPolicy, DynamicOptions};
use tkd_core::{Algorithm, BinChoice, DynamicEngine};
use tkd_serve::cluster_wire::{
    decode_cluster_request_body, encode_cluster_response, ClusterRequest, ClusterResponse,
    ShardPhase, ShardQuery, ShardUpdate, ShardUpdateAck, WireCandidate,
};
use tkd_serve::protocol::{
    read_frame, write_frame_bytes, ErrorFrame, FramePolicy, DEFAULT_MAX_FRAME, ERR_BAD_REQUEST,
    ERR_REJECTED,
};
use tkd_serve::ServeError;

/// Engine options for hosted shards: compaction never fires, so a
/// shard's state (and its snapshot bytes) is a pure function of its op
/// history — the property replay-based repair depends on.
pub(crate) fn shard_options() -> DynamicOptions {
    DynamicOptions {
        bins: BinChoice::Auto,
        policy: CompactionPolicy::never(),
    }
}

/// Tuning knobs for a [`Worker`].
#[derive(Clone, Debug)]
pub struct WorkerConfig {
    /// Per-frame read/write deadline on worker connections.
    pub io_timeout: Duration,
    /// Largest frame body the worker accepts.
    pub max_frame: u64,
}

impl Default for WorkerConfig {
    fn default() -> Self {
        WorkerConfig {
            io_timeout: Duration::from_secs(30),
            max_frame: DEFAULT_MAX_FRAME,
        }
    }
}

/// One hosted shard: its engine, the path + seq of its last committed
/// snapshot, and a lazily (re)built scorer over the current rows.
struct ShardHost {
    engine: DynamicEngine,
    path: PathBuf,
    seq: u64,
    /// `(scorer, local stable id -> dense scorer row)`, dropped on every
    /// update and rebuilt from `engine.snapshot()` on the next query.
    scorer: Option<(ShardScorer, HashMap<u32, usize>)>,
}

impl ShardHost {
    fn scorer_mut(&mut self) -> &mut (ShardScorer, HashMap<u32, usize>) {
        if self.scorer.is_none() {
            let ds = self.engine.snapshot();
            let rows: HashMap<u32, usize> = self
                .engine
                .live_ids()
                .into_iter()
                .enumerate()
                .map(|(row, sid)| (sid, row))
                .collect();
            self.scorer = Some((ShardScorer::new(ds), rows));
        }
        self.scorer.as_mut().expect("just built")
    }
}

/// Worker-global state behind one lock: hosted shards plus the session
/// τ tripwire.
#[derive(Default)]
struct WorkerState {
    shards: HashMap<u64, ShardHost>,
    /// The coordinator's last announced τ. Monotone within a query; a
    /// `bounds`-phase `shard_query` without τ starts a fresh session.
    tau: Option<u64>,
}

/// A running shard worker bound to a TCP address.
pub struct Worker {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
}

fn reject(code: u8, datum: u64, message: String) -> ClusterResponse {
    ClusterResponse::Error(ErrorFrame {
        code,
        datum,
        message,
    })
}

/// Score `candidates` against one shard for the requested phase.
fn score_candidates(
    host: &mut ShardHost,
    algorithm: Algorithm,
    phase: ShardPhase,
    candidates: &[WireCandidate],
) -> Result<Vec<u64>, ClusterResponse> {
    let dims = host.engine.dims();
    let (scorer, rows) = host.scorer_mut();
    let mut out = Vec::with_capacity(candidates.len());
    for (i, c) in candidates.iter().enumerate() {
        if c.values.len() != dims {
            return Err(reject(
                ERR_REJECTED,
                i as u64,
                format!(
                    "candidate {i} has {} dimensions, shard has {dims}",
                    c.values.len()
                ),
            ));
        }
        // A member claim the shard cannot substantiate means the
        // coordinator's route map and this shard disagree — refuse
        // rather than silently double-count the candidate's own bit.
        let member = match c.member {
            None => None,
            Some(sid) => match u32::try_from(sid).ok().and_then(|s| rows.get(&s)) {
                Some(&row) => Some(row),
                None => {
                    return Err(reject(
                        ERR_REJECTED,
                        i as u64,
                        format!("candidate {i} claims membership of unknown local id {sid}"),
                    ))
                }
            },
        };
        let cand = ShardCandidate {
            values: c.values.clone(),
            member,
        };
        let n = match (algorithm, phase) {
            (Algorithm::Big, ShardPhase::Bounds) => scorer.big_bound(&cand),
            (Algorithm::Big, ShardPhase::Partials) => scorer.big_partial(&cand),
            (_, ShardPhase::Bounds) => scorer.ibig_q_count(&cand),
            (_, ShardPhase::Partials) => scorer.ibig_partial(&cand),
        };
        out.push(n as u64);
    }
    Ok(out)
}

fn handle_shard_query(state: &mut WorkerState, q: &ShardQuery) -> ClusterResponse {
    // τ tripwire: within a query session τ only tightens. A bounds-phase
    // frame with no τ is the start of a new query and resets the session.
    match q.tau {
        Some(t) => {
            if let Some(cur) = state.tau {
                if t < cur {
                    return reject(
                        ERR_REJECTED,
                        t,
                        format!(
                            "tau went backwards: {t} after {cur} (reordered or misrouted frame)"
                        ),
                    );
                }
            }
            state.tau = Some(t);
        }
        None => {
            if matches!(q.phase, ShardPhase::Bounds) {
                state.tau = None;
            } else if state.tau.is_some() {
                return reject(
                    ERR_REJECTED,
                    0,
                    "partials phase dropped the session tau".to_string(),
                );
            }
        }
    }
    let Some(host) = state.shards.get_mut(&q.shard) else {
        return reject(ERR_REJECTED, q.shard, format!("unknown shard {}", q.shard));
    };
    match score_candidates(host, q.algorithm, q.phase, &q.candidates) {
        Ok(outcomes) => ClusterResponse::ShardOutcomes(outcomes),
        Err(e) => e,
    }
}

fn handle_assign(
    state: &mut WorkerState,
    shard: u64,
    path: &str,
    replay: &[tkd_serve::ReplayBatch],
) -> ClusterResponse {
    if state.shards.contains_key(&shard) {
        return reject(ERR_REJECTED, shard, format!("shard {shard} already hosted"));
    }
    let path = PathBuf::from(path);
    let Some(mut seq) = seq_from_path(&path) else {
        return reject(
            ERR_BAD_REQUEST,
            shard,
            format!("snapshot path {} lacks a .seqN. stamp", path.display()),
        );
    };
    let mut engine = match tkd_store::load_engine(&path) {
        Ok(e) => e,
        Err(e) => {
            return reject(
                ERR_REJECTED,
                shard,
                format!("cannot load {}: {e}", path.display()),
            )
        }
    };
    // Replay is idempotent: the filename says what is already in the
    // snapshot, so batches at or below it are skipped, and the rest must
    // form a gap-free continuation.
    let mut current = path;
    for batch in replay {
        if batch.seq <= seq {
            continue;
        }
        if batch.seq != seq + 1 {
            return reject(
                ERR_REJECTED,
                batch.seq,
                format!("replay gap: batch seq {} after committed {seq}", batch.seq),
            );
        }
        if let Err((i, e)) = engine.apply_all(&batch.ops) {
            return reject(
                ERR_REJECTED,
                i as u64,
                format!("replay batch seq {} failed at op {i}: {e}", batch.seq),
            );
        }
        seq = batch.seq;
    }
    if seq > seq_from_path(&current).expect("validated above") {
        current = snapshot_path(&current, shard, seq);
        if let Err(e) = tkd_store::save_engine(&current, &mut engine) {
            return reject(
                ERR_REJECTED,
                shard,
                format!("replayed state failed to commit: {e}"),
            );
        }
    }
    let live = engine.len() as u64;
    state.shards.insert(
        shard,
        ShardHost {
            engine,
            path: current,
            seq,
            scorer: None,
        },
    );
    ClusterResponse::AssignAck { shard, live }
}

/// Sibling snapshot path for `shard` at `seq`, in the same directory as
/// the previous snapshot (workers on one host share the handoff dir).
fn snapshot_path(prev: &std::path::Path, shard: u64, seq: u64) -> PathBuf {
    let dir = prev.parent().unwrap_or_else(|| std::path::Path::new("."));
    dir.join(format!("shard-{shard}.seq{seq}.tkd"))
}

fn handle_shard_update(state: &mut WorkerState, u: &ShardUpdate) -> ClusterResponse {
    let Some(host) = state.shards.get_mut(&u.shard) else {
        return reject(ERR_REJECTED, u.shard, format!("unknown shard {}", u.shard));
    };
    if u.seq != host.seq + 1 {
        return reject(
            ERR_REJECTED,
            u.seq,
            format!(
                "seq {} out of order: shard {} has committed {}",
                u.seq, u.shard, host.seq
            ),
        );
    }
    let report = host.engine.apply_ops(&u.ops);
    if let Some((i, e)) = &report.error {
        // The coordinator validates against its mirror first, so a
        // failing op here means the shard and the mirror have diverged.
        return reject(
            ERR_REJECTED,
            *i as u64,
            format!("op {i} failed on shard {}: {e}", u.shard),
        );
    }
    host.scorer = None;
    let new_path = snapshot_path(&host.path, u.shard, u.seq);
    if let Err(e) = tkd_store::save_engine(&new_path, &mut host.engine) {
        return reject(
            ERR_REJECTED,
            u.ops.len() as u64,
            format!("ops applied but snapshot commit failed: {e}"),
        );
    }
    // The new snapshot is durable; the predecessor is garbage.
    if new_path != host.path {
        let _ = std::fs::remove_file(&host.path);
    }
    host.path = new_path.clone();
    host.seq = u.seq;
    ClusterResponse::ShardUpdateAck(ShardUpdateAck {
        seq: u.seq,
        live: host.engine.len() as u64,
        path: new_path.display().to_string(),
        inserted: report
            .inserted_ids
            .iter()
            .map(|&id| u64::from(id))
            .collect(),
    })
}

fn handle(state: &Mutex<WorkerState>, req: &ClusterRequest) -> ClusterResponse {
    let mut state = state.lock().expect("worker state lock");
    match req {
        ClusterRequest::ShardQuery(q) => handle_shard_query(&mut state, q),
        ClusterRequest::TauUpdate { tau } => {
            if let Some(cur) = state.tau {
                if *tau < cur {
                    return reject(
                        ERR_REJECTED,
                        *tau,
                        format!("tau went backwards: {tau} after {cur}"),
                    );
                }
            }
            state.tau = Some(*tau);
            ClusterResponse::TauAck { tau: *tau }
        }
        ClusterRequest::Handoff { shard } => {
            let Some(mut host) = state.shards.remove(shard) else {
                return reject(ERR_REJECTED, *shard, format!("unknown shard {shard}"));
            };
            // The on-disk snapshot is already current (every update
            // committed before its ack); re-save defensively so the
            // handoff never ships a stale file even if that invariant is
            // disturbed by a future refactor.
            if let Err(e) = tkd_store::save_engine(&host.path, &mut host.engine) {
                let resp = reject(
                    ERR_REJECTED,
                    *shard,
                    format!("handoff snapshot commit failed: {e}"),
                );
                state.shards.insert(*shard, host);
                return resp;
            }
            ClusterResponse::HandoffAck {
                path: host.path.display().to_string(),
                seq: host.seq,
            }
        }
        ClusterRequest::Assign {
            shard,
            path,
            replay,
        } => handle_assign(&mut state, *shard, path, replay),
        ClusterRequest::ShardUpdate(u) => handle_shard_update(&mut state, u),
    }
}

fn connection_loop(
    mut stream: TcpStream,
    state: &Mutex<WorkerState>,
    stop: &AtomicBool,
    config: &WorkerConfig,
) {
    let policy = FramePolicy {
        frame_timeout: config.io_timeout,
        // A coordinator connection idles between queries; only a started
        // frame is held to the deadline.
        idle_timeout: None,
    };
    loop {
        let interrupted = || stop.load(Ordering::Acquire);
        let (kind, body) = match read_frame(&mut stream, config.max_frame, policy, &interrupted) {
            Ok(f) => f,
            Err(_) => return, // disconnect, kill, or garbage: drop the connection
        };
        let resp = match decode_cluster_request_body(kind, &body) {
            Ok(req) => handle(state, &req),
            Err(e) => reject(ERR_BAD_REQUEST, 0, e.to_string()),
        };
        if stop.load(Ordering::Acquire) {
            return; // killed mid-request: never write a late answer
        }
        let frame = match encode_cluster_response(&resp) {
            Ok(f) => f,
            Err(e) => encode_cluster_response(&reject(ERR_REJECTED, 0, e.to_string()))
                .expect("error frames encode"),
        };
        if write_frame_bytes(&mut stream, &frame, config.io_timeout).is_err() {
            return;
        }
    }
}

impl Worker {
    /// Bind `addr` (use port 0 for an ephemeral port) and serve cluster
    /// frames until [`stop`](Worker::stop) or [`kill`](Worker::kill).
    ///
    /// # Errors
    /// [`ServeError::Io`] if the listener cannot bind.
    pub fn start(addr: impl ToSocketAddrs, config: WorkerConfig) -> Result<Worker, ServeError> {
        let listener = TcpListener::bind(addr).map_err(|e| ServeError::Io(e.to_string()))?;
        let addr = listener
            .local_addr()
            .map_err(|e| ServeError::Io(e.to_string()))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| ServeError::Io(e.to_string()))?;
        let stop = Arc::new(AtomicBool::new(false));
        let state = Arc::new(Mutex::new(WorkerState::default()));
        let accept = {
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut conns: Vec<JoinHandle<()>> = Vec::new();
                while !stop.load(Ordering::Acquire) {
                    match listener.accept() {
                        Ok((stream, _)) => {
                            let _ = stream.set_nodelay(true);
                            let state = Arc::clone(&state);
                            let stop = Arc::clone(&stop);
                            let config = config.clone();
                            conns.push(std::thread::spawn(move || {
                                connection_loop(stream, &state, &stop, &config);
                            }));
                        }
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                            std::thread::sleep(Duration::from_millis(5));
                        }
                        Err(_) => break,
                    }
                    conns.retain(|h| !h.is_finished());
                }
                for h in conns {
                    let _ = h.join();
                }
            })
        };
        Ok(Worker {
            addr,
            stop,
            accept: Some(accept),
        })
    }

    /// The bound address (resolved port when started on port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Graceful stop: close the listener, let in-flight frames finish,
    /// join every connection thread.
    pub fn stop(mut self) {
        self.shutdown();
    }

    /// Abrupt failure injection for tests: in-flight requests are
    /// abandoned without an answer (the coordinator sees the connection
    /// die), exactly like a killed process.
    pub fn kill(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Release);
        // Unblock the accept loop promptly.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
    }
}

impl Drop for Worker {
    fn drop(&mut self) {
        if self.accept.is_some() {
            self.shutdown();
        }
    }
}
