//! Missing-value inference baselines for the paper's Table 4.
//!
//! §5.2 compares the incomplete-data TKD answer against the answer obtained
//! after *imputing* the missing values with GraphLab Create's factorization
//! model ("8 factors, L2 regularization on the factors, at most 50
//! iterations"). This crate reimplements that baseline from scratch:
//!
//! * [`factorize_impute`] — SGD low-rank matrix factorization with exactly
//!   those defaults ([`FactorizationConfig`]);
//! * [`mean_impute`] — the trivial per-dimension-mean imputer (sanity
//!   baseline);
//! * [`jaccard_distance`] — the result-set distance
//!   `DJ = 1 − |A∩B| / |A∪B|` that Table 4 reports.

#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tkd_model::{Dataset, ObjectId};

/// Hyper-parameters of the SGD matrix factorization, defaulting to the
/// paper's GraphLab settings (§5.2): 8 latent factors, L2 regularization,
/// at most 50 optimization passes.
#[derive(Clone, Debug)]
pub struct FactorizationConfig {
    /// Latent dimensionality.
    pub factors: usize,
    /// Maximum SGD epochs.
    pub epochs: usize,
    /// SGD step size.
    pub learning_rate: f64,
    /// L2 regularization strength on both factor matrices.
    pub l2: f64,
    /// Seed for factor initialization and entry shuffling.
    pub seed: u64,
}

impl Default for FactorizationConfig {
    fn default() -> Self {
        FactorizationConfig {
            factors: 8,
            epochs: 50,
            learning_rate: 0.08,
            l2: 0.02,
            seed: 42,
        }
    }
}

/// Impute every missing cell with a low-rank model `R ≈ μ + U·Vᵀ` fitted to
/// the observed cells by SGD; imputed values are clamped to the observed
/// range of their dimension. Returns a complete dataset (labels preserved
/// implicitly by row order).
pub fn factorize_impute(ds: &Dataset, cfg: &FactorizationConfig) -> Dataset {
    assert!(cfg.factors >= 1, "at least one latent factor");
    let n = ds.len();
    let d = ds.dims();
    let mut rng = StdRng::seed_from_u64(cfg.seed);

    // Observed per-dimension ranges; training happens on min-max normalized
    // values so the step size is scale-free (NBA-style stats span thousands
    // while MovieLens ratings span 1–5).
    let ranges: Vec<(f64, f64)> = (0..d)
        .map(|dim| {
            let mut lo = f64::INFINITY;
            let mut hi = f64::NEG_INFINITY;
            for o in ds.ids() {
                if let Some(x) = ds.value(o, dim) {
                    lo = lo.min(x);
                    hi = hi.max(x);
                }
            }
            if lo > hi {
                (0.0, 0.0)
            } else {
                (lo, hi)
            }
        })
        .collect();
    let norm = |dim: usize, v: f64| -> f64 {
        let (lo, hi) = ranges[dim];
        if hi > lo {
            (v - lo) / (hi - lo)
        } else {
            0.0
        }
    };
    let denorm = |dim: usize, v: f64| -> f64 {
        let (lo, hi) = ranges[dim];
        lo + v.clamp(0.0, 1.0) * (hi - lo)
    };

    // Observed entries (normalized) and the global mean.
    let mut entries: Vec<(usize, usize, f64)> = Vec::new();
    for o in ds.ids() {
        for (dim, v) in ds.row(o).observed() {
            entries.push((o as usize, dim, norm(dim, v)));
        }
    }
    let mu = if entries.is_empty() {
        0.0
    } else {
        entries.iter().map(|e| e.2).sum::<f64>() / entries.len() as f64
    };

    // Factor matrices, small random init.
    let f = cfg.factors;
    let scale = 0.1;
    let mut u: Vec<f64> = (0..n * f)
        .map(|_| scale * (rng.gen::<f64>() - 0.5))
        .collect();
    let mut v: Vec<f64> = (0..d * f)
        .map(|_| scale * (rng.gen::<f64>() - 0.5))
        .collect();

    for _ in 0..cfg.epochs {
        // Fisher–Yates pass order for better SGD behaviour.
        for i in (1..entries.len()).rev() {
            let j = rng.gen_range(0..=i);
            entries.swap(i, j);
        }
        for &(row, col, r) in &entries {
            let (ub, vb) = (&u[row * f..(row + 1) * f], &v[col * f..(col + 1) * f]);
            let pred = mu + dot(ub, vb);
            let err = r - pred;
            for k in 0..f {
                let (uk, vk) = (u[row * f + k], v[col * f + k]);
                u[row * f + k] += cfg.learning_rate * (err * vk - cfg.l2 * uk);
                v[col * f + k] += cfg.learning_rate * (err * uk - cfg.l2 * vk);
            }
        }
    }

    let rows: Vec<Vec<Option<f64>>> = (0..n)
        .map(|row| {
            (0..d)
                .map(|dim| {
                    Some(ds.value(row as ObjectId, dim).unwrap_or_else(|| {
                        let pred = mu + dot(&u[row * f..(row + 1) * f], &v[dim * f..(dim + 1) * f]);
                        denorm(dim, pred)
                    }))
                })
                .collect()
        })
        .collect();
    Dataset::from_rows(d, &rows).expect("imputed rows are complete")
}

#[inline]
fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Impute every missing cell with its dimension's observed mean.
pub fn mean_impute(ds: &Dataset) -> Dataset {
    let d = ds.dims();
    let means: Vec<f64> = (0..d)
        .map(|dim| {
            let vals: Vec<f64> = ds.ids().filter_map(|o| ds.value(o, dim)).collect();
            if vals.is_empty() {
                0.0
            } else {
                vals.iter().sum::<f64>() / vals.len() as f64
            }
        })
        .collect();
    let rows: Vec<Vec<Option<f64>>> = ds
        .ids()
        .map(|o| {
            (0..d)
                .map(|dim| Some(ds.value(o, dim).unwrap_or(means[dim])))
                .collect()
        })
        .collect();
    Dataset::from_rows(d, &rows).expect("imputed rows are complete")
}

/// Root-mean-square error of an imputed dataset against ground truth on the
/// cells that were missing in `incomplete` (evaluation helper).
pub fn imputation_rmse(truth: &Dataset, incomplete: &Dataset, imputed: &Dataset) -> f64 {
    let mut se = 0.0;
    let mut count = 0usize;
    for o in truth.ids() {
        for dim in 0..truth.dims() {
            if incomplete.value(o, dim).is_none() {
                if let (Some(t), Some(p)) = (truth.value(o, dim), imputed.value(o, dim)) {
                    se += (t - p).powi(2);
                    count += 1;
                }
            }
        }
    }
    if count == 0 {
        0.0
    } else {
        (se / count as f64).sqrt()
    }
}

/// The Jaccard distance `DJ = 1 − |A∩B| / |A∪B|` between two answer sets
/// (Table 4). Returns 0 for two empty sets.
pub fn jaccard_distance(a: &[ObjectId], b: &[ObjectId]) -> f64 {
    use std::collections::HashSet;
    let sa: HashSet<_> = a.iter().copied().collect();
    let sb: HashSet<_> = b.iter().copied().collect();
    let inter = sa.intersection(&sb).count();
    let union = sa.union(&sb).count();
    if union == 0 {
        0.0
    } else {
        1.0 - inter as f64 / union as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Ground-truth low-rank matrix with a MCAR mask.
    fn low_rank_pair(n: usize, d: usize, seed: u64) -> (Dataset, Dataset) {
        let mut rng = StdRng::seed_from_u64(seed);
        let rank = 2;
        let u: Vec<f64> = (0..n * rank).map(|_| rng.gen::<f64>()).collect();
        let v: Vec<f64> = (0..d * rank).map(|_| rng.gen::<f64>()).collect();
        let mut full = Vec::with_capacity(n);
        let mut masked = Vec::with_capacity(n);
        for i in 0..n {
            let mut frow = Vec::with_capacity(d);
            let mut mrow = Vec::with_capacity(d);
            for j in 0..d {
                let val = dot(&u[i * rank..(i + 1) * rank], &v[j * rank..(j + 1) * rank]) * 5.0;
                frow.push(Some(val));
                mrow.push(if rng.gen::<f64>() < 0.3 {
                    None
                } else {
                    Some(val)
                });
            }
            if mrow.iter().all(Option::is_none) {
                mrow[0] = frow[0];
            }
            full.push(frow);
            masked.push(mrow);
        }
        (
            Dataset::from_rows(d, &full).unwrap(),
            Dataset::from_rows(d, &masked).unwrap(),
        )
    }

    #[test]
    fn factorization_beats_mean_on_low_rank_data() {
        let (truth, masked) = low_rank_pair(120, 12, 7);
        let cfg = FactorizationConfig::default();
        let mf = factorize_impute(&masked, &cfg);
        let mean = mean_impute(&masked);
        let rmse_mf = imputation_rmse(&truth, &masked, &mf);
        let rmse_mean = imputation_rmse(&truth, &masked, &mean);
        assert!(
            rmse_mf < 0.7 * rmse_mean,
            "MF RMSE {rmse_mf} should clearly beat mean RMSE {rmse_mean}"
        );
    }

    #[test]
    fn imputed_datasets_are_complete() {
        let (_, masked) = low_rank_pair(40, 6, 1);
        for out in [
            factorize_impute(&masked, &FactorizationConfig::default()),
            mean_impute(&masked),
        ] {
            assert_eq!(out.len(), masked.len());
            for o in out.ids() {
                assert_eq!(
                    out.mask(o).count() as usize,
                    out.dims(),
                    "row {o} incomplete"
                );
            }
        }
    }

    #[test]
    fn observed_cells_are_preserved() {
        let (_, masked) = low_rank_pair(40, 6, 2);
        let out = factorize_impute(&masked, &FactorizationConfig::default());
        for o in masked.ids() {
            for dim in 0..masked.dims() {
                if let Some(v) = masked.value(o, dim) {
                    assert_eq!(out.value(o, dim), Some(v));
                }
            }
        }
    }

    #[test]
    fn imputation_is_deterministic() {
        let (_, masked) = low_rank_pair(30, 5, 3);
        let cfg = FactorizationConfig::default();
        let a = factorize_impute(&masked, &cfg);
        let b = factorize_impute(&masked, &cfg);
        assert_eq!(a, b);
    }

    #[test]
    fn imputed_values_respect_observed_range() {
        let (_, masked) = low_rank_pair(60, 8, 4);
        let out = factorize_impute(&masked, &FactorizationConfig::default());
        for dim in 0..masked.dims() {
            let lo = masked
                .ids()
                .filter_map(|o| masked.value(o, dim))
                .fold(f64::INFINITY, f64::min);
            let hi = masked
                .ids()
                .filter_map(|o| masked.value(o, dim))
                .fold(f64::NEG_INFINITY, f64::max);
            for o in out.ids() {
                let v = out.value(o, dim).unwrap();
                assert!(
                    v >= lo - 1e-9 && v <= hi + 1e-9,
                    "dim {dim} value {v} outside [{lo},{hi}]"
                );
            }
        }
    }

    #[test]
    fn jaccard_examples() {
        assert_eq!(jaccard_distance(&[], &[]), 0.0);
        assert_eq!(jaccard_distance(&[1, 2], &[1, 2]), 0.0);
        assert_eq!(jaccard_distance(&[1, 2], &[3, 4]), 1.0);
        // Half-overlapping k=2 sets: DJ = 1 - 1/3.
        let dj = jaccard_distance(&[1, 2], &[2, 3]);
        assert!((dj - (1.0 - 1.0 / 3.0)).abs() < 1e-12);
        // Table 4's sanity bound: sharing at least k/2 answers keeps
        // DJ below 2/3 for equal-size sets.
        let dj = jaccard_distance(&[1, 2, 3, 4], &[3, 4, 5, 6]);
        assert!(dj < 2.0 / 3.0 + 1e-12);
    }

    #[test]
    fn mean_impute_uses_dimension_means() {
        let ds =
            Dataset::from_rows(2, &[vec![Some(1.0), Some(10.0)], vec![Some(3.0), None]]).unwrap();
        let out = mean_impute(&ds);
        assert_eq!(out.value(1, 1), Some(10.0));
    }
}
