//! Quickstart: build a small incomplete dataset, run a top-k dominating
//! query with every algorithm, and inspect scores and pruning statistics.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use tkdi::model::{io, Dataset};
use tkdi::prelude::*;

fn main() {
    // Incomplete data in the paper's notation: `-` marks a missing value.
    // Six candidate laptops scored on (price, weight, battery drain) —
    // smaller is better on every dimension.
    let text = "\
        aurora,   999, 1.3, -
        basalt,  1299, 1.1, 0.8
        cobalt,   799, -,   1.1
        drifter,  999, 1.9, 1.4
        ember,    -,   1.0, 0.7
        flint,    699, 1.4, 1.2
    ";
    let ds: Dataset = io::parse_labeled(text).expect("valid dataset");

    println!(
        "{} objects, {} dimensions, missing rate {:.1}%",
        ds.len(),
        ds.dims(),
        100.0 * tkdi::model::stats::missing_rate(&ds)
    );

    // How often is each laptop dominated / dominating?
    for o in ds.ids() {
        println!(
            "  score({}) = {}",
            ds.label(o).unwrap(),
            tkdi::model::dominance::score_of(&ds, o)
        );
    }

    // The same T2D query through every algorithm of the paper.
    println!("\nT2D answers (k = 2):");
    for alg in Algorithm::ALL {
        let result: TkdResult = TkdQuery::new(2).algorithm(alg).run(&ds);
        let answer: Vec<String> = result
            .iter()
            .map(|e| format!("{} (score {})", ds.label(e.id).unwrap(), e.score))
            .collect();
        println!(
            "  {:?}: {:<40}  [pruned: H1={} H2={} H3={}, scored={}]",
            alg,
            answer.join(", "),
            result.stats.h1_pruned,
            result.stats.h2_pruned,
            result.stats.h3_pruned,
            result.stats.scored,
        );
    }

    // The paper's running example is built in:
    let fig3 = tkdi::model::fixtures::fig3_sample();
    let r = TkdQuery::new(2).run(&fig3);
    println!(
        "\nPaper Fig. 3 running example, T2D: {:?} (both score 16)",
        r.iter()
            .map(|e| fig3.label(e.id).unwrap())
            .collect::<Vec<_>>()
    );
}
