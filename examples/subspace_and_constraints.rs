//! Query variants: subspace TKD, constrained TKD, and group-by skyline on
//! incomplete data — the related-work directions the paper cites (§2),
//! implemented on top of the core algorithms.
//!
//! Scenario: laptop listings with price / weight / battery-drain /
//! noise-level attributes (smaller is better), some unmeasured.
//!
//! ```sh
//! cargo run --release --example subspace_and_constraints
//! ```

use tkdi::core::variants::{constrained_top_k, subspace_top_k};
use tkdi::data::synthetic::{generate, Distribution, SyntheticConfig};
use tkdi::prelude::*;
use tkdi::skyline::constrained::{group_by_skyline, Constraints};

const ATTRS: [&str; 4] = ["price", "weight", "battery", "noise"];

fn main() {
    let ds = generate(&SyntheticConfig {
        n: 2_000,
        dims: 4,
        cardinality: 200,
        missing_rate: 0.15,
        distribution: Distribution::AntiCorrelated, // cheap laptops are heavy…
        seed: 23,
    });
    println!(
        "{} laptops x {:?}, {:.1}% unmeasured cells\n",
        ds.len(),
        ATTRS,
        100.0 * tkdi::model::stats::missing_rate(&ds)
    );

    // Full-space TKD.
    let q = TkdQuery::new(5).algorithm(Algorithm::Big);
    let full = q.run(&ds);
    println!("top-5, all attributes:          {:?}", full.ids());

    // Subspace: a traveller who only cares about weight and battery.
    let travel = subspace_top_k(&ds, &[1, 2], &q).expect("non-empty subspace");
    println!("top-5, weight+battery only:     {:?}", travel.ids());

    // Constrained: mid-range budget (price in the middle band).
    let budget = Constraints::none(ds.dims()).with_range(0, 50.0, 120.0);
    let affordable = constrained_top_k(&ds, &budget, &q);
    println!("top-5, price in [50, 120]:      {:?}", affordable.ids());
    for e in affordable.iter() {
        assert!(budget.admits(&ds, e.id), "constraint violated");
    }

    // The three answers rank different laptops — dominance is not
    // preserved under projection or restriction.
    let overlap =
        |a: &TkdResult, b: &TkdResult| a.ids().iter().filter(|id| b.contains(**id)).count();
    println!(
        "\noverlap full∩subspace = {}, full∩constrained = {}",
        overlap(&full, &travel),
        overlap(&full, &affordable)
    );

    // Group-by skyline: best laptops per (synthetic) brand.
    let brands: Vec<u64> = ds.ids().map(|o| (o % 4) as u64).collect();
    println!("\nper-brand skylines (group-by skyline):");
    for (brand, sky) in group_by_skyline(&ds, &brands) {
        println!(
            "  brand {brand}: {:>4} undominated of {:>4}",
            sky.len(),
            brands.iter().filter(|&&b| b == brand).count()
        );
    }
    println!(
        "\nAn empty per-brand skyline is possible: incomplete-data dominance \
         can be cyclic (§3 of the paper), so every object may be dominated by \
         someone — while the TKD query still returns exactly k answers. This \
         is the paper's §1 argument for TKD over skylines, live."
    );
}
