//! Multi-user serving simulation: one [`ParallelEngine`] built over a
//! dataset, then a mixed batch of concurrent user queries (different `k`s,
//! BIG and IBIG, deterministic and randomized tie-breaks) served three
//! ways — sequentially, batched across workers, and with within-query
//! parallelism — with the answers cross-checked for exact agreement.
//!
//! ```sh
//! cargo run --release --example parallel_serving
//! ```

use std::time::Instant;
use tkdi::core::{Algorithm, EngineQuery, ParallelEngine, TieBreak, TkdQuery};
use tkdi::data::synthetic::{generate, Distribution, SyntheticConfig};

fn main() {
    let ds = generate(&SyntheticConfig {
        n: 6_000,
        dims: 6,
        cardinality: 60,
        missing_rate: 0.25,
        distribution: Distribution::Independent,
        seed: 7,
    });
    let hw = std::thread::available_parallelism().map_or(1, |p| p.get());
    println!(
        "dataset: n={} dims={} | hardware parallelism: {hw}",
        ds.len(),
        ds.dims()
    );

    // The query mix of a busy evening: many small-k lookups, a few deep
    // scans, both bitmap engines, one user who wants randomized ties.
    let batch: Vec<EngineQuery> = (0..40)
        .map(|i| {
            let k = match i % 5 {
                0 => 3,
                1 => 10,
                2 => 25,
                3 => 64,
                _ => 7,
            };
            let q = EngineQuery::new(k).algorithm(if i % 3 == 0 {
                Algorithm::Ibig
            } else {
                Algorithm::Big
            });
            if i % 11 == 0 {
                q.tie_break(TieBreak::Random(i as u64))
            } else {
                q
            }
        })
        .collect();

    // Engine build is paid once, then amortized over the whole batch.
    let t0 = Instant::now();
    let engine = ParallelEngine::builder(&ds).threads(hw.max(2)).build();
    println!(
        "engine: {} threads, {} shards, built in {:.1?}",
        engine.threads(),
        engine.shards(),
        t0.elapsed()
    );

    // 1) One query at a time, all workers cooperating on each.
    let t0 = Instant::now();
    let one_by_one: Vec<_> = batch.iter().map(|q| engine.query(q)).collect();
    let within = t0.elapsed();
    println!(
        "within-query parallelism: {} queries in {within:.1?}",
        batch.len()
    );

    // 2) The whole batch at once, worker-per-query.
    let t0 = Instant::now();
    let batched = engine.query_many(&batch);
    let across = t0.elapsed();
    println!(
        "batched (query_many):     {} queries in {across:.1?}",
        batch.len()
    );

    // 3) Reference: the plain sequential engines, one context per call.
    let t0 = Instant::now();
    let sequential: Vec<_> = batch
        .iter()
        .map(|q| {
            let mut query = TkdQuery::new(q.k).algorithm(q.algorithm);
            if let TieBreak::Random(seed) = q.tie {
                query = query.tie_break(TieBreak::Random(seed));
            }
            query.run(&ds)
        })
        .collect();
    let naive_serving = t0.elapsed();
    println!(
        "naive serving (rebuild per query): {} queries in {naive_serving:.1?}",
        batch.len()
    );

    // Every serving mode returns identical answers.
    for (i, q) in batch.iter().enumerate() {
        assert_eq!(
            one_by_one[i].scores(),
            batched[i].scores(),
            "query {i}: engine modes disagree"
        );
        assert_eq!(
            batched[i].scores(),
            sequential[i].scores(),
            "query {i}: engine disagrees with sequential {:?}",
            q.algorithm
        );
    }
    println!(
        "\nall {} answers identical across serving modes ✓",
        batch.len()
    );
    let top = &batched[0];
    println!(
        "sample answer (k={}): {:?}…",
        batch[0].k,
        top.iter()
            .take(3)
            .map(|e| (e.id, e.score))
            .collect::<Vec<_>>()
    );
    println!(
        "amortization: engine served the batch {:.1}x faster than \
         rebuild-per-query serving",
        naive_serving.as_secs_f64() / across.as_secs_f64()
    );
}
