//! Missing-data laboratory: how does the *incomplete-data* TKD answer
//! relate to the answer on (a) the complete ground truth and (b) an
//! imputed completion? And does the missingness mechanism (MCAR/MAR/NMAR)
//! matter?
//!
//! This extends the paper's Table 4 comparison (incomplete vs
//! factorization-imputed, Jaccard distance) with a ground-truth column the
//! paper could not have — we own the generator, so we can hide values from
//! a known complete dataset and check both approaches against the truth.
//!
//! ```sh
//! cargo run --release --example missing_data_lab
//! ```

use tkdi::data::missing;
use tkdi::data::synthetic::{generate, Distribution, SyntheticConfig};
use tkdi::impute::{factorize_impute, jaccard_distance, FactorizationConfig};
use tkdi::prelude::*;

fn main() {
    // Complete ground truth.
    let truth = generate(&SyntheticConfig {
        n: 4_000,
        dims: 8,
        cardinality: 100,
        missing_rate: 0.0,
        distribution: Distribution::Independent,
        seed: 99,
    });
    let k = 16;
    let ideal = TkdQuery::new(k).algorithm(Algorithm::Ubb).run(&truth).ids();

    println!(
        "ground truth: N={} d={} (complete), k={k}",
        truth.len(),
        truth.dims()
    );
    println!("\nmechanism  rate   DJ(incomplete,truth)  DJ(imputed,truth)  DJ(incomplete,imputed)");

    for (name, mech) in [
        ("MCAR", missing::mcar as fn(&Dataset, f64, u64) -> Dataset),
        ("MAR", missing::mar),
        ("NMAR", missing::nmar),
    ] {
        for rate in [0.1, 0.3] {
            let incomplete = mech(&truth, rate, 1);
            // Answer straight on incomplete data (the paper's approach).
            let a = TkdQuery::new(k)
                .algorithm(Algorithm::Ubb)
                .run(&incomplete)
                .ids();
            // Answer after matrix-factorization imputation (the baseline).
            let imputed = factorize_impute(&incomplete, &FactorizationConfig::default());
            let b = TkdQuery::new(k)
                .algorithm(Algorithm::Ubb)
                .run(&imputed)
                .ids();
            println!(
                "{name:<9}  {rate:<5}  {:<20.3}  {:<17.3}  {:.3}",
                jaccard_distance(&a, &ideal),
                jaccard_distance(&b, &ideal),
                jaccard_distance(&a, &b),
            );
        }
    }

    println!(
        "\nReading guide: the paper's Table 4 reports DJ(incomplete, imputed) \
         on NBA in 0.40–0.57 — majority overlap (DJ < 2/3) despite zero \
         imputation machinery. Under NMAR (values missing because they are \
         bad) imputation-based answers drift further from the truth, which \
         is the incomplete-data model's core argument: it assumes nothing \
         about why a value is absent."
    );
}
