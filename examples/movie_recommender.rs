//! The paper's motivating scenario (§1, Fig. 1): find the most broadly
//! preferred movies from a ratings matrix where 95% of the ratings are
//! missing — every audience only rates the movies they watched.
//!
//! Demonstrates: the MovieLens-like simulator, algorithm agreement under
//! extreme missingness, and why Heuristic 2 weakens there (the paper's
//! Fig. 18a observation).
//!
//! ```sh
//! cargo run --release --example movie_recommender
//! ```

use std::time::Instant;
use tkdi::data::simulators::movielens_like_with;
use tkdi::prelude::*;

fn main() {
    // 1,200 movies × 40 audiences, ratings 1–5, ~95% missing (stored
    // negated: smaller = better).
    let ds = movielens_like_with(1_200, 40, 7);
    println!(
        "movie ratings matrix: {} movies x {} audiences, missing rate {:.1}%",
        ds.len(),
        ds.dims(),
        100.0 * tkdi::model::stats::missing_rate(&ds)
    );

    let k = 10;
    let mut reference: Option<Vec<usize>> = None;
    for alg in Algorithm::ALL {
        let start = Instant::now();
        let r = TkdQuery::new(k).algorithm(alg).run(&ds);
        let elapsed = start.elapsed();
        match &reference {
            None => reference = Some(r.scores()),
            Some(exp) => assert_eq!(&r.scores(), exp, "algorithms must agree"),
        }
        println!(
            "  {:?}: {:>9.3?}  (H1/H2/H3 pruned {}/{}/{}, scored {})",
            alg, elapsed, r.stats.h1_pruned, r.stats.h2_pruned, r.stats.h3_pruned, r.stats.scored
        );
    }

    let r = TkdQuery::new(k).run(&ds);
    println!("\ntop-{k} most dominating movies:");
    for (rank, e) in r.iter().enumerate() {
        // Average observed (negated) rating, for intuition.
        let row = ds.row(e.id);
        let ratings: Vec<f64> = row.observed().map(|(_, v)| -v).collect();
        let avg = ratings.iter().sum::<f64>() / ratings.len() as f64;
        println!(
            "  #{:<2} movie-{:<5} dominates {:>4} movies  ({} ratings, avg {:.2}/5)",
            rank + 1,
            e.id,
            e.score,
            ratings.len(),
            avg
        );
    }

    println!(
        "\nNote: at 95% missingness MaxBitScore is loose (most objects share \
         only the missing-slot columns), so BIG's Heuristic 2 prunes little — \
         exactly the paper's Fig. 18(a) finding."
    );
}
