//! Live updates: serving top-k dominating queries while the dataset
//! churns.
//!
//! A product catalog (smaller = better on every dimension: price,
//! delivery days, defect rate) takes a stream of inserts, deletes, and
//! price corrections. The naive architecture rebuilds every index per
//! change; the [`DynamicEngine`] repairs its indexes in place and answers
//! in between, bit-identically to a rebuild. The example measures both.
//!
//! ```text
//! cargo run --release --example live_updates
//! ```

use std::time::Instant;
use tkdi::core::dynamic::{CompactionPolicy, DynamicOptions};
use tkdi::core::BinChoice;
use tkdi::data::synthetic::{generate, Distribution, SyntheticConfig};
use tkdi::prelude::*;

fn main() {
    let n = 4_000;
    let dims = 6;
    let catalog = generate(&SyntheticConfig {
        n,
        dims,
        cardinality: 64,
        missing_rate: 0.2,
        distribution: Distribution::Independent,
        seed: 7,
    });

    println!("catalog: {n} products x {dims} dimensions, 20% missing\n");

    // --- the dynamic engine ------------------------------------------------
    let t0 = Instant::now();
    let mut engine = DynamicEngine::with_options(
        catalog.clone(),
        DynamicOptions {
            bins: BinChoice::Auto,
            policy: CompactionPolicy::default(),
        },
    );
    println!("initial build:              {:>9.2?}", t0.elapsed());

    // A mixed update stream: 60% new products, 25% delistings, 15% price
    // corrections (splitmix-deterministic, no RNG dependency).
    let mut h = 0xBADC0FFEu64;
    let mut next = move || {
        h = h.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = h;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    };
    let updates = 1_000usize;
    let mut ops: Vec<UpdateOp> = Vec::with_capacity(updates);
    let mut live: Vec<ObjectId> = (0..n as ObjectId).collect();
    let mut next_id = n as ObjectId;
    for _ in 0..updates {
        let roll = next() % 100;
        if roll < 60 || live.len() < 10 {
            let row: Vec<Option<f64>> = (0..dims)
                .map(|_| {
                    if next() % 5 == 0 {
                        None
                    } else {
                        Some((next() % 64) as f64)
                    }
                })
                .collect();
            let row = if row.iter().all(Option::is_none) {
                vec![Some(1.0); dims]
            } else {
                row
            };
            ops.push(UpdateOp::Insert(row));
            live.push(next_id);
            next_id += 1;
        } else if roll < 85 {
            let pick = (next() as usize) % live.len();
            ops.push(UpdateOp::Delete(live.swap_remove(pick)));
        } else {
            let id = live[(next() as usize) % live.len()];
            ops.push(UpdateOp::Set(id, 0, Some((next() % 64) as f64)));
        }
    }

    let t1 = Instant::now();
    engine.apply_all(&ops).expect("stream is valid");
    let apply = t1.elapsed();
    let t2 = Instant::now();
    let top = engine.query(&EngineQuery::new(10)).expect("BIG supported");
    let first_query = t2.elapsed();
    println!(
        "{updates} updates applied:      {:>9.2?}  ({:.1} µs/op amortized)",
        apply,
        apply.as_secs_f64() * 1e6 / updates as f64
    );
    println!(
        "first query after batch:    {:>9.2?}  (pays the deferred queue re-sort)",
        first_query
    );
    let t3 = Instant::now();
    let again = engine.query(&EngineQuery::new(10)).expect("BIG supported");
    println!("steady-state query:         {:>9.2?}", t3.elapsed());
    assert_eq!(top.entries(), again.entries());

    // --- the rebuild-per-batch architecture it replaces --------------------
    let t4 = Instant::now();
    let snapshot = engine.snapshot();
    let reference = TkdQuery::new(10).run(&snapshot);
    let rebuild = t4.elapsed();
    println!("\nrebuild-from-scratch path:  {rebuild:>9.2?}  (what every batch used to cost)");
    println!(
        "amortized speedup vs rebuild-per-op: {:.0}x",
        rebuild.as_secs_f64() / (apply.as_secs_f64() / updates as f64)
    );

    // Same answers, bit for bit (ids translated through the live list).
    let ids = engine.live_ids();
    let translated: Vec<(ObjectId, usize)> = reference
        .iter()
        .map(|e| (ids[e.id as usize], e.score))
        .collect();
    let dynamic: Vec<(ObjectId, usize)> = top.iter().map(|e| (e.id, e.score)).collect();
    assert_eq!(dynamic, translated, "dynamic result == rebuild result");

    println!(
        "\nstate: {} live products, {} tombstones, epoch {} ({} compactions)",
        engine.len(),
        engine.tombstones(),
        engine.epoch(),
        engine.stats().compactions
    );
    println!("\ntop-10 after the stream (bit-identical to a full rebuild):");
    for (rank, e) in top.iter().enumerate() {
        let row: Vec<String> = (0..dims)
            .map(|d| match engine.value(e.id, d).expect("live id") {
                Some(v) => format!("{v:>3.0}"),
                None => "  -".into(),
            })
            .collect();
        println!(
            "{:>3}. #{:<7} dominates {:>5}   [{}]",
            rank + 1,
            e.id,
            e.score,
            row.join(" ")
        );
    }
}
