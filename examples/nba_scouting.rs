//! Scouting dominant NBA player seasons from incomplete stat lines —
//! the classical top-k dominating use case, plus the paper's §3 MFD
//! (missing flexible dominance) extension with tunable per-stat weights.
//!
//! ```sh
//! cargo run --release --example nba_scouting
//! ```

use tkdi::core::mfd::{mfd_top_k, MfdConfig};
use tkdi::data::simulators::nba_like_with;
use tkdi::prelude::*;
use tkdi::skyline::incomplete;

const STATS: [&str; 4] = ["games", "minutes", "points", "off-rebounds"];

fn main() {
    let ds = nba_like_with(5_000, 11);
    println!(
        "{} player seasons x {} stats, missing rate {:.1}%\n",
        ds.len(),
        ds.dims(),
        100.0 * tkdi::model::stats::missing_rate(&ds)
    );

    // Plain TKD query (every stat equally important).
    let k = 8;
    let r = TkdQuery::new(k).algorithm(Algorithm::Ubb).run(&ds);
    println!("top-{k} dominating seasons (unweighted):");
    print_players(&ds, &r.ids(), &r.scores());

    // The skyline for comparison: "never beaten" vs "beats the most".
    let sky = incomplete::skyline(&ds);
    println!(
        "\nskyline size: {} (the TKD answer is controllable via k — the \
         paper's §1 argument; the skyline is not)",
        sky.len()
    );
    let in_sky = r.ids().iter().filter(|id| sky.contains(id)).count();
    println!("TKD answers also on the skyline: {in_sky}/{k}");

    // MFD: a scout who cares about scoring output, discounting dominances
    // that rest on half-observed dimensions.
    let cfg = MfdConfig {
        // games, minutes, points, off-rebounds
        weights: vec![0.1, 0.2, 0.5, 0.2],
        lambda: 0.4,
    };
    let weighted = mfd_top_k(&ds, k, &cfg);
    println!("\ntop-{k} under MFD (points-heavy weights, λ = 0.4):");
    for (rank, e) in weighted.iter().enumerate() {
        println!(
            "  #{:<2} player-{:<6} weighted score {:.2}",
            rank + 1,
            e.id,
            e.score
        );
    }

    let plain: Vec<ObjectId> = r.ids();
    let mfd_ids: Vec<ObjectId> = weighted.iter().map(|e| e.id).collect();
    let overlap = plain.iter().filter(|id| mfd_ids.contains(id)).count();
    println!("\noverlap between unweighted and MFD top-{k}: {overlap}/{k}");
}

fn print_players(ds: &tkdi::model::Dataset, ids: &[ObjectId], scores: &[usize]) {
    for (rank, (&id, &score)) in ids.iter().zip(scores).enumerate() {
        let row = ds.row(id);
        let line: Vec<String> = (0..ds.dims())
            .map(|d| match row.value(d) {
                Some(v) => format!("{}={}", STATS[d], -v),
                None => format!("{}=?", STATS[d]),
            })
            .collect();
        println!(
            "  #{:<2} player-{:<6} dominates {:>5}  [{}]",
            rank + 1,
            id,
            score,
            line.join(", ")
        );
    }
}
