//! Zillow-style listing search: the space/time trade-off of IBIG's binned,
//! compressed bitmap index on a dataset whose per-dimension domains differ
//! by orders of magnitude (beds ≈ 6 values, price ≈ 1000).
//!
//! Reproduces the reasoning of the paper's §4.4–4.5 and Fig. 11(c) on a
//! 20K-listing workload: sweep the lot-area bin count, watch the index
//! shrink and the query slow down, and compare against Eq. 8's suggestion.
//!
//! ```sh
//! cargo run --release --example real_estate
//! ```

use std::time::Instant;
use tkdi::bitvec::Concise;
use tkdi::core::big::{big_with, BigContext};
use tkdi::core::ibig::{ibig_with, IbigContext};
use tkdi::data::simulators::{zillow_bins, zillow_like_with};
use tkdi::index::cost;
use tkdi::model::stats;

fn main() {
    let ds = zillow_like_with(20_000, 5);
    let sigma = stats::missing_rate(&ds);
    println!(
        "{} listings x {} attributes, missing rate {:.1}%",
        ds.len(),
        ds.dims(),
        100.0 * sigma
    );
    for (d, name) in ["beds", "baths", "living", "lot", "price"]
        .iter()
        .enumerate()
    {
        println!(
            "  domain({name}) = {} distinct values",
            stats::dimension_cardinality(&ds, d)
        );
    }

    let k = 10;

    // Reference: exact BIG (unbinned, dense).
    let ctx = BigContext::build(&ds);
    let start = Instant::now();
    let reference = big_with(&ctx, k);
    let t_big = start.elapsed();
    println!(
        "\nBIG  (exact index):   {:>9.3?}   index {:>10} bytes",
        t_big,
        ctx.index().size_bytes()
    );
    drop(ctx);

    // IBIG across lot-area bin counts (the paper sweeps this dimension).
    println!("IBIG (binned + CONCISE), sweeping lot-area bins:");
    for x in [10usize, 50, 200, 1000] {
        let ictx: IbigContext<'_, Concise> = IbigContext::build(&ds, &zillow_bins(x));
        let start = Instant::now();
        let r = ibig_with(&ictx, k);
        let t = start.elapsed();
        assert_eq!(r.scores(), reference.scores(), "IBIG must agree with BIG");
        println!(
            "  x={x:<5} query {t:>9.3?}   columns {:>9} bytes",
            ictx.columns().size_bytes()
        );
    }

    // What Eq. 8 recommends for a uniform bin count at this N and σ:
    let xstar = cost::optimal_bins(ds.len(), sigma);
    println!(
        "\nEq. 8 optimal uniform bin count for N={} σ={:.3}: x* = {}",
        ds.len(),
        sigma,
        xstar
    );

    println!("\ntop-{k} dominating listings:");
    for (rank, e) in reference.iter().enumerate() {
        let row = ds.row(e.id);
        let fmt = |d: usize, neg: bool| {
            row.value(d)
                .map(|v| format!("{}", if neg { -v } else { v }))
                .unwrap_or_else(|| "?".into())
        };
        println!(
            "  #{:<2} listing-{:<6} dominates {:>5}  beds={} baths={} living={} lot={} price={}",
            rank + 1,
            e.id,
            e.score,
            fmt(0, true),
            fmt(1, true),
            fmt(2, true),
            fmt(3, true),
            fmt(4, false),
        );
    }
}
