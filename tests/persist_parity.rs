//! Round-trip parity for persistent snapshots — the same differential
//! discipline as the parallel (PR 3) and dynamic (PR 4) subsystems: a
//! snapshot written and loaded back must answer every query
//! **bit-identically** (entries, scores, tie order) to the freshly
//! built context it came from, across missing rates {0.1, 0.3, 0.6} ×
//! bin counts × {BIG, IBIG}, statically built engines and engines that
//! absorbed a mixed op batch alike — and a loaded engine must keep
//! *mutating* correctly: a load → mutate → compact sequence stays
//! pinned to the rebuild oracle of `tests/dynamic_parity.rs`.

mod common;

use common::{cell, random_dataset, row, Mix};
use proptest::prelude::*;
use tkdi::core::dynamic::{CompactionPolicy, DynamicOptions};
use tkdi::core::{BinChoice, TkdQuery};
use tkdi::prelude::*;
use tkdi::store;

/// Entries of a dynamic-engine query as comparable pairs.
fn entries(engine: &mut DynamicEngine, k: usize, alg: Algorithm) -> Vec<(ObjectId, usize)> {
    engine
        .query(&EngineQuery::new(k).algorithm(alg))
        .expect("BIG/IBIG supported")
        .iter()
        .map(|e| (e.id, e.score))
        .collect()
}

/// Round-trip one engine and pin the loaded copy to the original across
/// an edge-heavy k grid, both algorithms, and both thread counts.
fn assert_roundtrip_parity(engine: &mut DynamicEngine, tag: &str) {
    let bytes = store::encode_engine(engine);
    let mut loaded = store::decode_engine(&bytes).expect("own snapshot loads");
    // Canonical bytes: re-encoding the loaded engine is the identity.
    assert_eq!(store::encode_engine(&mut loaded), bytes, "{tag}: bytes");
    assert_eq!(loaded.live_ids(), engine.live_ids(), "{tag}: ids");
    assert_eq!(
        loaded.maintained_queue(),
        engine.maintained_queue(),
        "{tag}: queue"
    );
    let n = engine.len();
    for alg in [Algorithm::Big, Algorithm::Ibig] {
        for k in [0usize, 1, 2, n.saturating_sub(1), n, n + 3] {
            let want: Vec<(ObjectId, usize)> = engine
                .query(&EngineQuery::new(k).algorithm(alg))
                .expect("supported")
                .iter()
                .map(|e| (e.id, e.score))
                .collect();
            for threads in [1usize, 2] {
                let got: Vec<(ObjectId, usize)> = loaded
                    .query_threads(&EngineQuery::new(k).algorithm(alg), threads)
                    .expect("supported")
                    .iter()
                    .map(|e| (e.id, e.score))
                    .collect();
                assert_eq!(got, want, "{tag}: {alg:?} k={k} threads={threads}");
            }
        }
    }
}

/// The static grid: fresh engines over random datasets, missing rates ×
/// bin choices, snapshot → load → full query-parity check.
#[test]
fn static_roundtrip_grid() {
    for missing_pct in [10u64, 30, 60] {
        for (seed, bins) in [
            (1u64, BinChoice::Auto),
            (2, BinChoice::Fixed(2)),
            (3, BinChoice::Fixed(5)),
        ] {
            let mut rng = Mix(seed * 1000 + missing_pct);
            let ds = random_dataset(&mut rng, 60, 3, missing_pct);
            let mut engine = DynamicEngine::with_options(
                ds,
                DynamicOptions {
                    bins: bins.clone(),
                    policy: CompactionPolicy::default(),
                },
            );
            assert_roundtrip_parity(
                &mut engine,
                &format!("static missing={missing_pct} seed={seed} bins={bins:?}"),
            );
        }
    }
}

/// The dynamic grid: engines that absorbed a mixed op batch (inserts,
/// deletes, cell updates — tombstones present), snapshot → load →
/// parity, then the loaded engine keeps mutating and compacting while
/// pinned to the rebuild oracle (the dynamic_parity discipline).
#[test]
fn dynamic_roundtrip_then_mutate_then_compact() {
    for missing_pct in [10u64, 30, 60] {
        let dims = 3;
        let mut rng = Mix(7 + missing_pct);
        let ds = random_dataset(&mut rng, 30, dims, missing_pct);
        let mut engine = DynamicEngine::with_options(
            ds,
            DynamicOptions {
                bins: BinChoice::Fixed(3),
                policy: CompactionPolicy::never(),
            },
        );
        // Mirror of live rows, maintained alongside every op.
        let mut mirror: Vec<(ObjectId, Vec<Option<f64>>)> = engine
            .live_ids()
            .into_iter()
            .map(|id| {
                let r: Vec<Option<f64>> = (0..dims).map(|d| engine.value(id, d).unwrap()).collect();
                (id, r)
            })
            .collect();
        let apply_random_ops = |engine: &mut DynamicEngine,
                                mirror: &mut Vec<(ObjectId, Vec<Option<f64>>)>,
                                rng: &mut Mix,
                                count: usize| {
            for _ in 0..count {
                let die = rng.next() % 10;
                if mirror.is_empty() || die >= 5 {
                    let r = row(rng, dims, missing_pct);
                    let id = engine.insert(&r).expect("valid row");
                    mirror.push((id, r));
                } else if die < 2 {
                    let i = rng.below(mirror.len());
                    let (id, _) = mirror.remove(i);
                    engine.delete(id).expect("live id");
                } else {
                    let i = rng.below(mirror.len());
                    let d = rng.below(dims);
                    let nv = cell(rng, missing_pct);
                    let (id, r) = &mut mirror[i];
                    let elsewhere = r.iter().enumerate().any(|(j, v)| j != d && v.is_some());
                    if nv.is_some() || elsewhere {
                        engine.update_value(*id, d, nv).expect("valid update");
                        r[d] = nv;
                    }
                }
            }
        };
        // Mutate, snapshot with tombstones present, load.
        apply_random_ops(&mut engine, &mut mirror, &mut rng, 25);
        assert!(engine.tombstones() > 0 || engine.stats().deletes == 0);
        let bytes = store::encode_engine(&mut engine);
        let mut loaded = store::decode_engine(&bytes).expect("snapshot loads");
        assert_roundtrip_parity(&mut engine, &format!("dynamic missing={missing_pct}"));
        // The loaded engine absorbs more ops, then compacts — and stays
        // bit-identical to a rebuild-from-scratch oracle over the mirror.
        apply_random_ops(&mut loaded, &mut mirror, &mut rng, 20);
        loaded.compact_now();
        let oracle_rows: Vec<Vec<Option<f64>>> = mirror.iter().map(|(_, r)| r.clone()).collect();
        let oracle_ids: Vec<ObjectId> = mirror.iter().map(|&(id, _)| id).collect();
        assert_eq!(loaded.live_ids(), oracle_ids, "missing={missing_pct}");
        let snap = Dataset::from_rows(dims, &oracle_rows).expect("mirror rows valid");
        for alg in [Algorithm::Big, Algorithm::Ibig] {
            for k in [1usize, 3, mirror.len(), mirror.len() + 2] {
                let want: Vec<(ObjectId, usize)> = TkdQuery::new(k)
                    .algorithm(alg)
                    .run(&snap)
                    .iter()
                    .map(|e| (oracle_ids[e.id as usize], e.score))
                    .collect();
                assert_eq!(
                    entries(&mut loaded, k, alg),
                    want,
                    "post-compact missing={missing_pct} {alg:?} k={k}"
                );
            }
        }
        // And the compacted state round-trips again.
        assert_roundtrip_parity(&mut loaded, &format!("post-compact missing={missing_pct}"));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Property form: arbitrary small datasets and bin counts round-trip
    /// with full entry/score/tie-order parity on both engines.
    #[test]
    fn arbitrary_datasets_roundtrip(
        rows in proptest::collection::vec(
            proptest::collection::vec(
                proptest::option::weighted(0.65, (0u8..6).prop_map(f64::from)),
                3,
            )
            .prop_filter("at least one observed", |r| r.iter().any(Option::is_some)),
            1..30,
        ),
        bins in 1usize..6,
        k in 0usize..12,
    ) {
        let ds = Dataset::from_rows(3, &rows).expect("valid rows");
        let mut engine = DynamicEngine::with_options(
            ds,
            DynamicOptions {
                bins: BinChoice::Fixed(bins),
                policy: CompactionPolicy::default(),
            },
        );
        let bytes = store::encode_engine(&mut engine);
        let mut loaded = store::decode_engine(&bytes).expect("snapshot loads");
        prop_assert_eq!(store::encode_engine(&mut loaded), bytes);
        for alg in [Algorithm::Big, Algorithm::Ibig] {
            prop_assert_eq!(
                entries(&mut loaded, k, alg),
                entries(&mut engine, k, alg),
                "{:?}", alg
            );
        }
    }
}
