//! The TKDQL differential harness: every statement form must be
//! **bit-identical** — same entries, same scores, same tie order — to the
//! hand-constructed `TkdQuery` / `tkd_core::variants` calls it compiles
//! to, across synthetic datasets × missing rates {0.1, 0.3, 0.6} × all
//! five algorithms × subspaces × constraints × an edge-heavy k set
//! ({0, 1, n−1, n, n+5}). The same discipline as the parallel, dynamic,
//! persistence, and serving subsystems: the language is a surface over
//! existing engines and may not change a single answer.
//!
//! A second leg pins the planner's promise that `EXPLAIN` and execution
//! make *one* algorithm decision, and a third runs the engine target
//! (`run_on_engine`) against snapshot-plus-remap oracles.

use tkdi::core::{variants, Algorithm, DynamicEngine, EngineQuery, TkdQuery, TkdResult};
use tkdi::data::synthetic::{generate, Distribution, SyntheticConfig};
use tkdi::model::{Dataset, ObjectId};
use tkdi::ql::{self, Outcome};
use tkdi::skyline::constrained::Constraints;

const MISSING_RATES: [f64; 3] = [0.1, 0.3, 0.6];
const ALL_ALGOS: [(&str, Algorithm); 5] = [
    ("NAIVE", Algorithm::Naive),
    ("ESB", Algorithm::Esb),
    ("UBB", Algorithm::Ubb),
    ("BIG", Algorithm::Big),
    ("IBIG", Algorithm::Ibig),
];

fn workload(missing: f64, seed: u64) -> Dataset {
    generate(&SyntheticConfig {
        n: 160,
        dims: 4,
        cardinality: 8,
        missing_rate: missing,
        distribution: Distribution::Independent,
        seed,
    })
}

fn k_edges(n: usize) -> [usize; 5] {
    [0, 1, n.saturating_sub(1), n, n + 5]
}

fn run_stmt(text: &str, ds: &Dataset) -> TkdResult {
    let plan = ql::compile(text, ds.dims()).unwrap_or_else(|e| panic!("{text}: {e}"));
    match ql::run_on_dataset(&plan, ds).unwrap_or_else(|e| panic!("{text}: {e}")) {
        Outcome::Rows(r) => r,
        other => panic!("{text}: expected rows, got {other:?}"),
    }
}

/// Entries AND order — `TkdResult::entries()` is (id, score) in rank
/// order, so equality is the full bit-identity claim.
fn assert_same(text: &str, got: &TkdResult, want: &TkdResult, tag: &str) {
    assert_eq!(got.entries(), want.entries(), "{tag}: `{text}`");
}

#[test]
fn plain_select_matches_tkdquery_across_the_grid() {
    for (i, &missing) in MISSING_RATES.iter().enumerate() {
        let ds = workload(missing, 900 + i as u64);
        let n = ds.len();
        for (name, alg) in ALL_ALGOS {
            for k in k_edges(n) {
                let text = format!("SELECT TOP {k} DOMINATING USING {name}");
                let got = run_stmt(&text, &ds);
                let want = TkdQuery::new(k).algorithm(alg).run(&ds);
                assert_same(&text, &got, &want, &format!("σ={missing} {name} k={k}"));
            }
        }
    }
}

#[test]
fn subspace_matches_the_subspace_variant() {
    for (i, &missing) in MISSING_RATES.iter().enumerate() {
        let ds = workload(missing, 910 + i as u64);
        for (dims_sql, dims_idx) in [
            ("(d1, d3)", vec![0usize, 2]),
            ("(d2)", vec![1]),
            ("(d1, d2, d3, d4)", vec![0, 1, 2, 3]),
        ] {
            for (name, alg) in [
                ("UBB", Algorithm::Ubb),
                ("BIG", Algorithm::Big),
                ("IBIG", Algorithm::Ibig),
            ] {
                let text = format!("SELECT TOP 7 DOMINATING SUBSPACE {dims_sql} USING {name}");
                let got = run_stmt(&text, &ds);
                let want =
                    variants::subspace_top_k(&ds, &dims_idx, &TkdQuery::new(7).algorithm(alg))
                        .expect("valid subspace");
                assert_same(&text, &got, &want, &format!("σ={missing} {dims_sql}"));
            }
        }
    }
}

#[test]
fn where_matches_the_constrained_variant() {
    // Values are integers in [0, 8); the predicates cut real subsets.
    for (i, &missing) in MISSING_RATES.iter().enumerate() {
        let ds = workload(missing, 920 + i as u64);
        let cases: Vec<(String, Constraints)> = vec![
            (
                "WHERE d2 BETWEEN 2 AND 5".into(),
                Constraints::none(4).with_interval(1, 2.0, 5.0),
            ),
            (
                "WHERE d1 <= 4 AND d4 >= 3".into(),
                Constraints::none(4)
                    .with_interval(0, f64::NEG_INFINITY, 4.0)
                    .with_interval(3, 3.0, f64::INFINITY),
            ),
            (
                // Strict bounds compile onto next_up/next_down — the
                // oracle states the same inclusive range by hand.
                "WHERE d3 > 2 AND d3 < 6".into(),
                Constraints::none(4).with_interval(2, 2.0_f64.next_up(), 6.0_f64.next_down()),
            ),
            (
                // Arithmetic folds at plan time: 2 * 3 - 1 = 5.
                "WHERE d1 = 2 * 3 - 1".into(),
                Constraints::none(4).with_interval(0, 5.0, 5.0),
            ),
            (
                // Contradiction: admits only the objects missing d2.
                "WHERE d2 > 7 AND d2 < 1".into(),
                Constraints::none(4).with_interval(1, 7.0_f64.next_up(), 1.0_f64.next_down()),
            ),
        ];
        for (clause, c) in &cases {
            for (name, alg) in [
                ("NAIVE", Algorithm::Naive),
                ("ESB", Algorithm::Esb),
                ("BIG", Algorithm::Big),
            ] {
                let text = format!("SELECT TOP 9 DOMINATING {clause} USING {name}");
                let got = run_stmt(&text, &ds);
                let want = variants::constrained_top_k(&ds, c, &TkdQuery::new(9).algorithm(alg));
                assert_same(&text, &got, &want, &format!("σ={missing}"));
            }
        }
    }
}

#[test]
fn where_plus_subspace_matches_the_hand_composition() {
    for (i, &missing) in MISSING_RATES.iter().enumerate() {
        let ds = workload(missing, 930 + i as u64);
        let text = "SELECT TOP 6 DOMINATING SUBSPACE (d1, d4) WHERE d2 <= 5 USING BIG";
        let got = run_stmt(text, &ds);
        // Hand composition, exactly as variants users write it: admit on
        // the full space, select, project, remap through both mappings.
        let c = Constraints::none(4).with_interval(1, f64::NEG_INFINITY, 5.0);
        let admitted = c.admitted(&ds);
        let selected = ds.select(&admitted);
        let inner = variants::subspace_top_k(
            &selected,
            &[0, 3],
            &TkdQuery::new(6).algorithm(Algorithm::Big),
        )
        .expect("valid subspace");
        let want = variants::remap(inner, &admitted);
        assert_same(text, &got, &want, &format!("σ={missing}"));
    }
}

#[test]
fn threads_and_bins_do_not_change_answers() {
    for (i, &missing) in MISSING_RATES.iter().enumerate() {
        let ds = workload(missing, 940 + i as u64);
        let base = run_stmt("SELECT TOP 8 DOMINATING USING BIG", &ds);
        let threaded = run_stmt("SELECT TOP 8 DOMINATING USING BIG WITH THREADS 2", &ds);
        assert_eq!(threaded.entries(), base.entries(), "σ={missing} threads");
        let ibig = run_stmt("SELECT TOP 8 DOMINATING USING IBIG", &ds);
        for bins in [2usize, 5, 16] {
            let binned = run_stmt(
                &format!("SELECT TOP 8 DOMINATING USING IBIG WITH BINS {bins}"),
                &ds,
            );
            assert_eq!(binned.entries(), ibig.entries(), "σ={missing} bins={bins}");
        }
    }
}

/// The one-decision promise: whatever algorithm `EXPLAIN` prints for an
/// Auto statement, running the same statement with that algorithm forced
/// via `USING` returns the same entries as the Auto run.
#[test]
fn explain_algorithm_is_the_executed_algorithm() {
    for (i, &missing) in MISSING_RATES.iter().enumerate() {
        let ds = workload(missing, 950 + i as u64);
        for stmt in [
            "SELECT TOP 5 DOMINATING".to_string(),
            "SELECT TOP 5 DOMINATING WHERE d1 <= 3".to_string(),
            "SELECT TOP 5 DOMINATING SUBSPACE (d2, d3)".to_string(),
        ] {
            let plan = ql::compile(&format!("EXPLAIN {stmt}"), ds.dims()).unwrap();
            let rendered = match ql::run_on_dataset(&plan, &ds).unwrap() {
                Outcome::Explain(s) => s,
                other => panic!("{stmt}: {other:?}"),
            };
            let algo_line = rendered
                .lines()
                .find(|l| l.trim_start().starts_with("algorithm:"))
                .unwrap_or_else(|| panic!("{stmt}: no algorithm line in\n{rendered}"));
            let (name, _) = ALL_ALGOS
                .iter()
                .find(|(n, a)| algo_line.contains(&format!("{a:?}")) && !n.is_empty())
                .unwrap_or_else(|| panic!("{stmt}: unrecognized line {algo_line}"));
            let auto = run_stmt(&stmt, &ds);
            let forced = run_stmt(&format!("{stmt} USING {name}"), &ds);
            assert_eq!(auto.entries(), forced.entries(), "σ={missing} `{stmt}`");
        }
    }
}

#[test]
fn engine_target_matches_snapshot_oracles() {
    for (i, &missing) in MISSING_RATES.iter().enumerate() {
        let ds = workload(missing, 960 + i as u64);
        let mut engine = DynamicEngine::new(ds.clone());
        // Make the engine's id space diverge from the dataset's: delete a
        // few rows so remapping through live_ids() actually matters.
        for id in [3u32, 40, 77] {
            engine.delete(id).expect("live id");
        }
        let snap = engine.snapshot();
        let live = engine.live_ids();
        for (name, alg) in [("BIG", Algorithm::Big), ("IBIG", Algorithm::Ibig)] {
            for k in [0usize, 1, 9, snap.len(), snap.len() + 5] {
                // Unscoped: the maintained index must answer exactly like
                // the in-process engine query API.
                let text = format!("SELECT TOP {k} DOMINATING USING {name}");
                let plan = ql::compile(&text, engine.dims()).unwrap();
                let got = match ql::run_on_engine(&plan, &mut engine).unwrap() {
                    Outcome::Rows(r) => r,
                    other => panic!("{text}: {other:?}"),
                };
                let want = engine
                    .query_threads(&EngineQuery::new(k).algorithm(alg), 1)
                    .unwrap();
                assert_eq!(got.entries(), want.entries(), "σ={missing} `{text}`");
            }
            // Scoped: snapshot + variants + live-id translation.
            let text =
                format!("SELECT TOP 6 DOMINATING SUBSPACE (d1, d3) WHERE d2 <= 5 USING {name}");
            let plan = ql::compile(&text, engine.dims()).unwrap();
            let got = match ql::run_on_engine(&plan, &mut engine).unwrap() {
                Outcome::Rows(r) => r,
                other => panic!("{text}: {other:?}"),
            };
            let c = Constraints::none(4).with_interval(1, f64::NEG_INFINITY, 5.0);
            let admitted = c.admitted(&snap);
            let selected = snap.select(&admitted);
            let inner =
                variants::subspace_top_k(&selected, &[0, 2], &TkdQuery::new(6).algorithm(alg))
                    .expect("valid subspace");
            let snapshot_ids = variants::remap(inner, &admitted);
            let want: Vec<(ObjectId, usize)> = snapshot_ids
                .iter()
                .map(|e| (live[e.id as usize], e.score))
                .collect();
            let got: Vec<(ObjectId, usize)> = got.iter().map(|e| (e.id, e.score)).collect();
            assert_eq!(got, want, "σ={missing} `{text}`");
        }
    }
}
