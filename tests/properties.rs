//! Property-based cross-crate invariants on random incomplete datasets.

use proptest::prelude::*;
use tkdi::core::{big, esb, ibig, maxscore, naive, ubb};
use tkdi::index::BitmapIndex;
use tkdi::model::{dominance, stats, Dataset};
use tkdi::skyline::incomplete;

/// Strategy: a random incomplete dataset with 1–4 dimensions, up to 40
/// objects, small integer values, each row keeping ≥ 1 observed value.
fn dataset_strategy() -> impl Strategy<Value = Dataset> {
    (1usize..=4).prop_flat_map(|dims| {
        let row = proptest::collection::vec(
            proptest::option::weighted(0.7, (0u8..6).prop_map(|v| v as f64)),
            dims,
        )
        .prop_filter("at least one observed", |r| r.iter().any(Option::is_some));
        proptest::collection::vec(row, 1..40)
            .prop_map(move |rows| Dataset::from_rows(dims, &rows).expect("valid rows"))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// All five algorithms agree with the Naive oracle on the returned
    /// score multiset, for every k.
    #[test]
    fn algorithms_agree_with_naive(ds in dataset_strategy(), k in 1usize..10) {
        let reference = naive::naive(&ds, k);
        prop_assert_eq!(esb::esb(&ds, k).scores(), reference.scores());
        prop_assert_eq!(ubb::ubb(&ds, k).scores(), reference.scores());
        prop_assert_eq!(big::big(&ds, k).scores(), reference.scores());
        prop_assert_eq!(ibig::ibig(&ds, k).scores(), reference.scores());
    }

    /// IBIG stays correct for arbitrary (even degenerate) bin counts.
    #[test]
    fn ibig_correct_for_any_bins(ds in dataset_strategy(), k in 1usize..6, bins in 1usize..8) {
        let r = ibig::ibig_with_bins(&ds, k, &vec![bins; ds.dims()]);
        prop_assert_eq!(r.scores(), naive::naive(&ds, k).scores());
    }

    /// Lemma 2 + Lemma 3: score(o) ≤ MaxBitScore(o) ≤ MaxScore(o).
    #[test]
    fn upper_bound_chain(ds in dataset_strategy()) {
        let ms = maxscore::max_scores(&ds);
        let mbs = big::max_bit_scores(&ds);
        for o in ds.ids() {
            let s = dominance::score_of(&ds, o);
            prop_assert!(s <= mbs[o as usize]);
            prop_assert!(mbs[o as usize] <= ms[o as usize]);
        }
    }

    /// Definition 4's Q via the bitmap index equals the brute-force set
    /// {p ≠ o : ∀i ∈ Iset(o), p[i] ≥ o[i] ∨ p[i] missing}.
    #[test]
    fn q_vec_matches_set_semantics(ds in dataset_strategy()) {
        let idx = BitmapIndex::build(&ds);
        for o in ds.ids() {
            let q = idx.q_vec(o);
            for p in ds.ids() {
                let expected = p != o
                    && (0..ds.dims()).all(|d| match (ds.value(o, d), ds.value(p, d)) {
                        (Some(vo), Some(vp)) => vo <= vp,
                        _ => true,
                    });
                prop_assert_eq!(q.get(p as usize), expected, "o={} p={}", o, p);
            }
        }
    }

    /// Lemma 1: the true top-k objects always survive ESB's candidate
    /// pruning.
    #[test]
    fn esb_candidates_cover_answers(ds in dataset_strategy(), k in 1usize..6) {
        let candidates = esb::esb_candidates(&ds, k);
        for e in naive::naive(&ds, k).iter() {
            prop_assert!(candidates.contains(&e.id));
        }
    }

    /// k-skyband membership ⟺ dominated by fewer than k objects.
    #[test]
    fn skyband_definition(ds in dataset_strategy(), k in 0usize..5) {
        let band = incomplete::k_skyband(&ds, k);
        for o in ds.ids() {
            let dominators = incomplete::dominator_count(&ds, o);
            prop_assert_eq!(band.contains(&o), dominators < k, "o={}", o);
        }
    }

    /// Dominance is irreflexive and asymmetric; incomparability is
    /// symmetric and means no domination either way.
    #[test]
    fn dominance_relation_laws(ds in dataset_strategy()) {
        for a in ds.ids() {
            prop_assert!(!dominance::dominates(&ds, a, a));
            for b in ds.ids() {
                if dominance::dominates(&ds, a, b) {
                    prop_assert!(!dominance::dominates(&ds, b, a));
                    prop_assert!(dominance::comparable(&ds, a, b));
                }
                prop_assert_eq!(
                    dominance::comparable(&ds, a, b),
                    dominance::comparable(&ds, b, a)
                );
            }
        }
    }

    /// The result is internally consistent: scores descending, ids unique,
    /// every reported score is the true score, and the k-th score bounds
    /// every excluded object's score.
    #[test]
    fn result_consistency(ds in dataset_strategy(), k in 1usize..8) {
        let r = big::big(&ds, k);
        let ids = r.ids();
        let mut dedup = ids.clone();
        dedup.sort_unstable();
        dedup.dedup();
        prop_assert_eq!(dedup.len(), ids.len(), "duplicate answers");
        prop_assert_eq!(r.len(), k.min(ds.len()));
        let scores = r.scores();
        prop_assert!(scores.windows(2).all(|w| w[0] >= w[1]));
        for e in r.iter() {
            prop_assert_eq!(e.score, dominance::score_of(&ds, e.id));
        }
        if let Some(tau) = r.kth_score() {
            for o in ds.ids() {
                if !r.contains(o) {
                    prop_assert!(dominance::score_of(&ds, o) <= tau);
                }
            }
        }
    }

    /// Text round-trip preserves the dataset and therefore the query
    /// answer.
    #[test]
    fn io_roundtrip_preserves_answers(ds in dataset_strategy(), k in 1usize..5) {
        let text = tkdi::model::io::to_text(&ds);
        let back = tkdi::model::io::parse(&text).expect("roundtrip");
        prop_assert_eq!(&back, &ds);
        prop_assert_eq!(naive::naive(&back, k).scores(), naive::naive(&ds, k).scores());
    }

    /// Missing rate accounting matches a direct count.
    #[test]
    fn missing_rate_accounting(ds in dataset_strategy()) {
        let direct: usize = ds
            .ids()
            .map(|o| (0..ds.dims()).filter(|&d| ds.value(o, d).is_none()).count())
            .sum();
        let expected = direct as f64 / (ds.len() * ds.dims()) as f64;
        prop_assert!((stats::missing_rate(&ds) - expected).abs() < 1e-12);
    }
}
