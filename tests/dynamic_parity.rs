//! The rebuild-oracle parity gate for the dynamic update subsystem.
//!
//! Grid (from the PR-4 acceptance criteria): randomized op sequences over
//! ≥ 3 seeds × missing rates {0.1, 0.3, 0.6} × algorithms {BIG, IBIG} ×
//! thread counts {1, 2}. After every batch of ops the [`DynamicEngine`]
//! must be **bit-identical** — same entries, same scores, same tie order —
//! to contexts rebuilt from scratch over the live data, for every `k` in
//! an edge-heavy set. The harness keeps its *own* mirror of the expected
//! live rows (it does not trust the engine's bookkeeping), checks the
//! engine's snapshot against it, and pins the maintained `MaxScore` queue
//! to the from-scratch queue — the invariant the whole tie-order argument
//! rests on.

mod common;

use common::{apply_to_mirror, random_op, row, Mirror, Mix};
use tkdi::core::dynamic::{CompactionPolicy, DynamicOptions};
use tkdi::core::{maxscore, BinChoice, TkdQuery};
use tkdi::prelude::*;

/// The parity cell: engine state vs rebuild-from-scratch oracles across
/// both algorithms × both thread counts × an edge-heavy k set.
fn assert_parity(engine: &mut DynamicEngine, mirror: &Mirror, tag: &str) {
    // Bookkeeping parity first: snapshot and live ids match the mirror.
    if !mirror.rows.is_empty() {
        assert_eq!(engine.snapshot(), mirror.dataset(), "{tag}: snapshot");
    }
    assert_eq!(engine.live_ids(), mirror.ids(), "{tag}: live ids");
    // Queue parity: the maintained MaxScore queue IS the rebuilt queue.
    if !mirror.rows.is_empty() {
        let snap = mirror.dataset();
        let ids = mirror.ids();
        let scratch: Vec<(ObjectId, usize)> = maxscore::maxscore_queue(&snap)
            .into_iter()
            .map(|(pos, ms)| (ids[pos as usize], ms))
            .collect();
        assert_eq!(engine.maintained_queue(), scratch, "{tag}: queue");
    }
    let n = mirror.rows.len();
    let ids = mirror.ids();
    let snap = if n > 0 { Some(mirror.dataset()) } else { None };
    for alg in [Algorithm::Big, Algorithm::Ibig] {
        for k in [0usize, 1, 2, n.saturating_sub(1), n, n + 3] {
            let oracle: Vec<(ObjectId, usize)> = match &snap {
                None => Vec::new(),
                Some(ds) => TkdQuery::new(k)
                    .algorithm(alg)
                    .run(ds)
                    .iter()
                    .map(|e| (ids[e.id as usize], e.score))
                    .collect(),
            };
            for threads in [1usize, 2] {
                let got: Vec<(ObjectId, usize)> = engine
                    .query_threads(&EngineQuery::new(k).algorithm(alg), threads)
                    .expect("BIG/IBIG supported")
                    .iter()
                    .map(|e| (e.id, e.score))
                    .collect();
                assert_eq!(got, oracle, "{tag}: {alg:?} k={k} threads={threads}");
            }
        }
    }
}

/// One grid cell: a full randomized op sequence under `seed × missing`,
/// checked against the oracle after every batch.
fn run_sequence(seed: u64, missing_pct: u64, policy: CompactionPolicy) {
    let dims = 3;
    let mut rng = Mix(seed);
    // Start from a small random dataset.
    let initial: Vec<Vec<Option<f64>>> =
        (0..12).map(|_| row(&mut rng, dims, missing_pct)).collect();
    let ds = Dataset::from_rows(dims, &initial).unwrap();
    let mut next_id = ds.len() as ObjectId;
    let mut mirror = Mirror::seeded(&initial);
    let mut engine = DynamicEngine::with_options(
        ds,
        DynamicOptions {
            bins: BinChoice::Fixed(3),
            policy,
        },
    );
    for batch in 0..10 {
        let ops: Vec<UpdateOp> = (0..7)
            .map(|_| {
                let op = random_op(&mut rng, &mirror, dims, missing_pct);
                apply_to_mirror(&mut mirror, &op, &mut next_id);
                op
            })
            .collect();
        engine.apply_all(&ops).expect("harness sends valid ops");
        assert_parity(
            &mut engine,
            &mirror,
            &format!("seed={seed} missing={missing_pct} batch={batch}"),
        );
    }
}

#[test]
fn randomized_ops_match_rebuild_oracle_missing_10() {
    for seed in [1u64, 2, 3] {
        run_sequence(seed, 10, CompactionPolicy::never());
    }
}

#[test]
fn randomized_ops_match_rebuild_oracle_missing_30() {
    for seed in [4u64, 5, 6] {
        run_sequence(seed, 30, CompactionPolicy::never());
    }
}

#[test]
fn randomized_ops_match_rebuild_oracle_missing_60() {
    for seed in [7u64, 8, 9] {
        run_sequence(seed, 60, CompactionPolicy::never());
    }
}

#[test]
fn randomized_ops_with_aggressive_compaction() {
    // Same sequences, but compacting eagerly: every few tombstones
    // trigger a rebuild, exercising id remapping mid-sequence. Parity
    // must be unaffected (compaction is semantically invisible).
    let policy = CompactionPolicy {
        max_tombstone_fraction: 0.1,
        min_dead: 2,
    };
    for (seed, missing) in [(10u64, 10u64), (11, 30), (12, 60)] {
        run_sequence(seed, missing, policy);
    }
}

#[test]
fn auto_bins_cell() {
    // The default Eq. 8 binning path (bins re-resolved at compaction)
    // through one randomized sequence per missing rate.
    let dims = 4;
    for (seed, missing) in [(20u64, 10u64), (21, 30), (22, 60)] {
        let mut rng = Mix(seed);
        let initial: Vec<Vec<Option<f64>>> =
            (0..10).map(|_| row(&mut rng, dims, missing)).collect();
        let ds = Dataset::from_rows(dims, &initial).unwrap();
        let mut next_id = ds.len() as ObjectId;
        let mut mirror = Mirror::seeded(&initial);
        let mut engine = DynamicEngine::new(ds);
        for _ in 0..25 {
            let op = random_op(&mut rng, &mirror, dims, missing);
            apply_to_mirror(&mut mirror, &op, &mut next_id);
            engine.apply(&op).expect("valid op");
        }
        assert_parity(&mut engine, &mirror, &format!("auto-bins seed={seed}"));
    }
}
