//! The rebuild-oracle parity gate for the dynamic update subsystem.
//!
//! Grid (from the PR-4 acceptance criteria): randomized op sequences over
//! ≥ 3 seeds × missing rates {0.1, 0.3, 0.6} × algorithms {BIG, IBIG} ×
//! thread counts {1, 2}. After every batch of ops the [`DynamicEngine`]
//! must be **bit-identical** — same entries, same scores, same tie order —
//! to contexts rebuilt from scratch over the live data, for every `k` in
//! an edge-heavy set. The harness keeps its *own* mirror of the expected
//! live rows (it does not trust the engine's bookkeeping), checks the
//! engine's snapshot against it, and pins the maintained `MaxScore` queue
//! to the from-scratch queue — the invariant the whole tie-order argument
//! rests on.

use tkdi::core::dynamic::{CompactionPolicy, DynamicOptions};
use tkdi::core::{maxscore, BinChoice, TkdQuery};
use tkdi::prelude::*;

/// Splitmix-style deterministic stream (same recipe as the other
/// harnesses; no RNG dependency).
struct Mix(u64);

impl Mix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

/// A random cell: mostly small integers (tie-heavy), some halves, some
/// signed zeros, `None` with probability `missing_pct`.
fn cell(rng: &mut Mix, missing_pct: u64) -> Option<f64> {
    if rng.next() % 100 < missing_pct {
        return None;
    }
    Some(match rng.next() % 10 {
        0 => -0.0,
        1 => 0.0,
        m => (rng.next() % 7) as f64 + if m == 2 { 0.5 } else { 0.0 },
    })
}

fn row(rng: &mut Mix, dims: usize, missing_pct: u64) -> Vec<Option<f64>> {
    loop {
        let r: Vec<Option<f64>> = (0..dims).map(|_| cell(rng, missing_pct)).collect();
        if r.iter().any(Option::is_some) {
            return r;
        }
    }
}

/// The harness's independent expectation: live rows in insertion order.
struct Mirror {
    rows: Vec<(ObjectId, Vec<Option<f64>>)>,
}

impl Mirror {
    fn dataset(&self) -> Dataset {
        let rows: Vec<Vec<Option<f64>>> = self.rows.iter().map(|(_, r)| r.clone()).collect();
        Dataset::from_rows(self.rows.first().map_or(1, |(_, r)| r.len()), &rows)
            .expect("mirror rows are valid")
    }

    fn ids(&self) -> Vec<ObjectId> {
        self.rows.iter().map(|&(id, _)| id).collect()
    }
}

/// One random op applied to both the engine and the mirror.
fn random_op(rng: &mut Mix, mirror: &Mirror, dims: usize, missing_pct: u64) -> UpdateOp {
    let die = rng.next() % 10;
    if mirror.rows.is_empty() || die >= 5 {
        return UpdateOp::Insert(row(rng, dims, missing_pct));
    }
    let (id, r) = &mirror.rows[rng.below(mirror.rows.len())];
    if die < 2 {
        return UpdateOp::Delete(*id);
    }
    // Cell update; avoid producing an all-missing row (the engine rejects
    // it, and the harness only sends valid ops).
    let dim = rng.below(dims);
    let nv = cell(rng, missing_pct);
    let observed_elsewhere = r.iter().enumerate().any(|(d, v)| d != dim && v.is_some());
    if nv.is_none() && !observed_elsewhere {
        return UpdateOp::Insert(row(rng, dims, missing_pct));
    }
    UpdateOp::Set(*id, dim, nv)
}

fn apply_to_mirror(mirror: &mut Mirror, op: &UpdateOp, next_id: &mut ObjectId) {
    match op {
        UpdateOp::Insert(r) => {
            mirror.rows.push((*next_id, r.clone()));
            *next_id += 1;
        }
        UpdateOp::InsertLabeled(_, r) => {
            mirror.rows.push((*next_id, r.clone()));
            *next_id += 1;
        }
        UpdateOp::Delete(id) => mirror.rows.retain(|(i, _)| i != id),
        UpdateOp::Set(id, dim, v) => {
            let (_, r) = mirror
                .rows
                .iter_mut()
                .find(|(i, _)| i == id)
                .expect("harness only updates live ids");
            r[*dim] = *v;
        }
    }
}

/// The parity cell: engine state vs rebuild-from-scratch oracles across
/// both algorithms × both thread counts × an edge-heavy k set.
fn assert_parity(engine: &mut DynamicEngine, mirror: &Mirror, tag: &str) {
    // Bookkeeping parity first: snapshot and live ids match the mirror.
    if !mirror.rows.is_empty() {
        assert_eq!(engine.snapshot(), mirror.dataset(), "{tag}: snapshot");
    }
    assert_eq!(engine.live_ids(), mirror.ids(), "{tag}: live ids");
    // Queue parity: the maintained MaxScore queue IS the rebuilt queue.
    if !mirror.rows.is_empty() {
        let snap = mirror.dataset();
        let ids = mirror.ids();
        let scratch: Vec<(ObjectId, usize)> = maxscore::maxscore_queue(&snap)
            .into_iter()
            .map(|(pos, ms)| (ids[pos as usize], ms))
            .collect();
        assert_eq!(engine.maintained_queue(), scratch, "{tag}: queue");
    }
    let n = mirror.rows.len();
    let ids = mirror.ids();
    let snap = if n > 0 { Some(mirror.dataset()) } else { None };
    for alg in [Algorithm::Big, Algorithm::Ibig] {
        for k in [0usize, 1, 2, n.saturating_sub(1), n, n + 3] {
            let oracle: Vec<(ObjectId, usize)> = match &snap {
                None => Vec::new(),
                Some(ds) => TkdQuery::new(k)
                    .algorithm(alg)
                    .run(ds)
                    .iter()
                    .map(|e| (ids[e.id as usize], e.score))
                    .collect(),
            };
            for threads in [1usize, 2] {
                let got: Vec<(ObjectId, usize)> = engine
                    .query_threads(&EngineQuery::new(k).algorithm(alg), threads)
                    .expect("BIG/IBIG supported")
                    .iter()
                    .map(|e| (e.id, e.score))
                    .collect();
                assert_eq!(got, oracle, "{tag}: {alg:?} k={k} threads={threads}");
            }
        }
    }
}

/// One grid cell: a full randomized op sequence under `seed × missing`,
/// checked against the oracle after every batch.
fn run_sequence(seed: u64, missing_pct: u64, policy: CompactionPolicy) {
    let dims = 3;
    let mut rng = Mix(seed);
    // Start from a small random dataset.
    let initial: Vec<Vec<Option<f64>>> =
        (0..12).map(|_| row(&mut rng, dims, missing_pct)).collect();
    let ds = Dataset::from_rows(dims, &initial).unwrap();
    let mut next_id = ds.len() as ObjectId;
    let mut mirror = Mirror {
        rows: initial
            .iter()
            .enumerate()
            .map(|(i, r)| (i as ObjectId, r.clone()))
            .collect(),
    };
    let mut engine = DynamicEngine::with_options(
        ds,
        DynamicOptions {
            bins: BinChoice::Fixed(3),
            policy,
        },
    );
    for batch in 0..10 {
        let ops: Vec<UpdateOp> = (0..7)
            .map(|_| {
                let op = random_op(&mut rng, &mirror, dims, missing_pct);
                apply_to_mirror(&mut mirror, &op, &mut next_id);
                op
            })
            .collect();
        engine.apply_all(&ops).expect("harness sends valid ops");
        assert_parity(
            &mut engine,
            &mirror,
            &format!("seed={seed} missing={missing_pct} batch={batch}"),
        );
    }
}

#[test]
fn randomized_ops_match_rebuild_oracle_missing_10() {
    for seed in [1u64, 2, 3] {
        run_sequence(seed, 10, CompactionPolicy::never());
    }
}

#[test]
fn randomized_ops_match_rebuild_oracle_missing_30() {
    for seed in [4u64, 5, 6] {
        run_sequence(seed, 30, CompactionPolicy::never());
    }
}

#[test]
fn randomized_ops_match_rebuild_oracle_missing_60() {
    for seed in [7u64, 8, 9] {
        run_sequence(seed, 60, CompactionPolicy::never());
    }
}

#[test]
fn randomized_ops_with_aggressive_compaction() {
    // Same sequences, but compacting eagerly: every few tombstones
    // trigger a rebuild, exercising id remapping mid-sequence. Parity
    // must be unaffected (compaction is semantically invisible).
    let policy = CompactionPolicy {
        max_tombstone_fraction: 0.1,
        min_dead: 2,
    };
    for (seed, missing) in [(10u64, 10u64), (11, 30), (12, 60)] {
        run_sequence(seed, missing, policy);
    }
}

#[test]
fn auto_bins_cell() {
    // The default Eq. 8 binning path (bins re-resolved at compaction)
    // through one randomized sequence per missing rate.
    let dims = 4;
    for (seed, missing) in [(20u64, 10u64), (21, 30), (22, 60)] {
        let mut rng = Mix(seed);
        let initial: Vec<Vec<Option<f64>>> =
            (0..10).map(|_| row(&mut rng, dims, missing)).collect();
        let ds = Dataset::from_rows(dims, &initial).unwrap();
        let mut next_id = ds.len() as ObjectId;
        let mut mirror = Mirror {
            rows: initial
                .iter()
                .enumerate()
                .map(|(i, r)| (i as ObjectId, r.clone()))
                .collect(),
        };
        let mut engine = DynamicEngine::new(ds);
        for _ in 0..25 {
            let op = random_op(&mut rng, &mirror, dims, missing);
            apply_to_mirror(&mut mirror, &op, &mut next_id);
            engine.apply(&op).expect("valid op");
        }
        assert_parity(&mut engine, &mirror, &format!("auto-bins seed={seed}"));
    }
}
