//! The wire-parity gate: every answer the TCP service produces must be
//! **bit-identical** — entries, scores, tie order — to the in-process
//! engines it wraps.
//!
//! Three layers of pinning, in increasing depth:
//! * static: wire queries against a freshly loaded snapshot vs a
//!   [`ParallelEngine`] built over the same dataset, across missing
//!   rates × {BIG, IBIG} × an edge-heavy k grid;
//! * batched: explicit `query_batch` frames vs per-query answers and vs
//!   `ParallelEngine::query_many` (the coalescing path the server uses);
//! * dynamic: interleaved wire update batches vs a local twin engine
//!   *and* the PR-4 rebuild oracle (a from-scratch [`TkdQuery`] over the
//!   mirror's live rows) — the same discipline as
//!   `tests/dynamic_parity.rs`, now crossing a socket.
//!
//! The serve-path edge matrix rides along: empty `query_batch` frames
//! and `k = 0` queries must produce well-formed empty responses over the
//! wire, extending the `edge_matrix` coverage to the network layer.

mod common;

use common::{apply_to_mirror, random_dataset, random_op, Mirror, Mix};
use std::time::Duration;
use tkdi::core::dynamic::{CompactionPolicy, DynamicOptions};
use tkdi::core::{apply_notification, BinChoice, ResultEntry, TkdQuery};
use tkdi::prelude::*;
use tkdi::serve::{Client, QuerySpec, ServeConfig, ServeError, Server, WireNotification};

const BINS: usize = 3;

fn engine_over(ds: Dataset) -> DynamicEngine {
    DynamicEngine::with_options(
        ds,
        DynamicOptions {
            bins: BinChoice::Fixed(BINS),
            policy: CompactionPolicy::default(),
        },
    )
}

fn start(ds: Dataset) -> (Server, Client) {
    let server = Server::start(engine_over(ds), "127.0.0.1:0", ServeConfig::default())
        .expect("server binds");
    let client = Client::connect_with(server.local_addr(), Duration::from_secs(30))
        .expect("client connects");
    (server, client)
}

fn wire_spec(k: usize, alg: Algorithm) -> QuerySpec {
    QuerySpec::new(k).algorithm(alg)
}

/// Wire entries as comparable pairs.
fn over_wire(client: &mut Client, k: usize, alg: Algorithm) -> Vec<(u32, usize)> {
    client
        .query(wire_spec(k, alg))
        .expect("query answers")
        .iter()
        .map(|e| (e.id as u32, e.score as usize))
        .collect()
}

/// In-process entries from a dynamic twin engine.
fn in_process(engine: &mut DynamicEngine, k: usize, alg: Algorithm) -> Vec<(u32, usize)> {
    engine
        .query(&EngineQuery::new(k).algorithm(alg))
        .expect("BIG/IBIG supported")
        .iter()
        .map(|e| (e.id, e.score))
        .collect()
}

/// Static wire parity: the served snapshot answers exactly like a
/// ParallelEngine built over the same dataset, for every grid cell.
#[test]
fn static_queries_match_parallel_engine() {
    for missing_pct in [10u64, 30, 60] {
        let mut rng = Mix(900 + missing_pct);
        let ds = random_dataset(&mut rng, 50, 3, missing_pct);
        let n = ds.len();
        let reference = ParallelEngine::builder(&ds)
            .threads(2)
            .shards(1)
            .bins(vec![BINS; ds.dims()])
            .build();
        let (server, mut client) = start(ds.clone());
        for alg in [Algorithm::Big, Algorithm::Ibig] {
            for k in [0usize, 1, 2, n - 1, n, n + 3] {
                let want: Vec<(u32, usize)> = reference
                    .query(&EngineQuery::new(k).algorithm(alg))
                    .iter()
                    .map(|e| (e.id, e.score))
                    .collect();
                assert_eq!(
                    over_wire(&mut client, k, alg),
                    want,
                    "missing={missing_pct} {alg:?} k={k}"
                );
            }
        }
        server.stop().expect("clean stop");
    }
}

/// Batched wire parity: one `query_batch` frame answers exactly like
/// the same queries sent individually, and like `query_many` in-process.
#[test]
fn query_batch_matches_individual_queries() {
    let mut rng = Mix(17);
    let ds = random_dataset(&mut rng, 60, 4, 30);
    let reference = ParallelEngine::builder(&ds)
        .threads(2)
        .shards(1)
        .bins(vec![BINS; ds.dims()])
        .build();
    let (server, mut client) = start(ds.clone());
    let specs: Vec<QuerySpec> = (0..12)
        .map(|i| {
            wire_spec(
                (i * 5) % 17,
                if i % 2 == 0 {
                    Algorithm::Big
                } else {
                    Algorithm::Ibig
                },
            )
        })
        .collect();
    let batched = client.query_batch(&specs).expect("batch answers");
    assert_eq!(batched.len(), specs.len());
    let queries: Vec<EngineQuery> = specs
        .iter()
        .map(|s| EngineQuery::new(s.k as usize).algorithm(s.algorithm))
        .collect();
    let many = reference.query_many(&queries);
    for (i, spec) in specs.iter().enumerate() {
        let single = client.query(*spec).expect("single query");
        assert_eq!(batched[i], single, "batch[{i}] vs single");
        let want: Vec<(u64, u64)> = many[i]
            .iter()
            .map(|e| (u64::from(e.id), e.score as u64))
            .collect();
        let got: Vec<(u64, u64)> = batched[i].iter().map(|e| (e.id, e.score)).collect();
        assert_eq!(got, want, "batch[{i}] vs query_many");
    }
    server.stop().expect("clean stop");
}

/// Dynamic wire parity: interleave randomized update batches with
/// queries; the served answers stay pinned to a local twin engine fed
/// the identical ops AND to the rebuild-from-scratch oracle over the
/// mirror — across the full missing-rate grid.
#[test]
fn interleaved_updates_match_twin_and_rebuild_oracle() {
    for missing_pct in [10u64, 30, 60] {
        let dims = 3;
        let mut rng = Mix(3000 + missing_pct);
        let initial: Vec<Vec<Option<f64>>> = (0..15)
            .map(|_| common::row(&mut rng, dims, missing_pct))
            .collect();
        let ds = Dataset::from_rows(dims, &initial).expect("valid rows");
        let mut next_id = ds.len() as ObjectId;
        let mut mirror = Mirror::seeded(&initial);
        let mut twin = engine_over(ds.clone());
        let (server, mut client) = start(ds);
        for batch in 0..6 {
            let ops: Vec<UpdateOp> = (0..5)
                .map(|_| {
                    let op = random_op(&mut rng, &mirror, dims, missing_pct);
                    apply_to_mirror(&mut mirror, &op, &mut next_id);
                    op
                })
                .collect();
            let ack = client.update(&ops).expect("update batch applies");
            assert_eq!(ack.applied, ops.len() as u64);
            assert_eq!(ack.seq, batch + 1, "seq is the batch ordinal");
            twin.apply_all(&ops).expect("twin applies the same ops");
            assert_eq!(ack.live, twin.len() as u64, "live count parity");
            // One inserted id per insert op, matching the mirror's
            // monotone allocation (ids next_id - inserts .. next_id).
            let inserts = ops
                .iter()
                .filter(|op| matches!(op, UpdateOp::Insert(_) | UpdateOp::InsertLabeled(_, _)))
                .count();
            let want_ids: Vec<u64> =
                (u64::from(next_id) - inserts as u64..u64::from(next_id)).collect();
            assert_eq!(ack.inserted_ids, want_ids, "inserted ids");
            let n = mirror.rows.len();
            let ids = mirror.ids();
            let snap = (n > 0).then(|| mirror.dataset());
            for alg in [Algorithm::Big, Algorithm::Ibig] {
                for k in [0usize, 1, n.saturating_sub(1), n, n + 2] {
                    let got = over_wire(&mut client, k, alg);
                    // Pin 1: the local twin engine fed identical ops.
                    assert_eq!(
                        got,
                        in_process(&mut twin, k, alg),
                        "twin missing={missing_pct} batch={batch} {alg:?} k={k}"
                    );
                    // Pin 2: the rebuild-from-scratch oracle (PR-4
                    // discipline) over the mirror's live rows.
                    let oracle: Vec<(u32, usize)> = match &snap {
                        None => Vec::new(),
                        Some(ds) => TkdQuery::new(k)
                            .algorithm(alg)
                            .run(ds)
                            .iter()
                            .map(|e| (ids[e.id as usize], e.score))
                            .collect(),
                    };
                    assert_eq!(
                        got, oracle,
                        "oracle missing={missing_pct} batch={batch} {alg:?} k={k}"
                    );
                }
            }
        }
        server.stop().expect("clean stop");
    }
}

/// Serve-path edge matrix: k = 0, empty batches, and k ≫ n must come
/// back as well-formed (empty or saturated) responses over the wire.
#[test]
fn edge_cases_over_the_wire() {
    let mut rng = Mix(55);
    let ds = random_dataset(&mut rng, 20, 3, 30);
    let n = ds.len();
    let (server, mut client) = start(ds);
    // k = 0: a well-formed empty result, not an error.
    for alg in [Algorithm::Big, Algorithm::Ibig] {
        assert_eq!(over_wire(&mut client, 0, alg), Vec::new(), "{alg:?} k=0");
    }
    // Empty query_batch: a well-formed empty batch response.
    assert_eq!(
        client.query_batch(&[]).expect("empty batch answers"),
        Vec::<Vec<tkdi::serve::WireEntry>>::new()
    );
    // Batch of only k=0 queries: the right shape, every member empty.
    let zeros = vec![wire_spec(0, Algorithm::Big); 3];
    let got = client.query_batch(&zeros).expect("k=0 batch answers");
    assert_eq!(got, vec![Vec::new(); 3]);
    // k ≫ n saturates at n entries.
    assert_eq!(over_wire(&mut client, n + 100, Algorithm::Big).len(), n);
    // Empty update batch: acked with nothing applied and no seq advance.
    let ack = client.update(&[]).expect("empty update acked");
    assert_eq!((ack.applied, ack.seq), (0, 0));
    server.stop().expect("clean stop");
}

/// Reinterpret a pushed wire notification as the core type so the view
/// can be folded with the same [`apply_notification`] the engine-side
/// parity harness pins.
fn note_to_core(n: &WireNotification) -> Notification {
    let entries = |es: &[tkdi::serve::WireEntry]| -> Vec<ResultEntry> {
        es.iter()
            .map(|e| ResultEntry {
                id: e.id as u32,
                score: e.score as usize,
            })
            .collect()
    };
    Notification {
        id: n.id,
        batch_seq: n.batch_seq,
        added: entries(&n.added),
        removed: n.removed.iter().map(|&id| id as u32).collect(),
        rescored: entries(&n.rescored),
        kth_score: n.kth_score.map(|s| s as usize),
        via_fallback: n.via_fallback,
    }
}

/// Read exactly `n` pushed notifications, failing loudly on a stall.
fn collect_notes(client: &mut Client, n: usize) -> Vec<WireNotification> {
    let mut notes = Vec::new();
    while notes.len() < n {
        match client
            .next_notification(Duration::from_secs(10))
            .expect("notification stream stays healthy")
        {
            Some(note) => notes.push(note),
            None => panic!("timed out at notification {}/{n}", notes.len()),
        }
    }
    notes
}

fn as_pairs(entries: &[ResultEntry]) -> Vec<(u64, u64)> {
    entries
        .iter()
        .map(|e| (u64::from(e.id), e.score as u64))
        .collect()
}

/// Standing wire parity: every pushed notification is field-identical to
/// the one a local twin engine (fed the same ops) produces, and folding
/// the pushes over the subscribe ack reproduces the twin's standing
/// result — across the missing-rate grid.
#[test]
fn standing_subscriptions_match_twin_engine() {
    for missing_pct in [10u64, 30, 60] {
        let dims = 3;
        let mut rng = Mix(7000 + missing_pct);
        let initial: Vec<Vec<Option<f64>>> = (0..14)
            .map(|_| common::row(&mut rng, dims, missing_pct))
            .collect();
        let ds = Dataset::from_rows(dims, &initial).expect("valid rows");
        let mut next_id = ds.len() as ObjectId;
        let mut mirror = Mirror::seeded(&initial);
        let mut twin = engine_over(ds.clone());
        let (server, mut client) = start(ds);
        let specs = [
            StandingSpec::new(3),
            StandingSpec::new(2).algorithm(Algorithm::Ibig),
            StandingSpec::new(5).subspace(vec![0, 2]),
            StandingSpec::new(4).fallback_fraction(0.0),
        ];
        // (wire id, twin id, running view folded from pushes).
        let mut subs: Vec<(u64, u64, Vec<ResultEntry>)> = Vec::new();
        for spec in &specs {
            let ack = client.subscribe(spec).expect("subscribe acked");
            let twin_id = twin.register(spec.clone()).expect("twin registers");
            let twin_initial = twin.standing_result(twin_id).expect("twin tracks");
            assert_eq!(
                ack.result
                    .iter()
                    .map(|e| (e.id, e.score))
                    .collect::<Vec<_>>(),
                as_pairs(twin_initial),
                "missing={missing_pct} initial result in the ack"
            );
            subs.push((ack.id, twin_id, twin_initial.to_vec()));
        }
        for batch in 0..6 {
            let ops: Vec<UpdateOp> = (0..5)
                .map(|_| {
                    let op = random_op(&mut rng, &mirror, dims, missing_pct);
                    apply_to_mirror(&mut mirror, &op, &mut next_id);
                    op
                })
                .collect();
            client.update(&ops).expect("update batch applies");
            let report = twin.apply_ops(&ops);
            assert!(report.error.is_none(), "twin applies the same ops");
            assert_eq!(report.notifications.len(), subs.len());
            let notes = collect_notes(&mut client, subs.len());
            for note in &notes {
                let (_, twin_id, view) = subs
                    .iter_mut()
                    .find(|(wire_id, _, _)| *wire_id == note.id)
                    .expect("push for a known subscription");
                let twin_note = report
                    .notifications
                    .iter()
                    .find(|n| n.id == *twin_id)
                    .expect("twin produced the same notification");
                let mut core = note_to_core(note);
                core.id = twin_note.id; // ids are per-engine; compare the payload
                assert_eq!(
                    &core, twin_note,
                    "missing={missing_pct} batch={batch} notification payload"
                );
                *view = apply_notification(view, &core);
                assert_eq!(
                    as_pairs(view),
                    as_pairs(twin.standing_result(*twin_id).expect("twin tracks")),
                    "missing={missing_pct} batch={batch} folded view"
                );
            }
        }
        // No stray pushes once every expected notification is consumed.
        assert_eq!(
            client
                .next_notification(Duration::from_millis(120))
                .expect("healthy stream"),
            None
        );
        server.stop().expect("clean stop");
    }
}

/// Pushed notifications must not wait for the idle-poll tick: once a
/// connection holds a subscription, the push sink's bell wakes the
/// connection thread, so delivery latency stays well under the 50ms
/// unsubscribed poll interval instead of averaging half of it.
#[test]
fn notifications_beat_the_poll_interval() {
    const POLL: Duration = Duration::from_millis(50);
    let dims = 3;
    let mut rng = Mix(61_000);
    let initial: Vec<Vec<Option<f64>>> = (0..12).map(|_| common::row(&mut rng, dims, 30)).collect();
    let ds = Dataset::from_rows(dims, &initial).expect("valid rows");
    let (server, mut client) = start(ds);
    client
        .subscribe(&StandingSpec::new(3))
        .expect("subscribe acked");
    let rounds = 6;
    let mut total = Duration::ZERO;
    for round in 0..rounds {
        let op = UpdateOp::Insert(common::row(&mut rng, dims, 30));
        client.update(&[op]).expect("insert applies");
        let sent = std::time::Instant::now();
        let note = client
            .next_notification(Duration::from_secs(5))
            .expect("healthy stream")
            .expect("one push per acked batch");
        let latency = sent.elapsed();
        assert_eq!(note.batch_seq, round + 1, "pushes arrive in batch order");
        assert!(
            latency < POLL,
            "round {round}: push took {latency:?}, the old poll-tick worst case"
        );
        total += latency;
    }
    let avg = total / rounds as u32;
    assert!(
        avg < Duration::from_millis(20),
        "average push latency {avg:?} should be far under the 50ms poll"
    );
    server.stop().expect("clean stop");
}

/// Serve-path standing edge matrix: k = 0 subscriptions, duplicate
/// registrations, invalid specs, unsubscribe idempotence, and
/// subscribe-then-delete-everything all behave over the wire.
#[test]
fn standing_edge_matrix_over_the_wire() {
    let dims = 3;
    let mut rng = Mix(55_000);
    let initial: Vec<Vec<Option<f64>>> = (0..10).map(|_| common::row(&mut rng, dims, 30)).collect();
    let ds = Dataset::from_rows(dims, &initial).expect("valid rows");
    let n = ds.len();
    let (server, mut client) = start(ds);

    // k = 0: a valid standing query with an empty result, not an error.
    let zero = client
        .subscribe(&StandingSpec::new(0))
        .expect("k=0 subscribes");
    assert!(zero.result.is_empty(), "k=0 starts empty");

    // Duplicate registration of an identical spec: two independent
    // subscriptions with distinct ids and identical results.
    let a = client.subscribe(&StandingSpec::new(2)).expect("first sub");
    let b = client.subscribe(&StandingSpec::new(2)).expect("duplicate");
    assert_ne!(a.id, b.id, "duplicate registration gets its own id");
    assert_eq!(a.result, b.result, "identical specs agree");

    // Invalid spec: rejected with the typed error, connection unharmed.
    let err = client
        .subscribe(&StandingSpec::new(1).subspace(vec![dims + 5]))
        .expect_err("out-of-range subspace dim is rejected");
    assert!(
        matches!(err, ServeError::Rejected { .. }),
        "typed rejection, got {err:?}"
    );

    // One batch → exactly one notification per live subscription; the
    // k = 0 subscription's is empty with no k-th score.
    client
        .update(&[UpdateOp::Insert(common::row(&mut rng, dims, 30))])
        .expect("insert applies");
    let notes = collect_notes(&mut client, 3);
    let mut ids: Vec<u64> = notes.iter().map(|n| n.id).collect();
    ids.sort_unstable();
    let mut want = vec![zero.id, a.id, b.id];
    want.sort_unstable();
    assert_eq!(ids, want, "one notification per subscription");
    let zn = notes.iter().find(|n| n.id == zero.id).expect("k=0 note");
    assert!(
        zn.added.is_empty() && zn.removed.is_empty() && zn.rescored.is_empty(),
        "k=0 delta stays empty"
    );
    assert_eq!(zn.kth_score, None, "k=0 has no k-th score");

    // Unsubscribe mid-stream: idempotent, and the dropped subscription
    // stops being notified while the others continue.
    assert!(client.unsubscribe(b.id).expect("unsubscribe acked"));
    assert!(
        !client.unsubscribe(b.id).expect("second unsubscribe acked"),
        "double unsubscribe reports unknown, not an error"
    );
    assert!(
        !client.unsubscribe(999_999).expect("unknown id acked"),
        "never-registered id reports unknown"
    );
    client
        .update(&[UpdateOp::Insert(common::row(&mut rng, dims, 30))])
        .expect("insert applies");
    let notes = collect_notes(&mut client, 2);
    let mut ids: Vec<u64> = notes.iter().map(|n| n.id).collect();
    ids.sort_unstable();
    let mut want = vec![zero.id, a.id];
    want.sort_unstable();
    assert_eq!(ids, want, "unsubscribed query is not notified");

    // Subscribe-then-delete-everything: the standing result must drain
    // to empty with no k-th score. Live objects are the 10 seeded rows
    // plus the 2 inserts above (stable ids allocate densely from 0).
    let victims: Vec<UpdateOp> = (0..n as u32 + 2).map(UpdateOp::Delete).collect();
    client.update(&victims).expect("delete-everything applies");
    let note = collect_notes(&mut client, 2)
        .into_iter()
        .find(|note| note.id == a.id)
        .expect("survivor is notified");
    assert_eq!(note.kth_score, None, "no k-th score on an empty engine");
    assert!(note.added.is_empty(), "nothing can enter an empty engine");
    let live = client.stats().expect("stats").live;
    assert_eq!(live, 0, "everything deleted");
    // A fresh identical subscription on the empty engine starts empty —
    // the standing result drained to exactly that.
    let fresh = client
        .subscribe(&StandingSpec::new(2))
        .expect("subscribe on empty engine");
    assert!(fresh.result.is_empty(), "empty engine, empty standing set");
    server.stop().expect("clean stop");
}
