//! The wire-parity gate: every answer the TCP service produces must be
//! **bit-identical** — entries, scores, tie order — to the in-process
//! engines it wraps.
//!
//! Three layers of pinning, in increasing depth:
//! * static: wire queries against a freshly loaded snapshot vs a
//!   [`ParallelEngine`] built over the same dataset, across missing
//!   rates × {BIG, IBIG} × an edge-heavy k grid;
//! * batched: explicit `query_batch` frames vs per-query answers and vs
//!   `ParallelEngine::query_many` (the coalescing path the server uses);
//! * dynamic: interleaved wire update batches vs a local twin engine
//!   *and* the PR-4 rebuild oracle (a from-scratch [`TkdQuery`] over the
//!   mirror's live rows) — the same discipline as
//!   `tests/dynamic_parity.rs`, now crossing a socket.
//!
//! The serve-path edge matrix rides along: empty `query_batch` frames
//! and `k = 0` queries must produce well-formed empty responses over the
//! wire, extending the `edge_matrix` coverage to the network layer.

mod common;

use common::{apply_to_mirror, random_dataset, random_op, Mirror, Mix};
use std::time::Duration;
use tkdi::core::dynamic::{CompactionPolicy, DynamicOptions};
use tkdi::core::{BinChoice, TkdQuery};
use tkdi::prelude::*;
use tkdi::serve::{Client, QuerySpec, ServeConfig, Server};

const BINS: usize = 3;

fn engine_over(ds: Dataset) -> DynamicEngine {
    DynamicEngine::with_options(
        ds,
        DynamicOptions {
            bins: BinChoice::Fixed(BINS),
            policy: CompactionPolicy::default(),
        },
    )
}

fn start(ds: Dataset) -> (Server, Client) {
    let server = Server::start(engine_over(ds), "127.0.0.1:0", ServeConfig::default())
        .expect("server binds");
    let client = Client::connect_with(server.local_addr(), Duration::from_secs(30))
        .expect("client connects");
    (server, client)
}

fn wire_spec(k: usize, alg: Algorithm) -> QuerySpec {
    QuerySpec::new(k).algorithm(alg)
}

/// Wire entries as comparable pairs.
fn over_wire(client: &mut Client, k: usize, alg: Algorithm) -> Vec<(u32, usize)> {
    client
        .query(wire_spec(k, alg))
        .expect("query answers")
        .iter()
        .map(|e| (e.id as u32, e.score as usize))
        .collect()
}

/// In-process entries from a dynamic twin engine.
fn in_process(engine: &mut DynamicEngine, k: usize, alg: Algorithm) -> Vec<(u32, usize)> {
    engine
        .query(&EngineQuery::new(k).algorithm(alg))
        .expect("BIG/IBIG supported")
        .iter()
        .map(|e| (e.id, e.score))
        .collect()
}

/// Static wire parity: the served snapshot answers exactly like a
/// ParallelEngine built over the same dataset, for every grid cell.
#[test]
fn static_queries_match_parallel_engine() {
    for missing_pct in [10u64, 30, 60] {
        let mut rng = Mix(900 + missing_pct);
        let ds = random_dataset(&mut rng, 50, 3, missing_pct);
        let n = ds.len();
        let reference = ParallelEngine::builder(&ds)
            .threads(2)
            .shards(1)
            .bins(vec![BINS; ds.dims()])
            .build();
        let (server, mut client) = start(ds.clone());
        for alg in [Algorithm::Big, Algorithm::Ibig] {
            for k in [0usize, 1, 2, n - 1, n, n + 3] {
                let want: Vec<(u32, usize)> = reference
                    .query(&EngineQuery::new(k).algorithm(alg))
                    .iter()
                    .map(|e| (e.id, e.score))
                    .collect();
                assert_eq!(
                    over_wire(&mut client, k, alg),
                    want,
                    "missing={missing_pct} {alg:?} k={k}"
                );
            }
        }
        server.stop().expect("clean stop");
    }
}

/// Batched wire parity: one `query_batch` frame answers exactly like
/// the same queries sent individually, and like `query_many` in-process.
#[test]
fn query_batch_matches_individual_queries() {
    let mut rng = Mix(17);
    let ds = random_dataset(&mut rng, 60, 4, 30);
    let reference = ParallelEngine::builder(&ds)
        .threads(2)
        .shards(1)
        .bins(vec![BINS; ds.dims()])
        .build();
    let (server, mut client) = start(ds.clone());
    let specs: Vec<QuerySpec> = (0..12)
        .map(|i| {
            wire_spec(
                (i * 5) % 17,
                if i % 2 == 0 {
                    Algorithm::Big
                } else {
                    Algorithm::Ibig
                },
            )
        })
        .collect();
    let batched = client.query_batch(&specs).expect("batch answers");
    assert_eq!(batched.len(), specs.len());
    let queries: Vec<EngineQuery> = specs
        .iter()
        .map(|s| EngineQuery::new(s.k as usize).algorithm(s.algorithm))
        .collect();
    let many = reference.query_many(&queries);
    for (i, spec) in specs.iter().enumerate() {
        let single = client.query(*spec).expect("single query");
        assert_eq!(batched[i], single, "batch[{i}] vs single");
        let want: Vec<(u64, u64)> = many[i]
            .iter()
            .map(|e| (u64::from(e.id), e.score as u64))
            .collect();
        let got: Vec<(u64, u64)> = batched[i].iter().map(|e| (e.id, e.score)).collect();
        assert_eq!(got, want, "batch[{i}] vs query_many");
    }
    server.stop().expect("clean stop");
}

/// Dynamic wire parity: interleave randomized update batches with
/// queries; the served answers stay pinned to a local twin engine fed
/// the identical ops AND to the rebuild-from-scratch oracle over the
/// mirror — across the full missing-rate grid.
#[test]
fn interleaved_updates_match_twin_and_rebuild_oracle() {
    for missing_pct in [10u64, 30, 60] {
        let dims = 3;
        let mut rng = Mix(3000 + missing_pct);
        let initial: Vec<Vec<Option<f64>>> = (0..15)
            .map(|_| common::row(&mut rng, dims, missing_pct))
            .collect();
        let ds = Dataset::from_rows(dims, &initial).expect("valid rows");
        let mut next_id = ds.len() as ObjectId;
        let mut mirror = Mirror::seeded(&initial);
        let mut twin = engine_over(ds.clone());
        let (server, mut client) = start(ds);
        for batch in 0..6 {
            let ops: Vec<UpdateOp> = (0..5)
                .map(|_| {
                    let op = random_op(&mut rng, &mirror, dims, missing_pct);
                    apply_to_mirror(&mut mirror, &op, &mut next_id);
                    op
                })
                .collect();
            let ack = client.update(&ops).expect("update batch applies");
            assert_eq!(ack.applied, ops.len() as u64);
            assert_eq!(ack.seq, batch + 1, "seq is the batch ordinal");
            twin.apply_all(&ops).expect("twin applies the same ops");
            assert_eq!(ack.live, twin.len() as u64, "live count parity");
            // One inserted id per insert op, matching the mirror's
            // monotone allocation (ids next_id - inserts .. next_id).
            let inserts = ops
                .iter()
                .filter(|op| matches!(op, UpdateOp::Insert(_) | UpdateOp::InsertLabeled(_, _)))
                .count();
            let want_ids: Vec<u64> =
                (u64::from(next_id) - inserts as u64..u64::from(next_id)).collect();
            assert_eq!(ack.inserted_ids, want_ids, "inserted ids");
            let n = mirror.rows.len();
            let ids = mirror.ids();
            let snap = (n > 0).then(|| mirror.dataset());
            for alg in [Algorithm::Big, Algorithm::Ibig] {
                for k in [0usize, 1, n.saturating_sub(1), n, n + 2] {
                    let got = over_wire(&mut client, k, alg);
                    // Pin 1: the local twin engine fed identical ops.
                    assert_eq!(
                        got,
                        in_process(&mut twin, k, alg),
                        "twin missing={missing_pct} batch={batch} {alg:?} k={k}"
                    );
                    // Pin 2: the rebuild-from-scratch oracle (PR-4
                    // discipline) over the mirror's live rows.
                    let oracle: Vec<(u32, usize)> = match &snap {
                        None => Vec::new(),
                        Some(ds) => TkdQuery::new(k)
                            .algorithm(alg)
                            .run(ds)
                            .iter()
                            .map(|e| (ids[e.id as usize], e.score))
                            .collect(),
                    };
                    assert_eq!(
                        got, oracle,
                        "oracle missing={missing_pct} batch={batch} {alg:?} k={k}"
                    );
                }
            }
        }
        server.stop().expect("clean stop");
    }
}

/// Serve-path edge matrix: k = 0, empty batches, and k ≫ n must come
/// back as well-formed (empty or saturated) responses over the wire.
#[test]
fn edge_cases_over_the_wire() {
    let mut rng = Mix(55);
    let ds = random_dataset(&mut rng, 20, 3, 30);
    let n = ds.len();
    let (server, mut client) = start(ds);
    // k = 0: a well-formed empty result, not an error.
    for alg in [Algorithm::Big, Algorithm::Ibig] {
        assert_eq!(over_wire(&mut client, 0, alg), Vec::new(), "{alg:?} k=0");
    }
    // Empty query_batch: a well-formed empty batch response.
    assert_eq!(
        client.query_batch(&[]).expect("empty batch answers"),
        Vec::<Vec<tkdi::serve::WireEntry>>::new()
    );
    // Batch of only k=0 queries: the right shape, every member empty.
    let zeros = vec![wire_spec(0, Algorithm::Big); 3];
    let got = client.query_batch(&zeros).expect("k=0 batch answers");
    assert_eq!(got, vec![Vec::new(); 3]);
    // k ≫ n saturates at n entries.
    assert_eq!(over_wire(&mut client, n + 100, Algorithm::Big).len(), n);
    // Empty update batch: acked with nothing applied and no seq advance.
    let ack = client.update(&[]).expect("empty update acked");
    assert_eq!((ack.applied, ack.seq), (0, 0));
    server.stop().expect("clean stop");
}
