//! Deterministic interleaving smoke (shim-level loom): hammer the shared-τ
//! replay merge under real thread contention, many times over, on a
//! tie-heavy dataset where the merge order genuinely matters, and assert
//! the result is *bit-identical* to the sequential engines every single
//! iteration — the shared-τ merge must never lose, duplicate, or reorder
//! a result whatever the interleaving.
//!
//! (True loom model-checking would need the loom crate; this offline
//! workspace approximates it by brute-forcing real schedules: 4
//! oversubscribed threads × many iterations × a queue dominated by equal
//! `MaxScore` ties maximizes merge/score races.)

use tkdi::core::{big, ibig, Algorithm, EngineQuery, ParallelEngine};
use tkdi::model::Dataset;

/// Tie-heavy dataset: tiny cardinality so scores collide massively and
/// the TopK threshold is contested at every offer.
fn tie_heavy(n: usize) -> Dataset {
    let mut rows = Vec::with_capacity(n);
    for i in 0..n {
        rows.push(vec![
            Some((i % 3) as f64),
            Some(((i / 3) % 3) as f64),
            (i % 7 != 0).then_some((i % 2) as f64),
        ]);
    }
    Dataset::from_rows(3, &rows).unwrap()
}

const ITERATIONS: usize = 60;

#[test]
fn replay_merge_is_deterministic_under_contention() {
    let ds = tie_heavy(320);
    let seq_big = big::BigContext::build(&ds);
    let bins = vec![2usize; ds.dims()];
    let seq_ibig: ibig::IbigContext<'_> = ibig::IbigContext::build(&ds, &bins);
    let engine = ParallelEngine::builder(&ds)
        .threads(4)
        .shards(3)
        .bins(bins)
        .build();
    // k = 8 sits in the middle of a large tie group — the adversarial
    // spot for threshold races; k = 1 and k = n exercise the extremes.
    for k in [1usize, 8, ds.len()] {
        let want_big = big::big_with(&seq_big, k);
        let want_ibig = ibig::ibig_with(&seq_ibig, k);
        for it in 0..ITERATIONS {
            let got = engine.query(&EngineQuery::new(k).algorithm(Algorithm::Big));
            assert_eq!(
                got.entries(),
                want_big.entries(),
                "BIG k={k} iteration {it}"
            );
            let got = engine.query(&EngineQuery::new(k).algorithm(Algorithm::Ibig));
            assert_eq!(
                got.entries(),
                want_ibig.entries(),
                "IBIG k={k} iteration {it}"
            );
        }
    }
}

#[test]
fn query_many_never_loses_or_duplicates_results() {
    let ds = tie_heavy(256);
    let engine = ParallelEngine::builder(&ds).threads(4).shards(4).build();
    let batch: Vec<EngineQuery> = (0..16)
        .map(|i| {
            EngineQuery::new(1 + i * 3).algorithm(if i % 2 == 0 {
                Algorithm::Big
            } else {
                Algorithm::Ibig
            })
        })
        .collect();
    let reference: Vec<_> = batch.iter().map(|q| engine.query(q)).collect();
    for it in 0..ITERATIONS {
        let got = engine.query_many(&batch);
        assert_eq!(got.len(), batch.len(), "iteration {it}");
        for ((q, r), want) in batch.iter().zip(&got).zip(&reference) {
            assert_eq!(
                r.entries(),
                want.entries(),
                "iteration {it} k={} {:?}",
                q.k,
                q.algorithm
            );
            // No id may appear twice, and the result is exactly k (or n).
            let mut ids = r.ids();
            ids.sort_unstable();
            ids.dedup();
            assert_eq!(ids.len(), r.len(), "duplicated id, iteration {it}");
            assert_eq!(r.len(), q.k.min(ds.len()), "lost result, iteration {it}");
        }
    }
}
