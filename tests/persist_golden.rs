//! Golden-file compatibility pin for the snapshot format.
//!
//! `tests/golden/fig3.tkdsnap` is a committed v1 snapshot of the
//! paper's Fig. 3 running example. This suite documents the format's
//! compatibility policy:
//!
//! * **Stability** — today's writer re-serializes the loaded golden file
//!   byte-identically. Any codec change that alters the byte layout
//!   fails here and must come with a format-version bump (and a fresh
//!   golden file).
//! * **Semantics** — loading the golden file reproduces the paper's T2D
//!   answer `{A2, C2}` at score 16.
//! * **Version gate** — a snapshot stamped with any other format version
//!   fails with [`StoreError::VersionMismatch`], never a partial load:
//!   v1 has no migration path; snapshots are caches, rebuilt with
//!   `tkdq build`.
//!
//! To regenerate after an intentional format change:
//! `cargo test --test persist_golden regenerate_golden -- --ignored`

use tkdi::model::fixtures;
use tkdi::prelude::*;
use tkdi::store::{self, StoreError, FORMAT_VERSION};

const GOLDEN: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/fig3.tkdsnap");

#[test]
fn golden_loads_and_reproduces_fig3_answer() {
    let mut engine = store::load_engine(GOLDEN).expect("golden snapshot loads");
    assert_eq!(engine.len(), 20);
    let r = engine.query(&EngineQuery::new(2)).expect("BIG supported");
    let mut labels: Vec<String> = r
        .iter()
        .map(|e| engine.label(e.id).unwrap().unwrap().to_string())
        .collect();
    labels.sort();
    assert_eq!(labels, ["A2", "C2"]);
    assert_eq!(r.kth_score(), Some(16));
    // IBIG agrees bit for bit.
    let i = engine
        .query(&EngineQuery::new(2).algorithm(Algorithm::Ibig))
        .expect("IBIG supported");
    assert_eq!(i.entries(), r.entries());
}

#[test]
fn golden_reserializes_byte_identically() {
    let bytes = std::fs::read(GOLDEN).expect("golden file present");
    let mut engine = store::decode_engine(&bytes).expect("golden snapshot loads");
    assert_eq!(
        store::encode_engine(&mut engine),
        bytes,
        "byte layout changed: bump FORMAT_VERSION and regenerate the golden file \
         (see the module docs)"
    );
}

#[test]
fn version_bump_fails_with_clean_mismatch() {
    let mut bytes = std::fs::read(GOLDEN).expect("golden file present");
    let bumped = FORMAT_VERSION + 1;
    bytes[8..12].copy_from_slice(&bumped.to_le_bytes());
    match store::decode_engine(&bytes) {
        Err(StoreError::VersionMismatch { found, expected }) => {
            assert_eq!(found, bumped);
            assert_eq!(expected, FORMAT_VERSION);
        }
        other => panic!("expected VersionMismatch, got {other:?}"),
    }
    // The message tells the operator what to do.
    let msg = store::decode_engine(&bytes).unwrap_err().to_string();
    assert!(msg.contains("tkdq build"), "unhelpful message: {msg}");
}

/// Not a test: regenerates the golden file after an intentional format
/// change. Run with `-- --ignored` and commit the result.
#[test]
#[ignore = "writes tests/golden/fig3.tkdsnap; run only on intentional format changes"]
fn regenerate_golden() {
    let mut engine = DynamicEngine::new(fixtures::fig3_sample());
    let written = store::save_engine(GOLDEN, &mut engine).expect("write golden");
    println!("regenerated {GOLDEN} ({written} bytes)");
}
