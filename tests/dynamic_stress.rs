//! Churn stress for the dynamic update subsystem: long mixed op streams,
//! delete-everything/regrow cycles, compaction thrash, and interleaved
//! multi-threaded queries. Spot-checks against the rebuild oracle at
//! checkpoints (the exhaustive per-batch gate lives in
//! `tests/dynamic_parity.rs`); between checkpoints it asserts the cheap
//! invariants on every step.

use tkdi::core::dynamic::{CompactionPolicy, DynamicOptions};
use tkdi::core::{BinChoice, TkdQuery};
use tkdi::prelude::*;

struct Mix(u64);

impl Mix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }
}

fn row(rng: &mut Mix, dims: usize) -> Vec<Option<f64>> {
    loop {
        let r: Vec<Option<f64>> = (0..dims)
            .map(|_| {
                if rng.next().is_multiple_of(5) {
                    None
                } else {
                    Some((rng.next() % 8) as f64)
                }
            })
            .collect();
        if r.iter().any(Option::is_some) {
            return r;
        }
    }
}

fn oracle_entries(engine: &DynamicEngine, k: usize, alg: Algorithm) -> Vec<(ObjectId, usize)> {
    if engine.is_empty() {
        return Vec::new();
    }
    let snap = engine.snapshot();
    let ids = engine.live_ids();
    TkdQuery::new(k)
        .algorithm(alg)
        .run(&snap)
        .iter()
        .map(|e| (ids[e.id as usize], e.score))
        .collect()
}

#[test]
fn sustained_churn_with_compaction() {
    let dims = 4;
    let mut rng = Mix(99);
    let initial: Vec<Vec<Option<f64>>> = (0..80).map(|_| row(&mut rng, dims)).collect();
    let mut engine = DynamicEngine::with_options(
        Dataset::from_rows(dims, &initial).unwrap(),
        DynamicOptions {
            bins: BinChoice::Fixed(4),
            policy: CompactionPolicy {
                max_tombstone_fraction: 0.3,
                min_dead: 16,
            },
        },
    );
    let mut live: Vec<ObjectId> = engine.live_ids();
    let mut expected_len = live.len();
    for step in 0..400 {
        match rng.next() % 10 {
            0..=3 if !live.is_empty() => {
                let pick = (rng.next() as usize) % live.len();
                let id = live.swap_remove(pick);
                engine.delete(id).expect("live id");
                expected_len -= 1;
            }
            4..=5 if !live.is_empty() => {
                let id = live[(rng.next() as usize) % live.len()];
                let dim = (rng.next() as usize) % dims;
                // Only send updates that keep the row valid.
                let observed: Vec<usize> = (0..dims)
                    .filter(|&d| engine.value(id, d).unwrap().is_some())
                    .collect();
                let nv = if rng.next().is_multiple_of(4) {
                    None
                } else {
                    Some((rng.next() % 8) as f64)
                };
                if nv.is_some() || observed != vec![dim] {
                    engine.update_value(id, dim, nv).expect("valid update");
                }
            }
            _ => {
                let id = engine.insert(&row(&mut rng, dims)).expect("valid row");
                live.push(id);
                expected_len += 1;
            }
        }
        assert_eq!(engine.len(), expected_len, "step {step}");
        // Interleaved queries must never fail or return dead ids.
        if step % 7 == 0 {
            let r = engine
                .query_threads(&EngineQuery::new(5), 2)
                .expect("BIG supported");
            for e in r.iter() {
                assert!(
                    engine.contains(e.id),
                    "step {step}: dead id {} returned",
                    e.id
                );
            }
        }
        // Oracle checkpoint.
        if step % 57 == 0 || step == 399 {
            for alg in [Algorithm::Big, Algorithm::Ibig] {
                for threads in [1usize, 2] {
                    let got: Vec<(ObjectId, usize)> = engine
                        .query_threads(&EngineQuery::new(9).algorithm(alg), threads)
                        .unwrap()
                        .iter()
                        .map(|e| (e.id, e.score))
                        .collect();
                    assert_eq!(
                        got,
                        oracle_entries(&engine, 9, alg),
                        "step {step} {alg:?} threads={threads}"
                    );
                }
            }
        }
    }
    assert!(engine.epoch() > 0, "churn at 30 % threshold must compact");
    assert!(engine.stats().compactions > 0);
}

#[test]
fn drain_and_regrow_cycles() {
    let dims = 2;
    let mut rng = Mix(7);
    let mut engine = DynamicEngine::with_options(
        Dataset::from_rows(dims, &[vec![Some(1.0), Some(1.0)]]).unwrap(),
        DynamicOptions {
            bins: BinChoice::Auto,
            policy: CompactionPolicy {
                max_tombstone_fraction: 0.5,
                min_dead: 8,
            },
        },
    );
    for cycle in 0..4 {
        // Drain to empty, one object at a time, querying along the way.
        while !engine.is_empty() {
            let ids = engine.live_ids();
            engine
                .delete(ids[(rng.next() as usize) % ids.len()])
                .unwrap();
            let r = engine.query(&EngineQuery::new(3)).unwrap();
            assert_eq!(
                r.iter().map(|e| (e.id, e.score)).collect::<Vec<_>>(),
                oracle_entries(&engine, 3, Algorithm::Big),
                "cycle {cycle} during drain"
            );
        }
        assert!(engine.query(&EngineQuery::new(5)).unwrap().is_empty());
        // Regrow bigger than before.
        for _ in 0..(10 + cycle * 5) {
            engine.insert(&row(&mut rng, dims)).unwrap();
        }
        for alg in [Algorithm::Big, Algorithm::Ibig] {
            let got: Vec<(ObjectId, usize)> = engine
                .query_threads(&EngineQuery::new(6).algorithm(alg), 2)
                .unwrap()
                .iter()
                .map(|e| (e.id, e.score))
                .collect();
            assert_eq!(
                got,
                oracle_entries(&engine, 6, alg),
                "cycle {cycle} after regrow {alg:?}"
            );
        }
    }
}
