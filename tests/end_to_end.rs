//! End-to-end pipelines: generate → (inject missingness) → index → query →
//! cross-check across algorithms, datasets and mechanisms.

use tkdi::data::missing;
use tkdi::data::simulators::{movielens_like_with, nba_like_with, zillow_like_with};
use tkdi::data::synthetic::{generate, Distribution, SyntheticConfig};
use tkdi::impute::{factorize_impute, jaccard_distance, FactorizationConfig};
use tkdi::prelude::*;

fn assert_all_algorithms_agree(ds: &Dataset, k: usize, tag: &str) {
    let reference = TkdQuery::new(k).algorithm(Algorithm::Naive).run(ds);
    for alg in [
        Algorithm::Esb,
        Algorithm::Ubb,
        Algorithm::Big,
        Algorithm::Ibig,
    ] {
        let r = TkdQuery::new(k).algorithm(alg).run(ds);
        assert_eq!(
            r.scores(),
            reference.scores(),
            "{tag}: {alg:?} diverges at k={k}"
        );
    }
}

/// The paper's Fig. 3 running example, pinned across every algorithm:
/// T2D over the 20-object sample returns {A2, C2}, both with score 16.
/// This is the parity baseline optimization PRs must preserve.
#[test]
fn fig3_running_example_all_five_algorithms() {
    let ds = tkdi::model::fixtures::fig3_sample();
    for alg in Algorithm::ALL {
        let r = TkdQuery::new(2).algorithm(alg).run(&ds);
        let mut labels: Vec<_> = r.iter().map(|e| ds.label(e.id).unwrap()).collect();
        labels.sort_unstable();
        assert_eq!(labels, vec!["A2", "C2"], "{alg:?} answer set");
        assert_eq!(r.scores(), vec![16, 16], "{alg:?} scores");
    }
    for k in 1..=20 {
        assert_all_algorithms_agree(&ds, k, "fig3");
    }
}

#[test]
fn synthetic_distributions_end_to_end() {
    for dist in [
        Distribution::Independent,
        Distribution::AntiCorrelated,
        Distribution::Correlated,
    ] {
        for sigma in [0.0, 0.2, 0.5] {
            let ds = generate(&SyntheticConfig {
                n: 300,
                dims: 4,
                cardinality: 20,
                missing_rate: sigma,
                distribution: dist,
                seed: 5,
            });
            assert_all_algorithms_agree(&ds, 8, &format!("{dist:?}/σ={sigma}"));
        }
    }
}

#[test]
fn simulator_workloads_end_to_end() {
    let movielens = movielens_like_with(200, 12, 3);
    assert_all_algorithms_agree(&movielens, 5, "movielens");
    let nba = nba_like_with(300, 3);
    assert_all_algorithms_agree(&nba, 5, "nba");
    let zillow = zillow_like_with(300, 3);
    assert_all_algorithms_agree(&zillow, 5, "zillow");
}

#[test]
fn missingness_mechanisms_end_to_end() {
    let complete = generate(&SyntheticConfig {
        n: 250,
        dims: 4,
        cardinality: 15,
        missing_rate: 0.0,
        distribution: Distribution::Independent,
        seed: 11,
    });
    for (name, ds) in [
        ("mcar", missing::mcar(&complete, 0.3, 1)),
        ("mar", missing::mar(&complete, 0.2, 1)),
        ("nmar", missing::nmar(&complete, 0.2, 1)),
    ] {
        assert_all_algorithms_agree(&ds, 6, name);
    }
}

#[test]
fn edge_cases() {
    // Single object.
    let one = Dataset::from_rows(2, &[vec![Some(1.0), None]]).unwrap();
    for alg in Algorithm::ALL {
        let r = TkdQuery::new(3).algorithm(alg).run(&one);
        assert_eq!(r.len(), 1, "{alg:?}");
        assert_eq!(r.scores(), vec![0], "{alg:?}");
    }
    // k = 0.
    let ds = tkdi::model::fixtures::fig3_sample();
    for alg in Algorithm::ALL {
        assert!(
            TkdQuery::new(0).algorithm(alg).run(&ds).is_empty(),
            "{alg:?}"
        );
    }
    // All objects identical: everyone ties, all scores zero.
    let dup = Dataset::from_rows(2, &vec![vec![Some(1.0), Some(2.0)]; 10]).unwrap();
    for alg in Algorithm::ALL {
        let r = TkdQuery::new(4).algorithm(alg).run(&dup);
        assert_eq!(r.scores(), vec![0; 4], "{alg:?}");
    }
    // Fully pairwise-incomparable dataset (disjoint masks).
    let inc = Dataset::from_rows(2, &[vec![Some(1.0), None], vec![None, Some(1.0)]]).unwrap();
    for alg in Algorithm::ALL {
        let r = TkdQuery::new(2).algorithm(alg).run(&inc);
        assert_eq!(r.scores(), vec![0, 0], "{alg:?}");
    }
}

#[test]
fn table4_style_comparison_small() {
    // Miniature of the paper's Table 4: the incomplete answer and the
    // imputation-based answer share a majority of objects (DJ < 2/3).
    let ds = nba_like_with(600, 21);
    let imputed = factorize_impute(&ds, &FactorizationConfig::default());
    for k in [4usize, 8, 16] {
        let a = TkdQuery::new(k).algorithm(Algorithm::Ubb).run(&ds).ids();
        let b = TkdQuery::new(k)
            .algorithm(Algorithm::Ubb)
            .run(&imputed)
            .ids();
        let dj = jaccard_distance(&a, &b);
        assert!(
            dj < 2.0 / 3.0,
            "k={k}: DJ={dj} — answers should share a majority of objects"
        );
    }
}

#[test]
fn preprocessing_contexts_are_reusable() {
    use tkdi::core::{big::big_with, big::BigContext, ibig::ibig_with, ibig::IbigContext};
    let ds = nba_like_with(400, 9);
    let ctx = BigContext::build(&ds);
    let ictx: IbigContext<'_> = IbigContext::build_auto(&ds);
    for k in [1usize, 4, 16] {
        let reference = TkdQuery::new(k).algorithm(Algorithm::Naive).run(&ds);
        assert_eq!(big_with(&ctx, k).scores(), reference.scores());
        assert_eq!(ibig_with(&ictx, k).scores(), reference.scores());
    }
}

#[test]
fn facade_prelude_compiles_and_runs() {
    let ds = tkdi::model::fixtures::fig2_points();
    let r: TkdResult = TkdQuery::new(1).run(&ds);
    let _: Vec<ObjectId> = r.ids();
    let _: DimMask = ds.mask(0);
}
