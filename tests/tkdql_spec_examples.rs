//! The TKDQL spec harness: every fenced ` ```tkdql ` example in
//! `docs/TKDQL.md` is extracted and executed against the paper's Fig. 3
//! dataset, and its output is compared to the expectation block that
//! follows it in the document. The language spec is therefore a test —
//! if the document and the implementation disagree, this fails.
//!
//! Expectation kinds (see the doc's preamble):
//! - ` ```result `  — exact ranked `LABEL SCORE` lines
//! - ` ```explain ` — each line is a required substring of the rendering
//! - ` ```error `   — a required substring of the diagnostic

use tkdi::model::fixtures;
use tkdi::ql;

#[derive(Debug)]
enum Expect {
    Result(Vec<(String, u64)>),
    Explain(Vec<String>),
    Error(String),
}

struct Example {
    stmt: String,
    expect: Expect,
    line: usize,
}

fn spec_text() -> String {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/docs/TKDQL.md");
    std::fs::read_to_string(path).expect("docs/TKDQL.md exists")
}

/// Pull out each tkdql block and the next fenced block as its
/// expectation. Panics (failing the test) on a tkdql block with no
/// expectation — an example that asserts nothing is a spec bug.
fn extract(md: &str) -> Vec<Example> {
    let lines: Vec<&str> = md.lines().collect();
    let mut examples = Vec::new();
    let mut i = 0;
    while i < lines.len() {
        if lines[i].trim() != "```tkdql" {
            i += 1;
            continue;
        }
        let start = i + 1;
        let mut j = start;
        while j < lines.len() && lines[j].trim() != "```" {
            j += 1;
        }
        let stmt = lines[start..j].join("\n");
        // The next fence must be this example's expectation.
        let mut k = j + 1;
        while k < lines.len() && !lines[k].trim().starts_with("```") {
            k += 1;
        }
        let tag = lines
            .get(k)
            .unwrap_or_else(|| panic!("line {}: tkdql example has no expectation", start + 1))
            .trim()
            .trim_start_matches("```")
            .to_string();
        let body_start = k + 1;
        let mut end = body_start;
        while end < lines.len() && lines[end].trim() != "```" {
            end += 1;
        }
        let body: Vec<String> = lines[body_start..end]
            .iter()
            .map(|l| l.to_string())
            .collect();
        let expect = match tag.as_str() {
            "result" => Expect::Result(
                body.iter()
                    .filter(|l| !l.trim().is_empty())
                    .map(|l| {
                        let mut parts = l.split_whitespace();
                        let label = parts.next().expect("label").to_string();
                        let score: u64 = parts
                            .next()
                            .and_then(|s| s.parse().ok())
                            .unwrap_or_else(|| panic!("line {}: bad result line {l:?}", start + 1));
                        (label, score)
                    })
                    .collect(),
            ),
            "explain" => {
                Expect::Explain(body.into_iter().filter(|l| !l.trim().is_empty()).collect())
            }
            "error" => Expect::Error(body.join("\n").trim().to_string()),
            other => panic!(
                "line {}: expectation fence ```{other} is not result/explain/error",
                k + 1
            ),
        };
        examples.push(Example {
            stmt,
            expect,
            line: start + 1,
        });
        i = end + 1;
    }
    examples
}

#[test]
fn every_spec_example_executes_as_documented() {
    let ds = fixtures::fig3_sample();
    let examples = extract(&spec_text());
    assert!(
        examples.len() >= 10,
        "the spec must carry at least 10 worked examples, found {}",
        examples.len()
    );
    for ex in &examples {
        let where_ = format!("docs/TKDQL.md:{} `{}`", ex.line, ex.stmt);
        let outcome =
            ql::compile(&ex.stmt, ds.dims()).and_then(|plan| ql::run_on_dataset(&plan, &ds));
        match (&ex.expect, outcome) {
            (Expect::Result(want), Ok(ql::Outcome::Rows(result))) => {
                let got: Vec<(String, u64)> = result
                    .iter()
                    .map(|e| {
                        (
                            ds.label(e.id).expect("fig3 is labeled").to_string(),
                            e.score as u64,
                        )
                    })
                    .collect();
                assert_eq!(&got, want, "{where_}");
            }
            (Expect::Explain(needles), Ok(ql::Outcome::Explain(rendered))) => {
                for needle in needles {
                    assert!(
                        rendered.contains(needle.trim_end()),
                        "{where_}: rendering lacks {needle:?}\n--- rendering ---\n{rendered}"
                    );
                }
            }
            (Expect::Error(needle), Err(e)) => {
                assert!(
                    e.message.contains(needle) || e.to_string().contains(needle),
                    "{where_}: diagnostic {e} lacks {needle:?}"
                );
            }
            (expect, outcome) => panic!(
                "{where_}: expected {expect:?}, got {}",
                match outcome {
                    Ok(ql::Outcome::Rows(r)) => format!("rows ({} entries)", r.len()),
                    Ok(ql::Outcome::Explain(_)) => "an explain rendering".into(),
                    Ok(ql::Outcome::Subscribed { .. }) => "a subscription".into(),
                    Err(e) => format!("error: {e}"),
                }
            ),
        }
    }
}

#[test]
fn spec_grammar_matches_the_parser_reference() {
    // The EBNF in docs/TKDQL.md and the reference grammar in the parser
    // rustdoc must state the same productions for the load-bearing
    // rules. (Spelling differs — the doc inlines the subscribe wrapper —
    // so compare rule bodies that are verbatim in both.)
    let spec = spec_text();
    let parser_src = include_str!("../crates/tkd-ql/src/parser.rs");
    for rule in [
        "predicate   = dim ( cmp expr | \"BETWEEN\" expr \"AND\" expr ) ;",
        "cmp         = \"<\" | \"<=\" | \">\" | \">=\" | \"=\" ;",
        "expr        = term { (\"+\"|\"-\") term } ;",
        "term        = factor { (\"*\"|\"/\") factor } ;",
        "factor      = [ \"-\" ] ( number | \"(\" expr \")\" ) ;",
        "algorithm   = \"NAIVE\" | \"ESB\" | \"UBB\" | \"BIG\" | \"IBIG\" ;",
    ] {
        assert!(spec.contains(rule), "spec lacks rule {rule:?}");
        assert!(
            parser_src.contains(rule),
            "parser reference grammar lacks rule {rule:?}"
        );
    }
}
