//! Cross-crate validation against every worked example in the paper,
//! exercised through the public facade.

use tkdi::core::{big, esb, maxscore};
use tkdi::index::{cost, BinnedBitmapIndex, BitmapIndex};
use tkdi::model::fixtures;
use tkdi::prelude::*;

#[test]
fn fig1_movie_recommender_scores() {
    // §1: score(m2)=2, score(m4)=1, score(m1)=score(m3)=0; m2 ≻ m3.
    let ds = fixtures::fig1_movies();
    let score = |l: &str| tkdi::model::dominance::score_of(&ds, ds.id_by_label(l).unwrap());
    assert_eq!(score("m1"), 0);
    assert_eq!(score("m2"), 2);
    assert_eq!(score("m3"), 0);
    assert_eq!(score("m4"), 1);
    let r = TkdQuery::new(1).run(&ds);
    assert_eq!(ds.label(r.ids()[0]), Some("m2"));
}

#[test]
fn fig2_t1d_returns_f_for_every_algorithm() {
    let ds = fixtures::fig2_points();
    let f = ds.id_by_label("f").unwrap();
    for alg in Algorithm::ALL {
        let r = TkdQuery::new(1).algorithm(alg).run(&ds);
        assert_eq!(r.ids(), vec![f], "{alg:?}");
        assert_eq!(r.scores(), vec![3], "{alg:?}");
    }
}

#[test]
fn fig3_t2d_returns_a2_c2_for_every_algorithm() {
    let ds = fixtures::fig3_sample();
    for alg in Algorithm::ALL {
        let r = TkdQuery::new(2).algorithm(alg).run(&ds);
        let mut labels: Vec<_> = r.iter().map(|e| ds.label(e.id).unwrap()).collect();
        labels.sort_unstable();
        assert_eq!(labels, vec!["A2", "C2"], "{alg:?}");
        assert_eq!(r.scores(), vec![16, 16], "{alg:?}");
    }
}

#[test]
fn fig4_esb_candidates() {
    let ds = fixtures::fig3_sample();
    let got: Vec<&str> = esb::esb_candidates(&ds, 2)
        .into_iter()
        .map(|o| ds.label(o).unwrap())
        .collect();
    assert_eq!(got, fixtures::fig4_esb_candidates());
}

#[test]
fn fig5_priority_queue() {
    let ds = fixtures::fig3_sample();
    let got: Vec<(&str, usize)> = maxscore::maxscore_queue(&ds)
        .into_iter()
        .map(|(o, s)| (ds.label(o).unwrap(), s))
        .collect();
    assert_eq!(got, fixtures::fig5_maxscores());
}

#[test]
fn fig6_bitmap_index_shape() {
    // Σ(Ci + 1)·N with C = (4,5,6,7) on the sample dataset.
    let ds = fixtures::fig3_sample();
    let idx = BitmapIndex::build(&ds);
    assert_eq!(idx.size_bits(), (5 + 6 + 7 + 8) * 20);
}

#[test]
fn fig8_max_bit_scores_via_facade() {
    let ds = fixtures::fig3_sample();
    let mbs = big::max_bit_scores(&ds);
    for (label, expected) in fixtures::fig8_maxbitscores() {
        assert_eq!(
            mbs[ds.id_by_label(label).unwrap() as usize],
            expected,
            "{label}"
        );
    }
}

#[test]
fn fig9_binned_index_first_dimension() {
    // §4.4's worked binning: dim 1 with x=2 → bins {2} and {3,4,5}; D4
    // encodes into the second bin ("110" in the paper's horizontal view).
    let ds = fixtures::fig3_sample();
    let idx = BinnedBitmapIndex::build(&ds, &[2, 2, 3, 3]);
    assert_eq!(idx.num_bins(0), 2);
    assert_eq!(idx.bin_upper(0, 1), 2.0);
    assert_eq!(idx.bin_upper(0, 2), 5.0);
    assert_eq!(idx.bin_of(ds.id_by_label("D4").unwrap(), 0), Some(2));
}

#[test]
fn section_4_5_optimal_bins() {
    assert_eq!(cost::optimal_bins(100_000, 0.1), 29);
    assert_eq!(cost::optimal_bins(16_000, 0.2), 17);
}

#[test]
fn example_2_ubb_early_termination() {
    // §4.2 Example 2: exactly two objects evaluated before Heuristic 1
    // stops the scan at B2.
    let ds = fixtures::fig3_sample();
    let r = TkdQuery::new(2).algorithm(Algorithm::Ubb).run(&ds);
    assert_eq!(r.stats.scored, 2);
    assert_eq!(r.stats.h1_pruned, 18);
}

#[test]
fn lemma_chain_score_le_maxbitscore_le_maxscore() {
    let ds = fixtures::fig3_sample();
    let ms = maxscore::max_scores(&ds);
    let mbs = big::max_bit_scores(&ds);
    for o in ds.ids() {
        let s = tkdi::model::dominance::score_of(&ds, o);
        assert!(s <= mbs[o as usize], "score ≤ MaxBitScore ({o})");
        assert!(
            mbs[o as usize] <= ms[o as usize],
            "MaxBitScore ≤ MaxScore ({o})"
        );
    }
}

#[test]
fn nontransitivity_fig2() {
    use tkdi::model::dominance::dominates;
    let ds = fixtures::fig2_points();
    let id = |l: &str| ds.id_by_label(l).unwrap();
    assert!(dominates(&ds, id("f"), id("e")));
    assert!(dominates(&ds, id("e"), id("b")));
    assert!(!dominates(&ds, id("f"), id("b")));
}
