//! Shared test-support for the integration suites: the deterministic
//! dataset/op-sequence generators every differential harness uses.
//!
//! One copy of the splitmix recipe, the tie-heavy cell distribution, the
//! mirror bookkeeping, and the random-op generator — previously
//! duplicated across `dynamic_parity.rs`, `parallel_parity.rs`, and
//! `persist_parity.rs`, now imported with `mod common;`. Keeping the
//! generators identical across suites matters: the serve-layer tests
//! replay the *same* distributions the in-process oracles were hardened
//! on, so a wire-layer divergence cannot hide behind a workload skew.

// Each integration test binary compiles its own copy of this module and
// uses a different subset of it.
#![allow(dead_code)]

use tkdi::prelude::*;

/// Splitmix-style deterministic stream (the harness convention; no RNG
/// dependency).
pub struct Mix(pub u64);

impl Mix {
    pub fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    pub fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

/// A random cell: mostly small integers (tie-heavy), some halves, some
/// signed zeros, `None` with probability `missing_pct`.
pub fn cell(rng: &mut Mix, missing_pct: u64) -> Option<f64> {
    if rng.next() % 100 < missing_pct {
        return None;
    }
    Some(match rng.next() % 10 {
        0 => -0.0,
        1 => 0.0,
        m => (rng.next() % 7) as f64 + if m == 2 { 0.5 } else { 0.0 },
    })
}

/// A random row with at least one observed cell (all-missing rows are
/// invalid by Definition 1 and rejected by the engine).
pub fn row(rng: &mut Mix, dims: usize, missing_pct: u64) -> Vec<Option<f64>> {
    loop {
        let r: Vec<Option<f64>> = (0..dims).map(|_| cell(rng, missing_pct)).collect();
        if r.iter().any(Option::is_some) {
            return r;
        }
    }
}

/// A whole random dataset from the same cell distribution.
pub fn random_dataset(rng: &mut Mix, n: usize, dims: usize, missing_pct: u64) -> Dataset {
    let rows: Vec<Vec<Option<f64>>> = (0..n).map(|_| row(rng, dims, missing_pct)).collect();
    Dataset::from_rows(dims, &rows).expect("rows are valid")
}

/// Deterministic incomplete dataset with a bounded value domain — the
/// parallel-grid flavor (`card` distinct values per dimension).
pub fn synth(seed: u64, n: usize, d: usize, card: u64, missing_pct: u64) -> Dataset {
    let mut rng = Mix(seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1));
    let mut rows = Vec::with_capacity(n);
    while rows.len() < n {
        let r: Vec<Option<f64>> = (0..d)
            .map(|_| {
                if rng.next() % 100 < missing_pct {
                    None
                } else {
                    Some((rng.next() % card) as f64)
                }
            })
            .collect();
        if r.iter().any(Option::is_some) {
            rows.push(r);
        }
    }
    Dataset::from_rows(d, &rows).expect("rows are valid")
}

/// The harness's independent expectation: live rows in insertion order.
/// It never trusts the engine's bookkeeping — parity checks compare the
/// engine *against* this.
pub struct Mirror {
    pub rows: Vec<(ObjectId, Vec<Option<f64>>)>,
}

impl Mirror {
    /// Seed a mirror from the initial rows (ids 0..n in order).
    pub fn seeded(initial: &[Vec<Option<f64>>]) -> Mirror {
        Mirror {
            rows: initial
                .iter()
                .enumerate()
                .map(|(i, r)| (i as ObjectId, r.clone()))
                .collect(),
        }
    }

    /// The live rows as a fresh dataset (rebuild-oracle input).
    pub fn dataset(&self) -> Dataset {
        let rows: Vec<Vec<Option<f64>>> = self.rows.iter().map(|(_, r)| r.clone()).collect();
        Dataset::from_rows(self.rows.first().map_or(1, |(_, r)| r.len()), &rows)
            .expect("mirror rows are valid")
    }

    /// Live stable ids in insertion order.
    pub fn ids(&self) -> Vec<ObjectId> {
        self.rows.iter().map(|&(id, _)| id).collect()
    }
}

/// One random op that is guaranteed valid against the mirror's current
/// state (live ids only, never an all-missing row).
pub fn random_op(rng: &mut Mix, mirror: &Mirror, dims: usize, missing_pct: u64) -> UpdateOp {
    let die = rng.next() % 10;
    if mirror.rows.is_empty() || die >= 5 {
        return UpdateOp::Insert(row(rng, dims, missing_pct));
    }
    let (id, r) = &mirror.rows[rng.below(mirror.rows.len())];
    if die < 2 {
        return UpdateOp::Delete(*id);
    }
    // Cell update; avoid producing an all-missing row (the engine rejects
    // it, and the harness only sends valid ops).
    let dim = rng.below(dims);
    let nv = cell(rng, missing_pct);
    let observed_elsewhere = r.iter().enumerate().any(|(d, v)| d != dim && v.is_some());
    if nv.is_none() && !observed_elsewhere {
        return UpdateOp::Insert(row(rng, dims, missing_pct));
    }
    UpdateOp::Set(*id, dim, nv)
}

/// Mirror the effect of `op`, allocating ids the way the engine does
/// (monotone, never reused).
pub fn apply_to_mirror(mirror: &mut Mirror, op: &UpdateOp, next_id: &mut ObjectId) {
    match op {
        UpdateOp::Insert(r) => {
            mirror.rows.push((*next_id, r.clone()));
            *next_id += 1;
        }
        UpdateOp::InsertLabeled(_, r) => {
            mirror.rows.push((*next_id, r.clone()));
            *next_id += 1;
        }
        UpdateOp::Delete(id) => mirror.rows.retain(|(i, _)| i != id),
        UpdateOp::Set(id, dim, v) => {
            let (_, r) = mirror
                .rows
                .iter_mut()
                .find(|(i, _)| i == id)
                .expect("harness only updates live ids");
            r[*dim] = *v;
        }
    }
}
