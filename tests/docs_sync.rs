//! Keeps the prose surfaces in sync with the code. The README's command
//! table must mirror `tkdi::cli::COMMANDS` (the array that also prints
//! `tkdq help`), every relative link in the README and the docs must
//! resolve to a real file, and the README must point at each normative
//! spec document. Renaming a command, a doc, or a summary string fails
//! here until every surface follows.

use std::path::Path;

fn repo_root() -> &'static Path {
    Path::new(env!("CARGO_MANIFEST_DIR"))
}

fn read(rel: &str) -> String {
    std::fs::read_to_string(repo_root().join(rel)).unwrap_or_else(|e| panic!("{rel}: {e}"))
}

#[test]
fn readme_command_table_matches_the_cli_table() {
    let readme = read("README.md");
    for cmd in tkdi::cli::COMMANDS {
        let row = format!("| `tkdq {}` | {} |", cmd.name, cmd.summary);
        assert!(
            readme.contains(&row),
            "README.md command table is missing or differs for `{}`:\n  expected row: {row}\n\
             (the table mirrors tkdi::cli::COMMANDS — update both together)",
            cmd.name
        );
    }
    // No phantom rows: every `tkdq <word>` table row names a real command.
    for line in readme.lines().filter(|l| l.starts_with("| `tkdq ")) {
        let name = line
            .trim_start_matches("| `tkdq ")
            .split('`')
            .next()
            .unwrap()
            .trim();
        assert!(
            tkdi::cli::COMMANDS.iter().any(|c| c.name == name),
            "README.md documents `tkdq {name}`, which is not in tkdi::cli::COMMANDS"
        );
    }
}

#[test]
fn readme_links_every_spec_document() {
    let readme = read("README.md");
    for doc in [
        "docs/TKDQL.md",
        "docs/WIRE_PROTOCOL.md",
        "docs/ARCHITECTURE.md",
        "docs/INTERNALS.md",
    ] {
        assert!(
            readme.contains(&format!("]({doc})")),
            "README.md does not link {doc}"
        );
        assert!(repo_root().join(doc).is_file(), "{doc} does not exist");
    }
}

/// Every relative markdown link `](path)` in the README and the docs
/// resolves to a file in the repository (anchors and absolute URLs are
/// out of scope).
#[test]
fn relative_links_resolve() {
    for (rel, base) in [
        ("README.md", ""),
        ("docs/TKDQL.md", "docs"),
        ("docs/WIRE_PROTOCOL.md", "docs"),
        ("docs/ARCHITECTURE.md", "docs"),
        ("docs/INTERNALS.md", "docs"),
    ] {
        let text = read(rel);
        for (i, _) in text.match_indices("](") {
            let rest = &text[i + 2..];
            let Some(end) = rest.find(')') else { continue };
            let target = &rest[..end];
            if target.starts_with("http://")
                || target.starts_with("https://")
                || target.starts_with('#')
                || target.is_empty()
            {
                continue;
            }
            let target = target.split('#').next().unwrap();
            let resolved = repo_root().join(base).join(target);
            assert!(
                resolved.exists(),
                "{rel}: link target {target:?} does not exist (resolved {resolved:?})"
            );
        }
    }
}

/// The deep docs must not resurrect retired claims: the serving story is
/// protocol v4 with eight request kinds, and the stale v3 phrasing the
/// README used to carry must not reappear anywhere in the doc set.
#[test]
fn prose_does_not_describe_the_retired_protocol() {
    for rel in ["README.md", "docs/INTERNALS.md", "docs/ARCHITECTURE.md"] {
        let text = read(rel);
        assert!(
            !text.contains("wire protocol (version 3)") && !text.contains("Seven request kinds"),
            "{rel}: still describes the retired v3 wire protocol"
        );
    }
    assert!(read("docs/INTERNALS.md").contains("version 4"));
}
