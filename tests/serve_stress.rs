//! Contended-load stress for the TCP service: many client threads mix
//! queries and update batches against one server, and the harness then
//! proves three things the fault tests cannot:
//!
//! * **No lost or duplicated responses** — every update batch is acked
//!   exactly once, and the ack `seq` numbers form exactly the set
//!   `1..=batches` (the single-writer path serialized every batch).
//! * **Monotone engine epoch** — compaction epochs never move backwards
//!   in `seq` order, under a policy aggressive enough to compact many
//!   times mid-run.
//! * **Replay determinism** — the engine handed back at drain is
//!   **bit-identical** (snapshot bytes) to a fresh engine that replays
//!   the acked op log sequentially in `seq` order, and to the snapshot
//!   file the server rewrote on disk. Concurrency must be an
//!   implementation detail invisible in the final state.
//!
//! Writer threads only delete/update ids they themselves inserted (from
//! their acks), so every op is valid regardless of interleaving — the
//! same "harness only sends valid ops" discipline as
//! `tests/dynamic_parity.rs`.

mod common;

use common::{random_dataset, row, Mix};
use std::sync::{Arc, Mutex};
use std::time::Duration;
use tkdi::core::dynamic::{CompactionPolicy, DynamicOptions};
use tkdi::core::BinChoice;
use tkdi::prelude::*;
use tkdi::serve::{Client, QuerySpec, ServeConfig, ServeError, Server, UpdateAck};
use tkdi::store;

const DIMS: usize = 3;
const WRITERS: usize = 4;
const READERS: usize = 2;
const ROUNDS: usize = 8;

fn options() -> DynamicOptions {
    DynamicOptions {
        bins: BinChoice::Fixed(3),
        // Compact eagerly so epochs actually advance under contention.
        policy: CompactionPolicy {
            max_tombstone_fraction: 0.1,
            min_dead: 2,
        },
    }
}

#[test]
fn contended_updates_replay_to_identical_snapshot() {
    let mut rng = Mix(4242);
    let ds = random_dataset(&mut rng, 30, DIMS, 30);
    let snap_path = std::env::temp_dir().join(format!(
        "tkd_serve_stress_{}_{:x}.snap",
        std::process::id(),
        rng.next()
    ));
    let server = Server::start(
        DynamicEngine::with_options(ds.clone(), options()),
        "127.0.0.1:0",
        ServeConfig {
            snapshot: Some(snap_path.clone()),
            ..Default::default()
        },
    )
    .expect("server binds");
    let addr = server.local_addr();

    // The shared op log: (seq, ops, epoch) per acked batch, from every
    // writer. Replay sorts by seq.
    type AckedBatch = (u64, Vec<UpdateOp>, u64);
    let log: Arc<Mutex<Vec<AckedBatch>>> = Arc::new(Mutex::new(Vec::new()));

    let writers: Vec<_> = (0..WRITERS)
        .map(|w| {
            let log = Arc::clone(&log);
            std::thread::spawn(move || {
                let mut rng = Mix(0xBEEF + w as u64);
                let mut client =
                    Client::connect_with(addr, Duration::from_secs(30)).expect("writer connects");
                // Ids this writer inserted and still owns (may delete or
                // update them; never touches anyone else's).
                let mut owned: Vec<u32> = Vec::new();
                for _ in 0..ROUNDS {
                    let mut ops = Vec::new();
                    let mut inserts = 0usize;
                    for _ in 0..4 {
                        let die = rng.next() % 10;
                        if owned.is_empty() || die >= 6 {
                            ops.push(UpdateOp::Insert(row(&mut rng, DIMS, 30)));
                            inserts += 1;
                        } else if die >= 3 {
                            let i = rng.below(owned.len());
                            let id = owned.swap_remove(i);
                            ops.push(UpdateOp::Delete(id));
                        } else {
                            let id = owned[rng.below(owned.len())];
                            // Observed value: never risks an all-missing row.
                            ops.push(UpdateOp::Set(
                                id,
                                rng.below(DIMS),
                                Some((rng.next() % 7) as f64),
                            ));
                        }
                    }
                    let ack = client.update(&ops).expect("batch acked exactly once");
                    assert_eq!(ack.applied, ops.len() as u64, "whole batch applied");
                    assert_eq!(ack.inserted_ids.len(), inserts, "one id per insert");
                    owned.extend(ack.inserted_ids.iter().map(|&id| id as u32));
                    log.lock()
                        .expect("log lock")
                        .push((ack.seq, ops, ack.epoch));
                }
            })
        })
        .collect();

    let readers: Vec<_> = (0..READERS)
        .map(|r| {
            std::thread::spawn(move || {
                let mut client =
                    Client::connect_with(addr, Duration::from_secs(30)).expect("reader connects");
                let mut last_seq = 0u64;
                let mut last_epoch = 0u64;
                for i in 0..ROUNDS * 3 {
                    // Interleave queries and stats; answers must always
                    // be well-formed, and the server's own counters must
                    // move monotonically as seen from one connection.
                    let k = 1 + (i + r) % 9;
                    let entries = client
                        .query(QuerySpec::new(k).algorithm(if i % 2 == 0 {
                            Algorithm::Big
                        } else {
                            Algorithm::Ibig
                        }))
                        .expect("query answers");
                    assert!(entries.len() <= k, "never more than k entries");
                    assert!(
                        entries.windows(2).all(|w| w[0].score >= w[1].score),
                        "scores descend"
                    );
                    let stats = client.stats().expect("stats answer");
                    assert!(stats.seq >= last_seq, "seq monotone per observer");
                    assert!(stats.epoch >= last_epoch, "epoch monotone per observer");
                    last_seq = stats.seq;
                    last_epoch = stats.epoch;
                }
            })
        })
        .collect();

    for h in writers {
        h.join().expect("writer thread");
    }
    for h in readers {
        h.join().expect("reader thread");
    }

    // Drain the server and take the engine back.
    let mut served = server.stop().expect("clean drain");

    // --- No lost/duplicated responses ---------------------------------
    let mut batches = Arc::try_unwrap(log)
        .map_err(|_| "log still shared")
        .unwrap()
        .into_inner()
        .expect("log lock");
    let total = WRITERS * ROUNDS;
    assert_eq!(batches.len(), total, "every batch acked exactly once");
    batches.sort_by_key(|&(seq, _, _)| seq);
    let seqs: Vec<u64> = batches.iter().map(|&(seq, _, _)| seq).collect();
    assert_eq!(
        seqs,
        (1..=total as u64).collect::<Vec<_>>(),
        "ack seqs are exactly 1..=batches: none lost, none duplicated"
    );

    // --- Monotone engine epoch ----------------------------------------
    let epochs: Vec<u64> = batches.iter().map(|&(_, _, e)| e).collect();
    assert!(
        epochs.windows(2).all(|w| w[0] <= w[1]),
        "epoch never moves backwards in seq order"
    );
    assert!(
        *epochs.last().expect("batches nonempty") > 0,
        "the aggressive policy must actually compact during the run"
    );

    // --- Replay determinism -------------------------------------------
    // A fresh engine replaying the acked op log sequentially must land
    // on the exact same snapshot bytes as the contended server did.
    let mut replay = DynamicEngine::with_options(ds, options());
    for (seq, ops, _) in &batches {
        replay
            .apply_all(ops)
            .unwrap_or_else(|(i, e)| panic!("replay of batch seq={seq} failed at op {i}: {e}"));
    }
    let served_bytes = store::encode_engine(&mut served);
    let replay_bytes = store::encode_engine(&mut replay);
    assert_eq!(
        served_bytes, replay_bytes,
        "served engine is bit-identical to the sequential replay"
    );
    // And the snapshot the server left on disk is that same state.
    let disk = std::fs::read(&snap_path).expect("snapshot file exists");
    assert_eq!(disk, served_bytes, "on-disk snapshot matches");
    let _ = std::fs::remove_file(&snap_path);
}

/// The standing-query leg: subscriptions registered before a contended
/// update run must see **every** batch exactly once — per subscription,
/// the pushed `batch_seq`s are exactly the consecutive run
/// `1..=batches`, in order, with none lost and none duplicated — and
/// folding the pushes over the subscribe ack must land on the exact
/// result the drained engine reports.
#[test]
fn standing_notifications_survive_contended_updates() {
    let mut rng = Mix(9898);
    let ds = random_dataset(&mut rng, 30, DIMS, 30);
    let server = Server::start(
        DynamicEngine::with_options(ds, options()),
        "127.0.0.1:0",
        ServeConfig::default(),
    )
    .expect("server binds");
    let addr = server.local_addr();

    // Subscribe BEFORE any writer starts, so every batch must notify.
    let mut subscriber =
        Client::connect_with(addr, Duration::from_secs(30)).expect("subscriber connects");
    let specs = [
        StandingSpec::new(5),
        StandingSpec::new(3).algorithm(Algorithm::Ibig),
    ];
    let acks: Vec<_> = specs
        .iter()
        .map(|s| subscriber.subscribe(s).expect("subscribe acked"))
        .collect();

    let writers: Vec<_> = (0..WRITERS)
        .map(|w| {
            std::thread::spawn(move || {
                let mut rng = Mix(0xFACE + w as u64);
                let mut client =
                    Client::connect_with(addr, Duration::from_secs(30)).expect("writer connects");
                let mut owned: Vec<u32> = Vec::new();
                for _ in 0..ROUNDS {
                    let mut ops = Vec::new();
                    for _ in 0..4 {
                        let die = rng.next() % 10;
                        if owned.is_empty() || die >= 6 {
                            ops.push(UpdateOp::Insert(row(&mut rng, DIMS, 30)));
                        } else if die >= 3 {
                            let i = rng.below(owned.len());
                            ops.push(UpdateOp::Delete(owned.swap_remove(i)));
                        } else {
                            let id = owned[rng.below(owned.len())];
                            ops.push(UpdateOp::Set(
                                id,
                                rng.below(DIMS),
                                Some((rng.next() % 7) as f64),
                            ));
                        }
                    }
                    let ack = client.update(&ops).expect("batch acked");
                    owned.extend(ack.inserted_ids.iter().map(|&id| id as u32));
                }
            })
        })
        .collect();

    // Drain pushes while the writers hammer: exactly one notification
    // per (batch, subscription), each stream's seqs consecutive.
    let total = WRITERS * ROUNDS;
    let mut seqs: Vec<Vec<u64>> = vec![Vec::new(); specs.len()];
    let mut views: Vec<Vec<tkdi::core::ResultEntry>> = acks
        .iter()
        .map(|a| {
            a.result
                .iter()
                .map(|e| tkdi::core::ResultEntry {
                    id: e.id as u32,
                    score: e.score as usize,
                })
                .collect()
        })
        .collect();
    while seqs.iter().map(Vec::len).sum::<usize>() < total * specs.len() {
        let note = subscriber
            .next_notification(Duration::from_secs(20))
            .expect("notification stream stays healthy")
            .expect("pushes keep arriving while writers run");
        let i = acks
            .iter()
            .position(|a| a.id == note.id)
            .expect("push for a known subscription");
        seqs[i].push(note.batch_seq);
        let core = tkdi::core::Notification {
            id: note.id,
            batch_seq: note.batch_seq,
            added: note
                .added
                .iter()
                .map(|e| tkdi::core::ResultEntry {
                    id: e.id as u32,
                    score: e.score as usize,
                })
                .collect(),
            removed: note.removed.iter().map(|&id| id as u32).collect(),
            rescored: note
                .rescored
                .iter()
                .map(|e| tkdi::core::ResultEntry {
                    id: e.id as u32,
                    score: e.score as usize,
                })
                .collect(),
            kth_score: note.kth_score.map(|s| s as usize),
            via_fallback: note.via_fallback,
        };
        views[i] = tkdi::core::apply_notification(&views[i], &core);
    }
    for h in writers {
        h.join().expect("writer thread");
    }
    // Nothing extra in flight once every expected push is accounted for.
    assert_eq!(
        subscriber
            .next_notification(Duration::from_millis(150))
            .expect("healthy stream"),
        None,
        "no duplicated or phantom notifications"
    );
    let mut served = server.stop().expect("clean drain");
    for (i, s) in seqs.iter().enumerate() {
        assert_eq!(
            s,
            &(1..=total as u64).collect::<Vec<_>>(),
            "subscription {i}: batch_seqs are exactly the consecutive run \
             1..=batches, in push order — none lost, none duplicated"
        );
    }
    // Folding every push over the initial ack reproduces the engine's
    // final standing answer, concurrency notwithstanding.
    for (i, spec) in specs.iter().enumerate() {
        let want: Vec<(u32, usize)> = served
            .query(&EngineQuery::new(spec.k).algorithm(spec.algorithm))
            .expect("BIG/IBIG supported")
            .iter()
            .map(|e| (e.id, e.score))
            .collect();
        let got: Vec<(u32, usize)> = views[i].iter().map(|e| (e.id, e.score)).collect();
        assert_eq!(got, want, "subscription {i}: folded view = final top-k");
    }
}

/// The drain-race leg: `stop()` races live submitters. Every client must
/// get either a real answer or a typed rejection (`ShuttingDown` error
/// frame, or the connection closing under it) — never a dropped request
/// that leaves it hanging until its frame deadline. This pins the
/// shutdown sweep in the engine loop: a frame that slips into the queue
/// as draining begins is still answered.
#[test]
fn stop_races_submitters_without_dropping_requests() {
    let mut rng = Mix(31_337);
    let ds = random_dataset(&mut rng, 30, DIMS, 30);
    let server = Server::start(
        DynamicEngine::with_options(ds, options()),
        "127.0.0.1:0",
        ServeConfig::default(),
    )
    .expect("server binds");
    let addr = server.local_addr();

    let clients: Vec<_> = (0..WRITERS)
        .map(|c| {
            std::thread::spawn(move || {
                let mut rng = Mix(0xD1A1 + c as u64);
                let mut client =
                    Client::connect_with(addr, Duration::from_secs(10)).expect("client connects");
                let mut answered = 0usize;
                loop {
                    // Alternate reads and writes so both request shapes
                    // cross the drain boundary.
                    let result = if (answered + c).is_multiple_of(2) {
                        client.query(QuerySpec::new(3)).map(|_| ())
                    } else {
                        client
                            .update(&[UpdateOp::Insert(row(&mut rng, DIMS, 30))])
                            .map(|_| ())
                    };
                    match result {
                        Ok(()) => answered += 1,
                        Err(e) => {
                            // A request in flight when the drain lands is
                            // refused with a *typed* outcome. A frame
                            // deadline here would mean a request was
                            // silently dropped — exactly the race this
                            // test exists to catch.
                            assert!(
                                matches!(
                                    e,
                                    ServeError::ShuttingDown
                                        | ServeError::Io(_)
                                        | ServeError::Disconnected
                                ),
                                "typed shutdown outcome, got {e:?}"
                            );
                            break;
                        }
                    }
                }
                answered
            })
        })
        .collect();

    // Let the submitters build up real traffic, then pull the rug.
    std::thread::sleep(Duration::from_millis(30));
    server.stop().expect("clean drain");
    let answered: usize = clients
        .into_iter()
        .map(|h| h.join().expect("client thread survived the race"))
        .sum();
    assert!(answered > 0, "the race must overlap real served traffic");
}

/// Spawn a `tkdq serve` child on an ephemeral port and parse the bound
/// address from its announcement line.
fn spawn_serve(
    snap: &std::path::Path,
    initial_seq: u64,
) -> (std::process::Child, std::net::SocketAddr) {
    use std::io::BufRead;
    let mut cmd = std::process::Command::new(env!("CARGO_BIN_EXE_tkdq"));
    cmd.arg("serve")
        .arg("--index")
        .arg(snap)
        .arg("--addr")
        .arg("127.0.0.1:0")
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::null());
    if initial_seq > 0 {
        cmd.arg("--initial-seq").arg(initial_seq.to_string());
    }
    let mut child = cmd.spawn().expect("tkdq serve spawns");
    let stdout = child.stdout.take().expect("stdout is piped");
    let mut lines = std::io::BufReader::new(stdout).lines();
    let addr = loop {
        let line = lines
            .next()
            .expect("serve announces its address before EOF")
            .expect("readable child stdout");
        if let Some(rest) = line.split(" on ").nth(1) {
            let token = rest.split_whitespace().next().expect("address token");
            break token.parse().expect("socket address parses");
        }
    };
    // Keep draining stdout so the child can never block on a full pipe.
    std::thread::spawn(move || for _ in lines {});
    (child, addr)
}

/// The kill-and-restart leg: a real `tkdq serve` process is killed with
/// a batch in flight, restarted from the snapshot it left behind with
/// `--initial-seq` at its last committed seq, and the run continues. The
/// acked seqs across both incarnations must be exactly `1..=batches` —
/// the snapshot-per-batch rewrite plus the seeded counter make a process
/// death invisible in the seq stream. The in-flight victim batch either
/// lands durably with its ack, or fails with a typed transport error;
/// the snapshot on disk is always a whole-batch state (atomic rename).
#[test]
fn kill_and_restart_resumes_the_seq_stream() {
    const INITIAL: usize = 30;
    const PER_BATCH: usize = 3;
    const BATCHES: u64 = 10;
    let mut rng = Mix(777_001);
    let snap = std::env::temp_dir().join(format!(
        "tkd_serve_restart_{}_{:x}.snap",
        std::process::id(),
        rng.next()
    ));
    let ds = random_dataset(&mut rng, INITIAL, DIMS, 30);
    let mut seed = DynamicEngine::with_options(ds, options());
    store::save_engine(&snap, &mut seed).expect("seed snapshot saved");

    let mk = |rng: &mut Mix| -> Vec<UpdateOp> {
        (0..PER_BATCH)
            .map(|_| UpdateOp::Insert(row(rng, DIMS, 30)))
            .collect()
    };

    let (mut child, addr) = spawn_serve(&snap, 0);
    let mut client = Client::connect_with(addr, Duration::from_secs(30)).expect("client connects");
    let mut acked: Vec<u64> = Vec::new();
    for batch in 1..=5u64 {
        let ack = client.update(&mk(&mut rng)).expect("batch acked");
        assert_eq!(ack.seq, batch, "seq is the batch ordinal");
        acked.push(ack.seq);
    }

    // Kill the process with a batch in flight from a second connection.
    let victim_ops = mk(&mut rng);
    let victim = std::thread::spawn(move || -> Result<UpdateAck, ServeError> {
        let mut c = Client::connect_with(addr, Duration::from_secs(5))?;
        c.update(&victim_ops)
    });
    std::thread::sleep(Duration::from_millis(2));
    child.kill().expect("kill delivered");
    child.wait().expect("child reaped");
    let victim = victim.join().expect("victim thread");

    // Whatever the kill timing, the snapshot is a complete committed
    // state: a whole number of batches, never a torn write.
    let persisted = store::load_engine(&snap).expect("snapshot survives the kill intact");
    let live = persisted.len();
    assert_eq!(
        (live - INITIAL) % PER_BATCH,
        0,
        "snapshot commits whole batches only"
    );
    let committed = ((live - INITIAL) / PER_BATCH) as u64;
    assert!(
        (5..=6).contains(&committed),
        "only the victim batch is in doubt, committed={committed}"
    );
    match &victim {
        Ok(ack) => {
            // An ack is a durability receipt: the snapshot is rewritten
            // before the ack frame goes out.
            assert_eq!(ack.seq, 6);
            assert_eq!(committed, 6, "acked implies persisted");
            acked.push(ack.seq);
        }
        Err(e) => {
            assert!(
                matches!(
                    e,
                    ServeError::Io(_) | ServeError::Disconnected | ServeError::DeadlineExpired
                ),
                "typed transport failure, got {e:?}"
            );
            // The batch may still have committed with its ack lost in
            // the kill; the snapshot is the arbiter.
            if committed == 6 {
                acked.push(6);
            }
        }
    }

    // Restart from the snapshot, seeding the seq stream where it left
    // off, and finish the run.
    let (mut child, addr) = spawn_serve(&snap, committed);
    let mut client = Client::connect_with(addr, Duration::from_secs(30)).expect("reconnects");
    let stats = client.stats().expect("stats answer");
    assert_eq!(stats.seq, committed, "--initial-seq seeds the counter");
    assert_eq!(
        stats.live as usize, live,
        "restart resumes the committed state"
    );
    for batch in committed + 1..=BATCHES {
        let ack = client
            .update(&mk(&mut rng))
            .expect("batch acked after restart");
        assert_eq!(ack.seq, batch, "seq stream continues unbroken");
        acked.push(ack.seq);
    }
    assert_eq!(
        acked,
        (1..=BATCHES).collect::<Vec<_>>(),
        "ack seqs are exactly 1..=batches across the kill"
    );
    client.shutdown().expect("drains cleanly");
    child.wait().expect("child exits after shutdown");

    // Every incarnation applied PER_BATCH inserts per acked batch.
    let final_engine = store::load_engine(&snap).expect("final snapshot loads");
    assert_eq!(
        final_engine.len(),
        INITIAL + PER_BATCH * BATCHES as usize,
        "final state reflects exactly the acked batches"
    );
    let _ = std::fs::remove_file(&snap);
}
