//! Contended-load stress for the TCP service: many client threads mix
//! queries and update batches against one server, and the harness then
//! proves three things the fault tests cannot:
//!
//! * **No lost or duplicated responses** — every update batch is acked
//!   exactly once, and the ack `seq` numbers form exactly the set
//!   `1..=batches` (the single-writer path serialized every batch).
//! * **Monotone engine epoch** — compaction epochs never move backwards
//!   in `seq` order, under a policy aggressive enough to compact many
//!   times mid-run.
//! * **Replay determinism** — the engine handed back at drain is
//!   **bit-identical** (snapshot bytes) to a fresh engine that replays
//!   the acked op log sequentially in `seq` order, and to the snapshot
//!   file the server rewrote on disk. Concurrency must be an
//!   implementation detail invisible in the final state.
//!
//! Writer threads only delete/update ids they themselves inserted (from
//! their acks), so every op is valid regardless of interleaving — the
//! same "harness only sends valid ops" discipline as
//! `tests/dynamic_parity.rs`.

mod common;

use common::{random_dataset, row, Mix};
use std::sync::{Arc, Mutex};
use std::time::Duration;
use tkdi::core::dynamic::{CompactionPolicy, DynamicOptions};
use tkdi::core::BinChoice;
use tkdi::prelude::*;
use tkdi::serve::{Client, QuerySpec, ServeConfig, Server};
use tkdi::store;

const DIMS: usize = 3;
const WRITERS: usize = 4;
const READERS: usize = 2;
const ROUNDS: usize = 8;

fn options() -> DynamicOptions {
    DynamicOptions {
        bins: BinChoice::Fixed(3),
        // Compact eagerly so epochs actually advance under contention.
        policy: CompactionPolicy {
            max_tombstone_fraction: 0.1,
            min_dead: 2,
        },
    }
}

#[test]
fn contended_updates_replay_to_identical_snapshot() {
    let mut rng = Mix(4242);
    let ds = random_dataset(&mut rng, 30, DIMS, 30);
    let snap_path = std::env::temp_dir().join(format!(
        "tkd_serve_stress_{}_{:x}.snap",
        std::process::id(),
        rng.next()
    ));
    let server = Server::start(
        DynamicEngine::with_options(ds.clone(), options()),
        "127.0.0.1:0",
        ServeConfig {
            snapshot: Some(snap_path.clone()),
            ..Default::default()
        },
    )
    .expect("server binds");
    let addr = server.local_addr();

    // The shared op log: (seq, ops, epoch) per acked batch, from every
    // writer. Replay sorts by seq.
    type AckedBatch = (u64, Vec<UpdateOp>, u64);
    let log: Arc<Mutex<Vec<AckedBatch>>> = Arc::new(Mutex::new(Vec::new()));

    let writers: Vec<_> = (0..WRITERS)
        .map(|w| {
            let log = Arc::clone(&log);
            std::thread::spawn(move || {
                let mut rng = Mix(0xBEEF + w as u64);
                let mut client =
                    Client::connect_with(addr, Duration::from_secs(30)).expect("writer connects");
                // Ids this writer inserted and still owns (may delete or
                // update them; never touches anyone else's).
                let mut owned: Vec<u32> = Vec::new();
                for _ in 0..ROUNDS {
                    let mut ops = Vec::new();
                    let mut inserts = 0usize;
                    for _ in 0..4 {
                        let die = rng.next() % 10;
                        if owned.is_empty() || die >= 6 {
                            ops.push(UpdateOp::Insert(row(&mut rng, DIMS, 30)));
                            inserts += 1;
                        } else if die >= 3 {
                            let i = rng.below(owned.len());
                            let id = owned.swap_remove(i);
                            ops.push(UpdateOp::Delete(id));
                        } else {
                            let id = owned[rng.below(owned.len())];
                            // Observed value: never risks an all-missing row.
                            ops.push(UpdateOp::Set(
                                id,
                                rng.below(DIMS),
                                Some((rng.next() % 7) as f64),
                            ));
                        }
                    }
                    let ack = client.update(&ops).expect("batch acked exactly once");
                    assert_eq!(ack.applied, ops.len() as u64, "whole batch applied");
                    assert_eq!(ack.inserted_ids.len(), inserts, "one id per insert");
                    owned.extend(ack.inserted_ids.iter().map(|&id| id as u32));
                    log.lock()
                        .expect("log lock")
                        .push((ack.seq, ops, ack.epoch));
                }
            })
        })
        .collect();

    let readers: Vec<_> = (0..READERS)
        .map(|r| {
            std::thread::spawn(move || {
                let mut client =
                    Client::connect_with(addr, Duration::from_secs(30)).expect("reader connects");
                let mut last_seq = 0u64;
                let mut last_epoch = 0u64;
                for i in 0..ROUNDS * 3 {
                    // Interleave queries and stats; answers must always
                    // be well-formed, and the server's own counters must
                    // move monotonically as seen from one connection.
                    let k = 1 + (i + r) % 9;
                    let entries = client
                        .query(QuerySpec::new(k).algorithm(if i % 2 == 0 {
                            Algorithm::Big
                        } else {
                            Algorithm::Ibig
                        }))
                        .expect("query answers");
                    assert!(entries.len() <= k, "never more than k entries");
                    assert!(
                        entries.windows(2).all(|w| w[0].score >= w[1].score),
                        "scores descend"
                    );
                    let stats = client.stats().expect("stats answer");
                    assert!(stats.seq >= last_seq, "seq monotone per observer");
                    assert!(stats.epoch >= last_epoch, "epoch monotone per observer");
                    last_seq = stats.seq;
                    last_epoch = stats.epoch;
                }
            })
        })
        .collect();

    for h in writers {
        h.join().expect("writer thread");
    }
    for h in readers {
        h.join().expect("reader thread");
    }

    // Drain the server and take the engine back.
    let mut served = server.stop().expect("clean drain");

    // --- No lost/duplicated responses ---------------------------------
    let mut batches = Arc::try_unwrap(log)
        .map_err(|_| "log still shared")
        .unwrap()
        .into_inner()
        .expect("log lock");
    let total = WRITERS * ROUNDS;
    assert_eq!(batches.len(), total, "every batch acked exactly once");
    batches.sort_by_key(|&(seq, _, _)| seq);
    let seqs: Vec<u64> = batches.iter().map(|&(seq, _, _)| seq).collect();
    assert_eq!(
        seqs,
        (1..=total as u64).collect::<Vec<_>>(),
        "ack seqs are exactly 1..=batches: none lost, none duplicated"
    );

    // --- Monotone engine epoch ----------------------------------------
    let epochs: Vec<u64> = batches.iter().map(|&(_, _, e)| e).collect();
    assert!(
        epochs.windows(2).all(|w| w[0] <= w[1]),
        "epoch never moves backwards in seq order"
    );
    assert!(
        *epochs.last().expect("batches nonempty") > 0,
        "the aggressive policy must actually compact during the run"
    );

    // --- Replay determinism -------------------------------------------
    // A fresh engine replaying the acked op log sequentially must land
    // on the exact same snapshot bytes as the contended server did.
    let mut replay = DynamicEngine::with_options(ds, options());
    for (seq, ops, _) in &batches {
        replay
            .apply_all(ops)
            .unwrap_or_else(|(i, e)| panic!("replay of batch seq={seq} failed at op {i}: {e}"));
    }
    let served_bytes = store::encode_engine(&mut served);
    let replay_bytes = store::encode_engine(&mut replay);
    assert_eq!(
        served_bytes, replay_bytes,
        "served engine is bit-identical to the sequential replay"
    );
    // And the snapshot the server left on disk is that same state.
    let disk = std::fs::read(&snap_path).expect("snapshot file exists");
    assert_eq!(disk, served_bytes, "on-disk snapshot matches");
    let _ = std::fs::remove_file(&snap_path);
}

/// The standing-query leg: subscriptions registered before a contended
/// update run must see **every** batch exactly once — per subscription,
/// the pushed `batch_seq`s are exactly the consecutive run
/// `1..=batches`, in order, with none lost and none duplicated — and
/// folding the pushes over the subscribe ack must land on the exact
/// result the drained engine reports.
#[test]
fn standing_notifications_survive_contended_updates() {
    let mut rng = Mix(9898);
    let ds = random_dataset(&mut rng, 30, DIMS, 30);
    let server = Server::start(
        DynamicEngine::with_options(ds, options()),
        "127.0.0.1:0",
        ServeConfig::default(),
    )
    .expect("server binds");
    let addr = server.local_addr();

    // Subscribe BEFORE any writer starts, so every batch must notify.
    let mut subscriber =
        Client::connect_with(addr, Duration::from_secs(30)).expect("subscriber connects");
    let specs = [
        StandingSpec::new(5),
        StandingSpec::new(3).algorithm(Algorithm::Ibig),
    ];
    let acks: Vec<_> = specs
        .iter()
        .map(|s| subscriber.subscribe(s).expect("subscribe acked"))
        .collect();

    let writers: Vec<_> = (0..WRITERS)
        .map(|w| {
            std::thread::spawn(move || {
                let mut rng = Mix(0xFACE + w as u64);
                let mut client =
                    Client::connect_with(addr, Duration::from_secs(30)).expect("writer connects");
                let mut owned: Vec<u32> = Vec::new();
                for _ in 0..ROUNDS {
                    let mut ops = Vec::new();
                    for _ in 0..4 {
                        let die = rng.next() % 10;
                        if owned.is_empty() || die >= 6 {
                            ops.push(UpdateOp::Insert(row(&mut rng, DIMS, 30)));
                        } else if die >= 3 {
                            let i = rng.below(owned.len());
                            ops.push(UpdateOp::Delete(owned.swap_remove(i)));
                        } else {
                            let id = owned[rng.below(owned.len())];
                            ops.push(UpdateOp::Set(
                                id,
                                rng.below(DIMS),
                                Some((rng.next() % 7) as f64),
                            ));
                        }
                    }
                    let ack = client.update(&ops).expect("batch acked");
                    owned.extend(ack.inserted_ids.iter().map(|&id| id as u32));
                }
            })
        })
        .collect();

    // Drain pushes while the writers hammer: exactly one notification
    // per (batch, subscription), each stream's seqs consecutive.
    let total = WRITERS * ROUNDS;
    let mut seqs: Vec<Vec<u64>> = vec![Vec::new(); specs.len()];
    let mut views: Vec<Vec<tkdi::core::ResultEntry>> = acks
        .iter()
        .map(|a| {
            a.result
                .iter()
                .map(|e| tkdi::core::ResultEntry {
                    id: e.id as u32,
                    score: e.score as usize,
                })
                .collect()
        })
        .collect();
    while seqs.iter().map(Vec::len).sum::<usize>() < total * specs.len() {
        let note = subscriber
            .next_notification(Duration::from_secs(20))
            .expect("notification stream stays healthy")
            .expect("pushes keep arriving while writers run");
        let i = acks
            .iter()
            .position(|a| a.id == note.id)
            .expect("push for a known subscription");
        seqs[i].push(note.batch_seq);
        let core = tkdi::core::Notification {
            id: note.id,
            batch_seq: note.batch_seq,
            added: note
                .added
                .iter()
                .map(|e| tkdi::core::ResultEntry {
                    id: e.id as u32,
                    score: e.score as usize,
                })
                .collect(),
            removed: note.removed.iter().map(|&id| id as u32).collect(),
            rescored: note
                .rescored
                .iter()
                .map(|e| tkdi::core::ResultEntry {
                    id: e.id as u32,
                    score: e.score as usize,
                })
                .collect(),
            kth_score: note.kth_score.map(|s| s as usize),
            via_fallback: note.via_fallback,
        };
        views[i] = tkdi::core::apply_notification(&views[i], &core);
    }
    for h in writers {
        h.join().expect("writer thread");
    }
    // Nothing extra in flight once every expected push is accounted for.
    assert_eq!(
        subscriber
            .next_notification(Duration::from_millis(150))
            .expect("healthy stream"),
        None,
        "no duplicated or phantom notifications"
    );
    let mut served = server.stop().expect("clean drain");
    for (i, s) in seqs.iter().enumerate() {
        assert_eq!(
            s,
            &(1..=total as u64).collect::<Vec<_>>(),
            "subscription {i}: batch_seqs are exactly the consecutive run \
             1..=batches, in push order — none lost, none duplicated"
        );
    }
    // Folding every push over the initial ack reproduces the engine's
    // final standing answer, concurrency notwithstanding.
    for (i, spec) in specs.iter().enumerate() {
        let want: Vec<(u32, usize)> = served
            .query(&EngineQuery::new(spec.k).algorithm(spec.algorithm))
            .expect("BIG/IBIG supported")
            .iter()
            .map(|e| (e.id, e.score))
            .collect();
        let got: Vec<(u32, usize)> = views[i].iter().map(|e| (e.id, e.score)).collect();
        assert_eq!(got, want, "subscription {i}: folded view = final top-k");
    }
}
