//! Contended-load stress for the TCP service: many client threads mix
//! queries and update batches against one server, and the harness then
//! proves three things the fault tests cannot:
//!
//! * **No lost or duplicated responses** — every update batch is acked
//!   exactly once, and the ack `seq` numbers form exactly the set
//!   `1..=batches` (the single-writer path serialized every batch).
//! * **Monotone engine epoch** — compaction epochs never move backwards
//!   in `seq` order, under a policy aggressive enough to compact many
//!   times mid-run.
//! * **Replay determinism** — the engine handed back at drain is
//!   **bit-identical** (snapshot bytes) to a fresh engine that replays
//!   the acked op log sequentially in `seq` order, and to the snapshot
//!   file the server rewrote on disk. Concurrency must be an
//!   implementation detail invisible in the final state.
//!
//! Writer threads only delete/update ids they themselves inserted (from
//! their acks), so every op is valid regardless of interleaving — the
//! same "harness only sends valid ops" discipline as
//! `tests/dynamic_parity.rs`.

mod common;

use common::{random_dataset, row, Mix};
use std::sync::{Arc, Mutex};
use std::time::Duration;
use tkdi::core::dynamic::{CompactionPolicy, DynamicOptions};
use tkdi::core::BinChoice;
use tkdi::prelude::*;
use tkdi::serve::{Client, QuerySpec, ServeConfig, Server};
use tkdi::store;

const DIMS: usize = 3;
const WRITERS: usize = 4;
const READERS: usize = 2;
const ROUNDS: usize = 8;

fn options() -> DynamicOptions {
    DynamicOptions {
        bins: BinChoice::Fixed(3),
        // Compact eagerly so epochs actually advance under contention.
        policy: CompactionPolicy {
            max_tombstone_fraction: 0.1,
            min_dead: 2,
        },
    }
}

#[test]
fn contended_updates_replay_to_identical_snapshot() {
    let mut rng = Mix(4242);
    let ds = random_dataset(&mut rng, 30, DIMS, 30);
    let snap_path = std::env::temp_dir().join(format!(
        "tkd_serve_stress_{}_{:x}.snap",
        std::process::id(),
        rng.next()
    ));
    let server = Server::start(
        DynamicEngine::with_options(ds.clone(), options()),
        "127.0.0.1:0",
        ServeConfig {
            snapshot: Some(snap_path.clone()),
            ..Default::default()
        },
    )
    .expect("server binds");
    let addr = server.local_addr();

    // The shared op log: (seq, ops, epoch) per acked batch, from every
    // writer. Replay sorts by seq.
    type AckedBatch = (u64, Vec<UpdateOp>, u64);
    let log: Arc<Mutex<Vec<AckedBatch>>> = Arc::new(Mutex::new(Vec::new()));

    let writers: Vec<_> = (0..WRITERS)
        .map(|w| {
            let log = Arc::clone(&log);
            std::thread::spawn(move || {
                let mut rng = Mix(0xBEEF + w as u64);
                let mut client =
                    Client::connect_with(addr, Duration::from_secs(30)).expect("writer connects");
                // Ids this writer inserted and still owns (may delete or
                // update them; never touches anyone else's).
                let mut owned: Vec<u32> = Vec::new();
                for _ in 0..ROUNDS {
                    let mut ops = Vec::new();
                    let mut inserts = 0usize;
                    for _ in 0..4 {
                        let die = rng.next() % 10;
                        if owned.is_empty() || die >= 6 {
                            ops.push(UpdateOp::Insert(row(&mut rng, DIMS, 30)));
                            inserts += 1;
                        } else if die >= 3 {
                            let i = rng.below(owned.len());
                            let id = owned.swap_remove(i);
                            ops.push(UpdateOp::Delete(id));
                        } else {
                            let id = owned[rng.below(owned.len())];
                            // Observed value: never risks an all-missing row.
                            ops.push(UpdateOp::Set(
                                id,
                                rng.below(DIMS),
                                Some((rng.next() % 7) as f64),
                            ));
                        }
                    }
                    let ack = client.update(&ops).expect("batch acked exactly once");
                    assert_eq!(ack.applied, ops.len() as u64, "whole batch applied");
                    assert_eq!(ack.inserted_ids.len(), inserts, "one id per insert");
                    owned.extend(ack.inserted_ids.iter().map(|&id| id as u32));
                    log.lock()
                        .expect("log lock")
                        .push((ack.seq, ops, ack.epoch));
                }
            })
        })
        .collect();

    let readers: Vec<_> = (0..READERS)
        .map(|r| {
            std::thread::spawn(move || {
                let mut client =
                    Client::connect_with(addr, Duration::from_secs(30)).expect("reader connects");
                let mut last_seq = 0u64;
                let mut last_epoch = 0u64;
                for i in 0..ROUNDS * 3 {
                    // Interleave queries and stats; answers must always
                    // be well-formed, and the server's own counters must
                    // move monotonically as seen from one connection.
                    let k = 1 + (i + r) % 9;
                    let entries = client
                        .query(QuerySpec::new(k).algorithm(if i % 2 == 0 {
                            Algorithm::Big
                        } else {
                            Algorithm::Ibig
                        }))
                        .expect("query answers");
                    assert!(entries.len() <= k, "never more than k entries");
                    assert!(
                        entries.windows(2).all(|w| w[0].score >= w[1].score),
                        "scores descend"
                    );
                    let stats = client.stats().expect("stats answer");
                    assert!(stats.seq >= last_seq, "seq monotone per observer");
                    assert!(stats.epoch >= last_epoch, "epoch monotone per observer");
                    last_seq = stats.seq;
                    last_epoch = stats.epoch;
                }
            })
        })
        .collect();

    for h in writers {
        h.join().expect("writer thread");
    }
    for h in readers {
        h.join().expect("reader thread");
    }

    // Drain the server and take the engine back.
    let mut served = server.stop().expect("clean drain");

    // --- No lost/duplicated responses ---------------------------------
    let mut batches = Arc::try_unwrap(log)
        .map_err(|_| "log still shared")
        .unwrap()
        .into_inner()
        .expect("log lock");
    let total = WRITERS * ROUNDS;
    assert_eq!(batches.len(), total, "every batch acked exactly once");
    batches.sort_by_key(|&(seq, _, _)| seq);
    let seqs: Vec<u64> = batches.iter().map(|&(seq, _, _)| seq).collect();
    assert_eq!(
        seqs,
        (1..=total as u64).collect::<Vec<_>>(),
        "ack seqs are exactly 1..=batches: none lost, none duplicated"
    );

    // --- Monotone engine epoch ----------------------------------------
    let epochs: Vec<u64> = batches.iter().map(|&(_, _, e)| e).collect();
    assert!(
        epochs.windows(2).all(|w| w[0] <= w[1]),
        "epoch never moves backwards in seq order"
    );
    assert!(
        *epochs.last().expect("batches nonempty") > 0,
        "the aggressive policy must actually compact during the run"
    );

    // --- Replay determinism -------------------------------------------
    // A fresh engine replaying the acked op log sequentially must land
    // on the exact same snapshot bytes as the contended server did.
    let mut replay = DynamicEngine::with_options(ds, options());
    for (seq, ops, _) in &batches {
        replay
            .apply_all(ops)
            .unwrap_or_else(|(i, e)| panic!("replay of batch seq={seq} failed at op {i}: {e}"));
    }
    let served_bytes = store::encode_engine(&mut served);
    let replay_bytes = store::encode_engine(&mut replay);
    assert_eq!(
        served_bytes, replay_bytes,
        "served engine is bit-identical to the sequential replay"
    );
    // And the snapshot the server left on disk is that same state.
    let disk = std::fs::read(&snap_path).expect("snapshot file exists");
    assert_eq!(disk, served_bytes, "on-disk snapshot matches");
    let _ = std::fs::remove_file(&snap_path);
}
