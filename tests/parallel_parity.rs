//! The differential-testing harness pinning the sharded parallel engine
//! to the sequential oracles.
//!
//! Grid (from the PR-3 acceptance criteria): shard counts {1, 2, 3, 7} ×
//! thread counts {1, 2, 4} × missing rates {0.1, 0.3, 0.6} ×
//! k ∈ {1, n − 1, n, n + 5}. For every cell, parallel BIG and IBIG must
//! return **identical entries, scores, and tie order** to the sequential
//! scratch engines (which are themselves pinned to the allocating
//! `#[cfg(test)]` oracles by the proptests inside `tkd-core`), and the
//! serving engine must agree query-by-query under batching.

mod common;

use common::synth;
use tkdi::core::{
    big, ibig, parallel_big, parallel_ibig, Algorithm, EngineQuery, ParallelEngine,
    ShardedBigContext, ShardedIbigContext,
};

const SHARDS: [usize; 4] = [1, 2, 3, 7];
const THREADS: [usize; 3] = [1, 2, 4];
const MISSING: [u64; 3] = [10, 30, 60];

fn grid_ks(n: usize) -> Vec<usize> {
    let mut ks = vec![1, n.saturating_sub(1).max(1), n, n + 5];
    ks.sort_unstable();
    ks.dedup();
    ks
}

#[test]
fn parallel_big_differential_grid() {
    for (seed, &missing) in MISSING.iter().enumerate() {
        let ds = synth(100 + seed as u64, 150, 4, 8, missing);
        let seq = big::BigContext::build(&ds);
        for &shards in &SHARDS {
            let ctx = ShardedBigContext::build(&ds, shards);
            for &threads in &THREADS {
                for k in grid_ks(ds.len()) {
                    let reference = big::big_with(&seq, k);
                    let par = parallel_big(&ctx, k, threads);
                    assert_eq!(
                        par.entries(),
                        reference.entries(),
                        "missing={missing}% shards={shards} threads={threads} k={k}"
                    );
                    assert_eq!(
                        par.stats.h1_pruned, reference.stats.h1_pruned,
                        "H1 must fire at the same queue position \
                         (missing={missing}% shards={shards} threads={threads} k={k})"
                    );
                }
            }
        }
    }
}

#[test]
fn parallel_ibig_differential_grid() {
    for (seed, &missing) in MISSING.iter().enumerate() {
        let ds = synth(200 + seed as u64, 150, 4, 8, missing);
        for bins in [2usize, 5] {
            let bins_per_dim = vec![bins; ds.dims()];
            let seq: ibig::IbigContext<'_> = ibig::IbigContext::build(&ds, &bins_per_dim);
            for &shards in &SHARDS {
                let ctx: ShardedIbigContext<'_> =
                    ShardedIbigContext::build(&ds, &bins_per_dim, shards);
                for &threads in &THREADS {
                    for k in grid_ks(ds.len()) {
                        let reference = ibig::ibig_with(&seq, k);
                        let par = parallel_ibig(&ctx, k, threads);
                        assert_eq!(
                            par.entries(),
                            reference.entries(),
                            "missing={missing}% bins={bins} shards={shards} \
                             threads={threads} k={k}"
                        );
                    }
                }
            }
        }
    }
}

/// The serving engine under a batched multi-user mix agrees with the
/// sequential engines for every query of the batch.
#[test]
fn engine_batch_differential() {
    let ds = synth(42, 200, 4, 10, 30);
    let seq = big::BigContext::build(&ds);
    let ibins = vec![4usize; ds.dims()];
    let iseq: ibig::IbigContext<'_> = ibig::IbigContext::build(&ds, &ibins);
    for &threads in &THREADS {
        let engine = ParallelEngine::builder(&ds)
            .threads(threads)
            .shards(3)
            .bins(ibins.clone())
            .build();
        let batch: Vec<EngineQuery> = (0..24)
            .map(|i| {
                EngineQuery::new(1 + (i * 7) % 19).algorithm(if i % 2 == 0 {
                    Algorithm::Big
                } else {
                    Algorithm::Ibig
                })
            })
            .collect();
        let got = engine.query_many(&batch);
        for (q, r) in batch.iter().zip(&got) {
            let reference = match q.algorithm {
                Algorithm::Big => big::big_with(&seq, q.k),
                Algorithm::Ibig => ibig::ibig_with(&iseq, q.k),
                _ => unreachable!(),
            };
            assert_eq!(
                r.entries(),
                reference.entries(),
                "threads={threads} {:?} k={}",
                q.algorithm,
                q.k
            );
        }
    }
}
