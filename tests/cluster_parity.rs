//! The differential harness pinning the multi-process cluster to the
//! in-process engines.
//!
//! Every cell spins up real worker processes-worth of machinery (worker
//! threads speaking the v5 cluster plane over real TCP sockets, shard
//! snapshots on disk) and demands **bit-identical** answers — entries,
//! scores, tie order, and the H1 cutoff position — against a
//! [`ParallelEngine`] (static grid) or a twin [`DynamicEngine`]
//! (interleaved updates). The failure legs kill a worker mid-stream and
//! require either a typed error or a correct retried answer; a wrong
//! answer is never acceptable.

mod common;

use common::{apply_to_mirror, random_op, synth, Mirror, Mix};
use std::net::SocketAddr;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use tkdi::cluster::{ClusterConfig, ClusterError, Coordinator, Worker, WorkerConfig};
use tkdi::core::{Algorithm, DynamicEngine, EngineQuery, ParallelEngine, TkdResult, UpdateOp};

const SHARDS: [usize; 3] = [1, 2, 3];
const MISSING: [u64; 3] = [10, 30, 60];
const ALGS: [Algorithm; 2] = [Algorithm::Big, Algorithm::Ibig];

fn grid_ks(n: usize) -> Vec<usize> {
    let mut ks = vec![1, 3, n.saturating_sub(1).max(1), n, n + 5];
    ks.sort_unstable();
    ks.dedup();
    ks
}

/// A unique scratch handoff directory per cell, removed on drop.
struct ScratchDir(PathBuf);

impl ScratchDir {
    fn new(tag: &str) -> ScratchDir {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("tkd-cluster-{tag}-{}-{n}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("scratch dir");
        ScratchDir(dir)
    }
}

impl Drop for ScratchDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn start_workers(n: usize) -> (Vec<Worker>, Vec<SocketAddr>) {
    let workers: Vec<Worker> = (0..n)
        .map(|_| Worker::start("127.0.0.1:0", WorkerConfig::default()).expect("worker start"))
        .collect();
    let addrs = workers.iter().map(Worker::local_addr).collect();
    (workers, addrs)
}

fn entries(r: &TkdResult) -> Vec<(u32, usize)> {
    r.iter().map(|e| (e.id, e.score)).collect()
}

/// Static grid: shard counts × missing rates × both algorithms × edge
/// ks, against a `ParallelEngine` over the same rows.
#[test]
fn cluster_differential_grid() {
    for (seed, &missing) in MISSING.iter().enumerate() {
        let ds = synth(700 + seed as u64, 60, 3, 6, missing);
        let oracle = ParallelEngine::builder(&ds).threads(2).shards(2).build();
        for &shards in &SHARDS {
            // Fresh fleet per cell: a worker keeps hosting its shards
            // until handed off, so each cluster gets its own workers.
            let (workers, addrs) = start_workers(2);
            let scratch = ScratchDir::new("grid");
            let mut coord = Coordinator::seed(&ds, shards, &addrs, ClusterConfig::new(&scratch.0))
                .expect("seed cluster");
            for &alg in &ALGS {
                for k in grid_ks(ds.len()) {
                    let reference = oracle.query(&EngineQuery::new(k).algorithm(alg));
                    let got = coord.query(k, alg).expect("cluster query");
                    assert_eq!(
                        entries(&got),
                        entries(&reference),
                        "missing={missing}% shards={shards} alg={alg:?} k={k}"
                    );
                    assert_eq!(
                        got.stats.h1_pruned, reference.stats.h1_pruned,
                        "H1 must fire at the same queue position \
                         (missing={missing}% shards={shards} alg={alg:?} k={k})"
                    );
                }
            }
            for w in workers {
                w.stop();
            }
        }
    }
}

/// Interleaved updates (inserts, deletes, cell edits) routed through
/// the cluster's single-writer path, with a mid-run shard handoff,
/// against a twin dynamic engine fed the identical op stream.
#[test]
fn cluster_interleaved_updates_and_handoff() {
    const ROUNDS: usize = 8;
    const OPS_PER_ROUND: usize = 5;
    for (seed, &missing) in MISSING.iter().enumerate() {
        let ds = synth(800 + seed as u64, 40, 3, 6, missing);
        let initial: Vec<Vec<Option<f64>>> = (0..ds.len())
            .map(|i| (0..ds.dims()).map(|d| ds.value(i as u32, d)).collect())
            .collect();
        for &shards in &[2usize, 3] {
            let (workers, addrs) = start_workers(2);
            let scratch = ScratchDir::new("updates");
            let mut coord = Coordinator::seed(&ds, shards, &addrs, ClusterConfig::new(&scratch.0))
                .expect("seed cluster");
            // A twin engine fed the identical op stream is the oracle.
            let mut twin = DynamicEngine::new(ds.clone());
            let mut rng = Mix(0xC1E5_7E00 + seed as u64 * 31 + shards as u64);
            let mut mirror = Mirror::seeded(&initial);
            let mut next_id = ds.len() as u32;
            for round in 0..ROUNDS {
                let ops: Vec<UpdateOp> = (0..OPS_PER_ROUND)
                    .map(|_| {
                        let op = random_op(&mut rng, &mirror, ds.dims(), missing);
                        apply_to_mirror(&mut mirror, &op, &mut next_id);
                        op
                    })
                    .collect();
                let report = twin.apply_ops(&ops);
                assert!(report.error.is_none(), "harness sends only valid ops");
                coord.update(&ops).expect("cluster update");
                assert_eq!(coord.len(), mirror.rows.len());
                // The handoff dir stays self-describing: the manifest
                // names each shard's committed snapshot, the stamp in
                // the file name agrees, and the file exists.
                let manifest =
                    tkdi::store::ClusterManifest::load(coord.manifest_path()).expect("manifest");
                assert_eq!(manifest.shards.len(), shards);
                assert_eq!(
                    manifest.shards.iter().map(|e| e.live).sum::<u64>(),
                    mirror.rows.len() as u64
                );
                for e in &manifest.shards {
                    assert_eq!(
                        tkdi::cluster::seq_from_path(std::path::Path::new(&e.path)),
                        Some(e.seq)
                    );
                    assert!(scratch.0.join(&e.path).is_file());
                }
                if round == ROUNDS / 2 {
                    // Move shard 0 to the other worker mid-run; answers
                    // afterwards must not change by a bit.
                    let to = (coord.worker_of(0) + 1) % addrs.len();
                    coord.handoff(0, to).expect("handoff");
                    assert_eq!(coord.worker_of(0), to);
                }
                for k in [1usize, 7] {
                    for &alg in &ALGS {
                        let reference = twin
                            .query(&EngineQuery::new(k).algorithm(alg))
                            .expect("BIG/IBIG supported");
                        let got = coord.query(k, alg).expect("cluster query");
                        assert_eq!(
                            entries(&got),
                            entries(&reference),
                            "missing={missing}% shards={shards} round={round} alg={alg:?} k={k}"
                        );
                        assert_eq!(
                            got.stats.h1_pruned, reference.stats.h1_pruned,
                            "missing={missing}% shards={shards} round={round} alg={alg:?} k={k}"
                        );
                    }
                }
            }
            for w in workers {
                w.stop();
            }
        }
    }
}

/// Killing a worker mid-stream must never produce a wrong answer: the
/// coordinator detects the death, re-assigns the dead worker's shards
/// from their newest committed snapshots, and the retried query is
/// bit-identical. With every worker dead, the query fails typed.
#[test]
fn killed_worker_is_repaired_or_fails_typed() {
    let ds = synth(900, 50, 3, 6, 30);
    let (mut workers, addrs) = start_workers(3);
    let scratch = ScratchDir::new("kill");
    let mut coord =
        Coordinator::seed(&ds, 3, &addrs, ClusterConfig::new(&scratch.0)).expect("seed cluster");

    // Route a batch through first so at least one shard has seq > 0 and
    // repair has to pick the *newest* snapshot, not the seed.
    let ops = vec![
        UpdateOp::Insert(vec![Some(5.0), Some(5.0), Some(5.0)]),
        UpdateOp::Delete(3),
    ];
    coord.update(&ops).expect("cluster update");
    let mut twin = DynamicEngine::new(ds.clone());
    assert!(twin.apply_ops(&ops).error.is_none());

    // Baseline agreement before any failure.
    let reference = entries(&twin.query(&EngineQuery::new(5)).expect("big"));
    assert_eq!(
        entries(&coord.query(5, Algorithm::Big).expect("healthy query")),
        reference
    );

    // Kill one worker abruptly (no handoff, no drain). The next query
    // hits a dead socket; the coordinator must repair and retry.
    workers.remove(1).kill();
    let got = coord.query(5, Algorithm::Big);
    match got {
        Ok(r) => assert_eq!(entries(&r), reference, "retried answer must be exact"),
        Err(e) => assert!(
            matches!(
                e,
                ClusterError::Worker(_) | ClusterError::NoWorkers | ClusterError::Store(_)
            ),
            "typed error only, got {e}"
        ),
    }
    // With two survivors the repair must actually succeed.
    let healed = coord.query(5, Algorithm::Big).expect("repaired query");
    assert_eq!(entries(&healed), reference);
    assert!(coord.stats.repairs >= 1, "repair path must have run");
    assert_eq!(coord.live_workers(), 2);

    // Updates keep flowing through the repaired topology.
    let more = vec![UpdateOp::Insert(vec![Some(4.0), None, Some(4.0)])];
    coord.update(&more).expect("post-repair update");
    assert!(twin.apply_ops(&more).error.is_none());
    let reference = entries(&twin.query(&EngineQuery::new(5)).expect("big"));
    assert_eq!(
        entries(&coord.query(5, Algorithm::Big).expect("post-repair query")),
        reference
    );

    // Kill the rest: the query must fail with a typed error, never a
    // partial or wrong result.
    for w in workers.drain(..) {
        w.kill();
    }
    let err = coord.query(5, Algorithm::Big).expect_err("no workers left");
    assert!(
        matches!(
            err,
            ClusterError::NoWorkers | ClusterError::Worker(_) | ClusterError::Store(_)
        ),
        "typed error only, got {err}"
    );
}
