//! Adversarial-dataset regressions: inputs engineered to hit the known
//! sharp edges of the bitmap machinery — IEEE −0.0/+0.0 aliasing (the
//! PR-2 `total_cmp` fix), rows observing almost nothing, single-value
//! columns, and exact duplicate objects. Every algorithm — sequential,
//! parallel, and the serving engine — is asserted against the Naive
//! oracle on each of them.

use tkdi::core::{Algorithm, EngineQuery, ParallelEngine, TkdQuery};
use tkdi::model::{Dataset, ModelError};

fn naive_scores(ds: &Dataset, k: usize) -> Vec<usize> {
    TkdQuery::new(k)
        .algorithm(Algorithm::Naive)
        .run(ds)
        .scores()
}

/// Run the full algorithm matrix (sequential × parallel × engine) against
/// Naive on the given dataset.
fn assert_all_algorithms_agree(name: &str, ds: &Dataset) {
    let engine = ParallelEngine::builder(ds).threads(2).shards(2).build();
    for k in [1usize, 2, ds.len() / 2 + 1, ds.len(), ds.len() + 3] {
        let reference = naive_scores(ds, k);
        for alg in Algorithm::ALL {
            let r = TkdQuery::new(k).algorithm(alg).run(ds);
            assert_eq!(r.scores(), reference, "{name}: {alg:?} k={k}");
            if matches!(alg, Algorithm::Big | Algorithm::Ibig) {
                for threads in [2usize, 4] {
                    let p = TkdQuery::new(k).algorithm(alg).threads(threads).run(ds);
                    assert_eq!(
                        p.scores(),
                        reference,
                        "{name}: parallel {alg:?} threads={threads} k={k}"
                    );
                }
            }
            let e = engine.query(&EngineQuery::new(k).algorithm(alg));
            assert_eq!(e.scores(), reference, "{name}: engine {alg:?} k={k}");
        }
    }
}

/// −0.0 and +0.0 compare equal under IEEE but differ under `total_cmp`;
/// the index build and every value probe must agree on one ordering.
/// Pins the PR-2 `BitmapIndex::build` fix across the whole matrix.
#[test]
fn signed_zero_mixes() {
    let ds = Dataset::from_rows(
        2,
        &[
            vec![Some(-0.0), Some(1.0)],
            vec![Some(0.0), Some(-0.0)],
            vec![Some(-0.0), Some(0.0)],
            vec![Some(0.0), Some(2.0)],
            vec![Some(1.0), Some(-0.0)],
            vec![None, Some(0.0)],
            vec![Some(-0.0), None],
            vec![Some(-1.0), Some(0.0)],
        ],
    )
    .unwrap();
    assert_all_algorithms_agree("signed-zeros", &ds);
    // The two all-zero rows (1 and 2) tie each other everywhere: neither
    // may ever dominate the other, whatever the zero signs.
    let full = TkdQuery::new(ds.len()).algorithm(Algorithm::Naive).run(&ds);
    let score_of = |id: u32| full.iter().find(|e| e.id == id).unwrap().score;
    assert_eq!(score_of(1), score_of(2), "sign of zero leaked into scores");
}

/// The model forbids rows with every attribute missing — a dataset can
/// not smuggle one in through any constructor.
#[test]
fn all_attributes_missing_rows_are_rejected() {
    let err = Dataset::from_rows(3, &[vec![Some(1.0), None, None], vec![None, None, None]]);
    assert!(
        matches!(err, Err(ModelError::AllMissingRow(1))),
        "all-missing row must be rejected, got {err:?}"
    );
}

/// Rows observing exactly one attribute each — the nearest legal thing to
/// all-missing rows: maximally sparse masks, every cross-mask pair is
/// incomparable unless they share their single dimension.
#[test]
fn minimally_observed_rows() {
    let mut rows = Vec::new();
    for i in 0..30 {
        let d = i % 3;
        let mut row = vec![None, None, None];
        row[d] = Some(((i * 7) % 5) as f64);
        rows.push(row);
    }
    let ds = Dataset::from_rows(3, &rows).unwrap();
    assert_all_algorithms_agree("minimally-observed", &ds);
}

/// A column with a single distinct value (and one fully constant
/// dataset): degenerate cardinality, every observed pair ties there.
#[test]
fn single_distinct_value_columns() {
    let mut rows = Vec::new();
    for i in 0..25 {
        rows.push(vec![
            Some(7.5),                              // constant column
            Some((i % 4) as f64),                   // normal column
            (i % 5 != 0).then_some((i % 3) as f64), // column with holes
        ]);
    }
    let ds = Dataset::from_rows(3, &rows).unwrap();
    assert_all_algorithms_agree("single-value-column", &ds);

    let constant = Dataset::from_rows(2, &vec![vec![Some(1.0), Some(2.0)]; 12]).unwrap();
    assert_all_algorithms_agree("fully-constant", &constant);
    // Nobody dominates anybody in a fully constant dataset.
    assert_eq!(naive_scores(&constant, 12), vec![0; 12]);
}

/// Exact duplicate objects: duplicates tie everywhere, so they must all
/// receive identical scores and never count one another as dominated.
#[test]
fn duplicate_objects() {
    let mut rows = Vec::new();
    for i in 0..10 {
        let row = vec![Some((i % 3) as f64), (i % 4 != 0).then_some((i % 2) as f64)];
        rows.push(row.clone());
        rows.push(row); // exact duplicate
    }
    let ds = Dataset::from_rows(2, &rows).unwrap();
    assert_all_algorithms_agree("duplicates", &ds);
    let full = TkdQuery::new(ds.len()).algorithm(Algorithm::Naive).run(&ds);
    for pair in 0..10u32 {
        let a = full.iter().find(|e| e.id == 2 * pair).unwrap().score;
        let b = full.iter().find(|e| e.id == 2 * pair + 1).unwrap().score;
        assert_eq!(a, b, "duplicate pair {pair} diverged");
    }
}
