//! Regression tests for `tkdq`'s snapshot-mode flag conflicts: every
//! snapshot-serving command (`query --index`, `update --index`, `serve`)
//! must reject build-time-fixed flags (`--bins`, `--compact-threshold`)
//! and raw-dataset-only flags (`--subspace`) with the **same** targeted
//! message — previously only `query` rejected them and the others
//! silently ignored the flag, so e.g. `serve --index S --bins 4` looked
//! like it worked while serving the snapshot's baked-in binning.

use std::path::PathBuf;
use std::process::{Command, Output};
use tkdi::data::synthetic::{generate, Distribution, SyntheticConfig};
use tkdi::model::io;

fn tkdq(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_tkdq"))
        .args(args)
        .output()
        .expect("tkdq runs")
}

fn stderr_of(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

/// A tiny dataset file + built snapshot + valid ops script in a scratch
/// dir, shared by every conflict probe.
fn fixtures() -> (PathBuf, String, String, String) {
    let dir = std::env::temp_dir().join(format!("tkdq_cli_conflicts_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    let data = dir.join("data.txt").to_string_lossy().into_owned();
    let snap = dir.join("index.snap").to_string_lossy().into_owned();
    let ops = dir.join("ops.txt").to_string_lossy().into_owned();
    let ds = generate(&SyntheticConfig {
        n: 20,
        dims: 3,
        cardinality: 10,
        missing_rate: 0.2,
        distribution: Distribution::Independent,
        seed: 7,
    });
    std::fs::write(&data, io::to_text(&ds)).expect("write dataset");
    std::fs::write(&ops, "set 0 0 1\n").expect("write ops");
    let built = tkdq(&["build", &data, "--out", &snap, "--bins", "3"]);
    assert!(built.status.success(), "build: {}", stderr_of(&built));
    (dir, data, snap, ops)
}

#[test]
fn snapshot_conflicts_are_rejected_uniformly() {
    let (dir, data, snap, ops) = fixtures();

    // Sanity: the snapshot itself serves queries and updates.
    let ok = tkdq(&["query", "--index", &snap, "--k", "3"]);
    assert!(ok.status.success(), "clean query: {}", stderr_of(&ok));

    // Each conflicting flag × each snapshot-mode command: exit code 2
    // and the one shared message for that flag.
    let probes: [(&str, &str, &str); 3] = [
        ("--bins", "4", "--bins is fixed at build time"),
        (
            "--compact-threshold",
            "0.5",
            "--compact-threshold is fixed at build time",
        ),
        ("--subspace", "0,1", "--subspace projects the raw dataset"),
    ];
    for (flag, value, message) in probes {
        let commands: [Vec<&str>; 3] = [
            vec!["query", "--index", &snap, "--k", "3", flag, value],
            vec![
                "update", "--index", &snap, "--ops", &ops, "--k", "3", flag, value,
            ],
            vec!["serve", "--index", &snap, flag, value],
        ];
        let mut messages = Vec::new();
        for argv in &commands {
            let out = tkdq(argv);
            assert_eq!(
                out.status.code(),
                Some(2),
                "{argv:?} must reject {flag}, got: {}",
                stderr_of(&out)
            );
            let err = stderr_of(&out);
            assert!(
                err.contains(message),
                "{argv:?}: expected {message:?} in {err:?}"
            );
            // The targeted first line, identical across commands.
            messages.push(err.lines().next().unwrap_or_default().to_string());
        }
        assert!(
            messages.windows(2).all(|w| w[0] == w[1]),
            "{flag}: commands disagree on the message: {messages:?}"
        );
    }

    // The update path still works when the flags are dropped — the
    // rejection above fired before anything touched the snapshot.
    let ok = tkdq(&["update", "--index", &snap, "--ops", &ops, "--k", "3"]);
    assert!(ok.status.success(), "clean update: {}", stderr_of(&ok));

    // File mode keeps accepting the same flags (they are only conflicts
    // against a snapshot).
    let ok = tkdq(&[
        "query",
        &data,
        "--k",
        "3",
        "--bins",
        "4",
        "--subspace",
        "0,1",
    ]);
    assert!(ok.status.success(), "file-mode query: {}", stderr_of(&ok));

    let _ = std::fs::remove_dir_all(&dir);
}
