//! The re-query-oracle parity gate for standing queries (PR-8 tentpole).
//!
//! Grid (from the ISSUE-8 acceptance criteria): randomized op streams over
//! ≥ 3 seeds × missing rates {0.1, 0.3, 0.6} × algorithms {BIG, IBIG} ×
//! edge-heavy `k` set × fallback thresholds {0.0, 0.25, 1.0} — the forced
//! fallback path, the default, and the never-fallback pure-patch path.
//! After every [`DynamicEngine::apply_ops`] batch, every standing result
//! must be **bit-identical** — same entries, same scores, same tie order —
//! to a from-scratch [`TkdQuery`] over the harness's *own* mirror of the
//! live rows, and every [`Notification`] delta must reconstruct the new
//! result from the old one losslessly. Sliding windows, subspace and
//! constraint scopes, and aggressive mid-stream compaction run the same
//! gate.

mod common;

use common::{apply_to_mirror, random_op, row, Mirror, Mix};
use tkdi::core::dynamic::{CompactionPolicy, DynamicOptions};
use tkdi::core::standing::apply_notification;
use tkdi::core::{variants, BinChoice, ResultEntry, TkdQuery};
use tkdi::prelude::*;
use tkdi::skyline::constrained::Constraints;

/// Re-query oracle: run the one-shot query stack over the mirror's live
/// rows, translating row positions to stable ids. Positions are insertion
/// order, which is stable-id order, so tie order carries over verbatim.
fn requery_oracle(mirror: &Mirror, spec: &StandingSpec) -> Vec<ResultEntry> {
    if mirror.rows.is_empty() {
        return Vec::new();
    }
    let ds = mirror.dataset();
    let ids = mirror.ids();
    let q = TkdQuery::new(spec.k).algorithm(spec.algorithm);
    let result = if let Some(dims) = &spec.subspace {
        variants::subspace_top_k(&ds, dims, &q).expect("valid subspace")
    } else if !spec.constraint.is_empty() {
        let mut c = Constraints::none(ds.dims());
        for &(d, lo, hi) in &spec.constraint {
            c = c.with_range(d, lo, hi);
        }
        variants::constrained_top_k(&ds, &c, &q)
    } else {
        q.run(&ds)
    };
    result
        .iter()
        .map(|e| ResultEntry {
            id: ids[e.id as usize],
            score: e.score,
        })
        .collect()
}

/// A subscription the harness tracks on its own: the engine id, the spec,
/// and the subscriber-side view rebuilt purely from notification deltas.
struct Sub {
    id: u64,
    spec: StandingSpec,
    view: Vec<ResultEntry>,
    last_seq: u64,
}

fn subscribe(engine: &mut DynamicEngine, spec: StandingSpec) -> Sub {
    let id = engine.register(spec.clone()).expect("valid spec");
    let view = engine.standing_result(id).unwrap().to_vec();
    Sub {
        id,
        spec,
        view,
        last_seq: 0,
    }
}

/// The parity cell: after one batch, every subscription's engine-side
/// result equals the re-query oracle bit-for-bit, and its delta-rebuilt
/// subscriber view equals the engine-side result.
fn assert_batch(
    engine: &DynamicEngine,
    report: &BatchReport,
    subs: &mut [Sub],
    mirror: &Mirror,
    tag: &str,
) {
    assert!(report.error.is_none(), "{tag}: harness sends valid ops");
    assert_eq!(
        report.notifications.len(),
        subs.len(),
        "{tag}: one notification per query per batch, empty deltas included"
    );
    for sub in subs.iter_mut() {
        let note = report
            .notifications
            .iter()
            .find(|n| n.id == sub.id)
            .unwrap_or_else(|| panic!("{tag}: notification for query {}", sub.id));
        assert_eq!(note.batch_seq, report.batch_seq, "{tag}: seq");
        assert!(note.batch_seq > sub.last_seq, "{tag}: seq monotonic");
        sub.last_seq = note.batch_seq;
        let engine_result = engine.standing_result(sub.id).unwrap();
        let oracle = requery_oracle(mirror, &sub.spec);
        assert_eq!(engine_result, oracle, "{tag}: query {} vs oracle", sub.id);
        sub.view = apply_notification(&sub.view, note);
        assert_eq!(sub.view, engine_result, "{tag}: delta-rebuilt view");
        assert_eq!(
            note.kth_score,
            oracle.last().map(|e| e.score),
            "{tag}: kth_score"
        );
    }
}

/// One grid cell: a randomized op stream with one standing query per
/// (algorithm × k-edge) pair at the given fallback threshold, checked
/// after every batch.
fn run_stream(seed: u64, missing_pct: u64, fallback: f64, policy: CompactionPolicy) {
    let dims = 3;
    let mut rng = Mix(seed);
    let initial: Vec<Vec<Option<f64>>> =
        (0..12).map(|_| row(&mut rng, dims, missing_pct)).collect();
    let ds = Dataset::from_rows(dims, &initial).unwrap();
    let n = ds.len();
    let mut next_id = ds.len() as ObjectId;
    let mut mirror = Mirror::seeded(&initial);
    let mut engine = DynamicEngine::with_options(
        ds,
        DynamicOptions {
            bins: BinChoice::Fixed(3),
            policy,
        },
    );
    let mut subs = Vec::new();
    for alg in [Algorithm::Big, Algorithm::Ibig] {
        for k in [0usize, 1, 2, n - 1, n + 5] {
            subs.push(subscribe(
                &mut engine,
                StandingSpec::new(k)
                    .algorithm(alg)
                    .fallback_fraction(fallback),
            ));
        }
    }
    // Registration answers match the oracle before any batch runs.
    for sub in &subs {
        assert_eq!(
            engine.standing_result(sub.id).unwrap(),
            requery_oracle(&mirror, &sub.spec),
            "seed={seed} registration k={}",
            sub.spec.k
        );
    }
    for batch in 0..10 {
        let ops: Vec<UpdateOp> = (0..6)
            .map(|_| {
                let op = random_op(&mut rng, &mirror, dims, missing_pct);
                apply_to_mirror(&mut mirror, &op, &mut next_id);
                op
            })
            .collect();
        let report = engine.apply_ops(&ops);
        assert_batch(
            &engine,
            &report,
            &mut subs,
            &mirror,
            &format!("seed={seed} missing={missing_pct} fb={fallback} batch={batch}"),
        );
    }
    // The threshold semantics themselves: 0.0 forces the fallback path on
    // every effective batch, 1.0 never takes it (live dirt ÷ live ≤ 1,
    // comparison is strict).
    for sub in &subs {
        let stats = engine.standing_stats(sub.id).unwrap();
        assert_eq!(stats.batches, 10);
        if fallback == 0.0 {
            assert_eq!(stats.patched, 0, "fb=0 must never patch");
            assert!(stats.fallbacks > 0, "fb=0 must exercise the fallback");
        } else if fallback == 1.0 {
            assert_eq!(stats.fallbacks, 0, "fb=1 must never fall back");
            assert!(stats.patched > 0, "fb=1 must exercise the patch path");
        }
    }
}

#[test]
fn standing_parity_missing_10() {
    for (seed, fallback) in [(1u64, 0.0), (2, 0.25), (3, 1.0)] {
        run_stream(seed, 10, fallback, CompactionPolicy::never());
    }
}

#[test]
fn standing_parity_missing_30() {
    for (seed, fallback) in [(4u64, 0.0), (5, 0.25), (6, 1.0)] {
        run_stream(seed, 30, fallback, CompactionPolicy::never());
    }
}

#[test]
fn standing_parity_missing_60() {
    for (seed, fallback) in [(7u64, 0.0), (8, 0.25), (9, 1.0)] {
        run_stream(seed, 60, fallback, CompactionPolicy::never());
    }
}

#[test]
fn standing_parity_with_aggressive_compaction() {
    // Eager compaction renumbers slots and bumps the epoch mid-stream;
    // standing results must be unaffected (the patch layer goes all-dirty
    // on compaction and re-scores from the rebuilt index).
    let policy = CompactionPolicy {
        max_tombstone_fraction: 0.1,
        min_dead: 2,
    };
    for (seed, missing, fallback) in [(10u64, 10u64, 0.25), (11, 30, 1.0), (12, 60, 0.0)] {
        run_stream(seed, missing, fallback, policy);
    }
}

#[test]
fn standing_parity_scoped_queries() {
    // Subspace and constraint standing queries ride the same stream; both
    // re-query their derived dataset when touched and skip when provably
    // out of scope — either way the oracle equality must hold.
    let dims = 4;
    for (seed, missing) in [(30u64, 10u64), (31, 30), (32, 60)] {
        let mut rng = Mix(seed);
        let initial: Vec<Vec<Option<f64>>> =
            (0..14).map(|_| row(&mut rng, dims, missing)).collect();
        let ds = Dataset::from_rows(dims, &initial).unwrap();
        let mut next_id = ds.len() as ObjectId;
        let mut mirror = Mirror::seeded(&initial);
        let mut engine = DynamicEngine::new(ds);
        let mut subs = vec![
            subscribe(&mut engine, StandingSpec::new(3).subspace(vec![0, 2])),
            subscribe(
                &mut engine,
                StandingSpec::new(3)
                    .algorithm(Algorithm::Ibig)
                    .subspace(vec![1, 2, 3]),
            ),
            subscribe(&mut engine, StandingSpec::new(4).constrain(0, 0.0, 4.0)),
            subscribe(
                &mut engine,
                StandingSpec::new(2)
                    .constrain(1, 1.0, 6.0)
                    .constrain(3, 0.0, 3.5),
            ),
            // A full-space control query in the same registry.
            subscribe(&mut engine, StandingSpec::new(3)),
        ];
        for batch in 0..8 {
            let ops: Vec<UpdateOp> = (0..5)
                .map(|_| {
                    let op = random_op(&mut rng, &mirror, dims, missing);
                    apply_to_mirror(&mut mirror, &op, &mut next_id);
                    op
                })
                .collect();
            let report = engine.apply_ops(&ops);
            assert_batch(
                &engine,
                &report,
                &mut subs,
                &mirror,
                &format!("scoped seed={seed} batch={batch}"),
            );
        }
    }
}

#[test]
fn standing_parity_sliding_window() {
    // A window cap ages out the oldest stable ids after each batch; the
    // harness evicts its mirror identically and the oracle equality holds
    // over the surviving rows.
    let dims = 3;
    for (seed, missing, cap) in [(40u64, 10u64, 12), (41, 30, 9), (42, 60, 15)] {
        let mut rng = Mix(seed);
        let initial: Vec<Vec<Option<f64>>> =
            (0..cap).map(|_| row(&mut rng, dims, missing)).collect();
        let ds = Dataset::from_rows(dims, &initial).unwrap();
        let mut next_id = ds.len() as ObjectId;
        let mut mirror = Mirror::seeded(&initial);
        let mut engine = DynamicEngine::new(ds);
        engine.set_window(Some(cap));
        let mut subs = vec![
            subscribe(&mut engine, StandingSpec::new(3)),
            subscribe(
                &mut engine,
                StandingSpec::new(4)
                    .algorithm(Algorithm::Ibig)
                    .fallback_fraction(1.0),
            ),
        ];
        for batch in 0..10 {
            // Insert-heavy traffic so the window actually slides.
            let ops: Vec<UpdateOp> = (0..4)
                .map(|i| {
                    let op = if i % 2 == 0 {
                        UpdateOp::Insert(row(&mut rng, dims, missing))
                    } else {
                        random_op(&mut rng, &mirror, dims, missing)
                    };
                    apply_to_mirror(&mut mirror, &op, &mut next_id);
                    op
                })
                .collect();
            let report = engine.apply_ops(&ops);
            // Mirror the age-out: evict oldest (smallest stable id — the
            // mirror keeps insertion order) down to the cap.
            let mut expect_aged = Vec::new();
            while mirror.rows.len() > cap {
                expect_aged.push(mirror.rows.remove(0).0);
            }
            assert_eq!(
                report.aged_out, expect_aged,
                "window seed={seed} batch={batch}: aged-out ids"
            );
            assert!(engine.len() <= cap, "window seed={seed}: capacity held");
            assert_batch(
                &engine,
                &report,
                &mut subs,
                &mirror,
                &format!("window seed={seed} batch={batch}"),
            );
        }
    }
}

#[test]
fn standing_register_unregister_mid_stream() {
    // Queries come and go while ops flow: late registrations answer from
    // current state, unregistered ids stop notifying, and the engine
    // drops tracking entirely once the registry empties.
    let dims = 3;
    let missing = 30;
    let mut rng = Mix(50);
    let initial: Vec<Vec<Option<f64>>> = (0..10).map(|_| row(&mut rng, dims, missing)).collect();
    let ds = Dataset::from_rows(dims, &initial).unwrap();
    let mut next_id = ds.len() as ObjectId;
    let mut mirror = Mirror::seeded(&initial);
    let mut engine = DynamicEngine::new(ds);
    let mut subs = vec![subscribe(&mut engine, StandingSpec::new(2))];
    for batch in 0..12 {
        if batch == 4 {
            subs.push(subscribe(
                &mut engine,
                StandingSpec::new(3).algorithm(Algorithm::Ibig),
            ));
        }
        if batch == 8 {
            let gone = subs.remove(0);
            assert!(engine.unregister(gone.id));
            assert!(engine.standing_result(gone.id).is_none());
        }
        let ops: Vec<UpdateOp> = (0..5)
            .map(|_| {
                let op = random_op(&mut rng, &mirror, dims, missing);
                apply_to_mirror(&mut mirror, &op, &mut next_id);
                op
            })
            .collect();
        let report = engine.apply_ops(&ops);
        assert_batch(
            &engine,
            &report,
            &mut subs,
            &mirror,
            &format!("churn batch={batch}"),
        );
    }
    for sub in subs.drain(..) {
        assert!(engine.unregister(sub.id));
    }
    // Registry empty: batches still apply, notifications stop.
    let op = random_op(&mut rng, &mirror, dims, missing);
    apply_to_mirror(&mut mirror, &op, &mut next_id);
    let report = engine.apply_ops(&[op]);
    assert!(report.error.is_none());
    assert!(report.notifications.is_empty());
}
