//! `tkdq` — command-line top-k dominating queries on incomplete data.
//!
//! ```text
//! tkdq info <FILE>                         dataset statistics
//! tkdq query <FILE> --k K [options]        TKD query
//! tkdq skyline <FILE> [--band K]           skyline / k-skyband
//! tkdq generate --n N --dims D [options]   synthetic dataset to stdout
//!
//! Common options:
//!   --labeled              first column is an object label
//! Query options:
//!   --algorithm A          naive | esb | ubb | big | ibig   (default big)
//!   --bins X               IBIG bins per dimension           (default auto)
//!   --subspace 0,2,5       query a dimension subset
//!   --threads T            worker threads for big/ibig       (default 1)
//!   --stats                print pruning statistics
//! Generate options:
//!   --dist D               ind | ac | co                     (default ind)
//!   --missing R            missing rate in [0,1)             (default 0.1)
//!   --cardinality C        distinct values per dimension     (default 100)
//!   --seed S               RNG seed                          (default 42)
//! ```
//!
//! Files are comma/whitespace separated, `-` for missing, `#` comments.
//! Values are smaller-is-better.

use std::process::exit;
use tkdi::core::variants;
use tkdi::data::synthetic::{generate, Distribution, SyntheticConfig};
use tkdi::model::{io, stats, Dataset};
use tkdi::prelude::*;
use tkdi::skyline::incomplete;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        usage("missing command")
    };
    match cmd.as_str() {
        "info" => cmd_info(&args[1..]),
        "query" => cmd_query(&args[1..]),
        "skyline" => cmd_skyline(&args[1..]),
        "generate" => cmd_generate(&args[1..]),
        "--help" | "-h" | "help" => usage(""),
        other => usage(&format!("unknown command {other:?}")),
    }
}

/// Minimal flag parser: positional file + `--flag value` pairs + bare flags.
struct Opts {
    file: Option<String>,
    flags: Vec<(String, Option<String>)>,
}

const BARE_FLAGS: [&str; 2] = ["--labeled", "--stats"];

fn parse_opts(args: &[String]) -> Opts {
    let mut opts = Opts {
        file: None,
        flags: Vec::new(),
    };
    let mut i = 0;
    while i < args.len() {
        let a = &args[i];
        if let Some(name) = a.strip_prefix("--") {
            if BARE_FLAGS.contains(&a.as_str()) {
                opts.flags.push((name.to_string(), None));
            } else {
                i += 1;
                let Some(v) = args.get(i) else {
                    usage(&format!("missing value for --{name}"));
                };
                opts.flags.push((name.to_string(), Some(v.clone())));
            }
        } else if opts.file.is_none() {
            opts.file = Some(a.clone());
        } else {
            usage(&format!("unexpected argument {a:?}"));
        }
        i += 1;
    }
    opts
}

impl Opts {
    fn get(&self, name: &str) -> Option<&str> {
        self.flags
            .iter()
            .rev()
            .find(|(n, _)| n == name)
            .and_then(|(_, v)| v.as_deref())
    }

    fn has(&self, name: &str) -> bool {
        self.flags.iter().any(|(n, _)| n == name)
    }

    fn load(&self) -> Dataset {
        let Some(file) = &self.file else {
            usage("missing input file")
        };
        let text = std::fs::read_to_string(file).unwrap_or_else(|e| {
            eprintln!("error: cannot read {file}: {e}");
            exit(1);
        });
        let parsed = if self.has("labeled") {
            io::parse_labeled(&text)
        } else {
            io::parse(&text)
        };
        parsed.unwrap_or_else(|e| {
            eprintln!("error: cannot parse {file}: {e}");
            exit(1);
        })
    }
}

fn display_name(ds: &Dataset, o: ObjectId) -> String {
    ds.label(o)
        .map(str::to_string)
        .unwrap_or_else(|| format!("#{o}"))
}

fn cmd_info(args: &[String]) {
    let opts = parse_opts(args);
    let ds = opts.load();
    println!("objects:       {}", ds.len());
    println!("dimensions:    {}", ds.dims());
    println!("missing rate:  {:.2}%", 100.0 * stats::missing_rate(&ds));
    println!("mask groups:   {}", stats::group_by_mask(&ds).len());
    for d in 0..ds.dims() {
        let vals = stats::distinct_values(&ds, d);
        let range = match (vals.first(), vals.last()) {
            (Some(lo), Some(hi)) => format!("[{lo}, {hi}]"),
            _ => "(never observed)".into(),
        };
        println!(
            "  dim {d}: cardinality {:<6} observed {:<6} range {range}",
            vals.len(),
            stats::observed_count(&ds, d),
        );
    }
}

fn cmd_query(args: &[String]) {
    let opts = parse_opts(args);
    let ds = opts.load();
    let k: usize = opts
        .get("k")
        .unwrap_or_else(|| usage("query requires --k"))
        .parse()
        .unwrap_or_else(|_| usage("--k must be an integer"));
    let algorithm = match opts.get("algorithm").unwrap_or("big") {
        "naive" => Algorithm::Naive,
        "esb" => Algorithm::Esb,
        "ubb" => Algorithm::Ubb,
        "big" => Algorithm::Big,
        "ibig" => Algorithm::Ibig,
        other => usage(&format!("unknown algorithm {other:?}")),
    };
    let mut query = TkdQuery::new(k).algorithm(algorithm);
    if let Some(t) = opts.get("threads") {
        let t: usize = t
            .parse()
            .unwrap_or_else(|_| usage("--threads must be a positive integer"));
        if t == 0 {
            usage("--threads must be a positive integer");
        }
        query = query.threads(t);
    }
    if let Some(bins) = opts.get("bins") {
        if bins != "auto" {
            let x: usize = bins
                .parse()
                .unwrap_or_else(|_| usage("--bins must be an integer or 'auto'"));
            query = query.bins(tkdi::core::BinChoice::Fixed(x));
        }
    }
    let result = match opts.get("subspace") {
        None => query.run(&ds),
        Some(spec) => {
            let dims: Vec<usize> = spec
                .split(',')
                .map(|s| {
                    s.trim()
                        .parse()
                        .unwrap_or_else(|_| usage("--subspace expects dim indexes"))
                })
                .collect();
            variants::subspace_top_k(&ds, &dims, &query).unwrap_or_else(|e| {
                eprintln!("error: {e}");
                exit(1);
            })
        }
    };
    for (rank, e) in result.iter().enumerate() {
        println!(
            "{:>3}. {:<20} score {}",
            rank + 1,
            display_name(&ds, e.id),
            e.score
        );
    }
    if opts.has("stats") {
        let s = result.stats;
        eprintln!(
            "pruned: H1={} H2={} H3={}  scored={}",
            s.h1_pruned, s.h2_pruned, s.h3_pruned, s.scored
        );
    }
}

fn cmd_skyline(args: &[String]) {
    let opts = parse_opts(args);
    let ds = opts.load();
    let band: usize = opts
        .get("band")
        .map(|b| {
            b.parse()
                .unwrap_or_else(|_| usage("--band must be an integer"))
        })
        .unwrap_or(1);
    let result = incomplete::k_skyband(&ds, band);
    println!("# {}-skyband: {} objects", band, result.len());
    for o in result {
        println!("{}", display_name(&ds, o));
    }
}

fn cmd_generate(args: &[String]) {
    let opts = parse_opts(args);
    let get_num = |name: &str, default: usize| -> usize {
        opts.get(name)
            .map(|v| {
                v.parse()
                    .unwrap_or_else(|_| usage(&format!("--{name} must be an integer")))
            })
            .unwrap_or(default)
    };
    let cfg = SyntheticConfig {
        n: get_num("n", 1000),
        dims: get_num("dims", 5),
        cardinality: get_num("cardinality", 100),
        missing_rate: opts
            .get("missing")
            .map(|v| {
                v.parse()
                    .unwrap_or_else(|_| usage("--missing must be a rate in [0,1)"))
            })
            .unwrap_or(0.1),
        distribution: match opts.get("dist").unwrap_or("ind") {
            "ind" => Distribution::Independent,
            "ac" => Distribution::AntiCorrelated,
            "co" => Distribution::Correlated,
            other => usage(&format!("unknown distribution {other:?}")),
        },
        seed: opts
            .get("seed")
            .map(|v| {
                v.parse()
                    .unwrap_or_else(|_| usage("--seed must be an integer"))
            })
            .unwrap_or(42),
    };
    print!("{}", io::to_text(&generate(&cfg)));
}

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("error: {err}\n");
    }
    eprintln!(
        "tkdq — top-k dominating queries on incomplete data\n\n\
         Usage:\n\
         \x20 tkdq info <FILE> [--labeled]\n\
         \x20 tkdq query <FILE> --k K [--algorithm naive|esb|ubb|big|ibig]\n\
         \x20      [--bins auto|X] [--subspace 0,2,5] [--threads T] [--labeled] [--stats]\n\
         \x20 tkdq skyline <FILE> [--band K] [--labeled]\n\
         \x20 tkdq generate [--n N] [--dims D] [--dist ind|ac|co]\n\
         \x20      [--missing R] [--cardinality C] [--seed S]"
    );
    exit(if err.is_empty() { 0 } else { 2 });
}
