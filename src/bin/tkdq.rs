//! `tkdq` — command-line top-k dominating queries on incomplete data.
//!
//! ```text
//! tkdq info <FILE>                         dataset statistics
//! tkdq build <FILE> --out SNAP             persist indexes to a snapshot
//! tkdq query <FILE>|--index SNAP --k K     TKD query
//! tkdq update <FILE>|--index SNAP --ops OPS --k K
//!                                          apply updates, then query
//!                                          (--index rewrites the snapshot)
//! tkdq skyline <FILE> [--band K]           skyline / k-skyband
//! tkdq generate --n N --dims D [options]   synthetic dataset to stdout
//! tkdq serve --index SNAP [options]        long-running TCP query service
//!
//! Common options:
//!   --labeled              first column is an object label
//! Build options:
//!   --out SNAP             where to write the snapshot (required)
//!   --bins X               IBIG bins per dimension           (default auto)
//!   --compact-threshold F  tombstone fraction that triggers compaction
//!                          (default 0.25; baked into the snapshot)
//! Query options:
//!   --index SNAP           serve from a snapshot instead of rebuilding
//!                          (big/ibig only; bins are fixed at build time)
//!   --algorithm A          naive | esb | ubb | big | ibig   (default big)
//!   --bins X               IBIG bins per dimension           (default auto)
//!   --subspace 0,2,5       query a dimension subset (not with --index)
//!   --threads T            worker threads for big/ibig       (default 1)
//!   --stats                print pruning statistics
//! Update options (plus --algorithm big|ibig, --threads, --stats):
//!   --index SNAP           load the engine from a snapshot, apply the
//!                          ops, and rewrite the snapshot in place
//!   --ops FILE             update script, one op per line:
//!                            insert [LABEL] v1,v2,…   (`-` = missing)
//!                            delete ID
//!                            set ID DIM VALUE|-
//!                          ids are stable: row i of FILE is id i, inserts
//!                          continue counting from there (snapshots
//!                          remember their ids across processes)
//!   --bins X               (file mode only — baked into snapshots)
//!   --compact-threshold F  (file mode only — baked into snapshots)
//! Generate options:
//!   --dist D               ind | ac | co                     (default ind)
//!   --missing R            missing rate in [0,1)             (default 0.1)
//!   --cardinality C        distinct values per dimension     (default 100)
//!   --seed S               RNG seed                          (default 42)
//! Serve options:
//!   --index SNAP           snapshot to load and serve (required); applied
//!                          update batches rewrite it atomically
//!   --addr HOST:PORT       listen address               (default 127.0.0.1:7171)
//!   --threads T            worker threads per coalesced batch (default 1)
//!   --max-queue N          admission-control queue bound      (default 128)
//!   --batch-max N          queries coalesced per engine pass  (default 32)
//!   --request-timeout-ms M queue-wait budget per request    (default 10000)
//!   --io-timeout-ms M      per-frame socket budget           (default 5000)
//!   --no-rewrite           serve read-mostly: do not rewrite the snapshot
//!                          on update (a final snapshot is still written
//!                          next to the original at shutdown)
//! ```
//!
//! Files are comma/whitespace separated, `-` for missing, `#` comments.
//! Values are smaller-is-better.

use std::process::exit;
use tkdi::core::dynamic::{CompactionPolicy, DynamicOptions};
use tkdi::core::variants;
use tkdi::data::synthetic::{generate, Distribution, SyntheticConfig};
use tkdi::model::{io, stats, Dataset};
use tkdi::prelude::*;
use tkdi::skyline::incomplete;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        usage("missing command")
    };
    match cmd.as_str() {
        "info" => cmd_info(&args[1..]),
        "build" => cmd_build(&args[1..]),
        "query" => cmd_query(&args[1..]),
        "update" => cmd_update(&args[1..]),
        "skyline" => cmd_skyline(&args[1..]),
        "generate" => cmd_generate(&args[1..]),
        "serve" => cmd_serve(&args[1..]),
        "--help" | "-h" | "help" => usage(""),
        other => usage(&format!("unknown command {other:?}")),
    }
}

/// Minimal flag parser: positional file + `--flag value` pairs + bare flags.
struct Opts {
    file: Option<String>,
    flags: Vec<(String, Option<String>)>,
}

const BARE_FLAGS: [&str; 3] = ["--labeled", "--stats", "--no-rewrite"];

fn parse_opts(args: &[String]) -> Opts {
    let mut opts = Opts {
        file: None,
        flags: Vec::new(),
    };
    let mut i = 0;
    while i < args.len() {
        let a = &args[i];
        if let Some(name) = a.strip_prefix("--") {
            if BARE_FLAGS.contains(&a.as_str()) {
                opts.flags.push((name.to_string(), None));
            } else {
                i += 1;
                let Some(v) = args.get(i) else {
                    usage(&format!("missing value for --{name}"));
                };
                opts.flags.push((name.to_string(), Some(v.clone())));
            }
        } else if opts.file.is_none() {
            opts.file = Some(a.clone());
        } else {
            usage(&format!("unexpected argument {a:?}"));
        }
        i += 1;
    }
    opts
}

impl Opts {
    fn get(&self, name: &str) -> Option<&str> {
        self.flags
            .iter()
            .rev()
            .find(|(n, _)| n == name)
            .and_then(|(_, v)| v.as_deref())
    }

    fn has(&self, name: &str) -> bool {
        self.flags.iter().any(|(n, _)| n == name)
    }

    fn load(&self) -> Dataset {
        let Some(file) = &self.file else {
            usage("missing input file")
        };
        let text = std::fs::read_to_string(file).unwrap_or_else(|e| {
            eprintln!("error: cannot read {file}: {e}");
            exit(1);
        });
        let parsed = if self.has("labeled") {
            io::parse_labeled(&text)
        } else {
            io::parse(&text)
        };
        parsed.unwrap_or_else(|e| {
            eprintln!("error: cannot parse {file}: {e}");
            exit(1);
        })
    }
}

fn display_name(ds: &Dataset, o: ObjectId) -> String {
    ds.label(o)
        .map(str::to_string)
        .unwrap_or_else(|| format!("#{o}"))
}

fn cmd_info(args: &[String]) {
    let opts = parse_opts(args);
    let ds = opts.load();
    println!("objects:       {}", ds.len());
    println!("dimensions:    {}", ds.dims());
    println!("missing rate:  {:.2}%", 100.0 * stats::missing_rate(&ds));
    println!("mask groups:   {}", stats::group_by_mask(&ds).len());
    for d in 0..ds.dims() {
        let vals = stats::distinct_values(&ds, d);
        let range = match (vals.first(), vals.last()) {
            (Some(lo), Some(hi)) => format!("[{lo}, {hi}]"),
            _ => "(never observed)".into(),
        };
        println!(
            "  dim {d}: cardinality {:<6} observed {:<6} range {range}",
            vals.len(),
            stats::observed_count(&ds, d),
        );
    }
}

/// The `--bins` flag (`auto` or a fixed count).
fn parse_bins(opts: &Opts) -> tkdi::core::BinChoice {
    match opts.get("bins") {
        None | Some("auto") => tkdi::core::BinChoice::Auto,
        Some(x) => tkdi::core::BinChoice::Fixed(
            x.parse()
                .unwrap_or_else(|_| usage("--bins must be an integer or 'auto'")),
        ),
    }
}

/// The `--compact-threshold` flag folded into the default policy.
fn parse_policy(opts: &Opts) -> CompactionPolicy {
    let mut policy = CompactionPolicy::default();
    if let Some(f) = opts.get("compact-threshold") {
        policy.max_tombstone_fraction = match f.parse() {
            Ok(v) if (0.0..=1.0).contains(&v) => v,
            _ => usage("--compact-threshold must be a fraction in [0,1]"),
        };
    }
    policy
}

/// The `--threads` flag (default 1).
fn parse_threads(opts: &Opts) -> usize {
    opts.get("threads")
        .map(|t| match t.parse() {
            Ok(v) if v >= 1 => v,
            _ => usage("--threads must be a positive integer"),
        })
        .unwrap_or(1)
}

/// Targeted rejection of flags that conflict with snapshot mode. Every
/// snapshot-serving command (`query --index`, `update --index`, `serve`)
/// enforces the identical set with identical messages, so a
/// build-time-fixed or raw-dataset-only flag errors out instead of being
/// silently ignored in one command and rejected in another.
fn reject_snapshot_conflicts(opts: &Opts) {
    if opts.get("subspace").is_some() {
        usage("--subspace projects the raw dataset; it is not available with a snapshot");
    }
    if opts.get("bins").is_some() {
        usage("--bins is fixed at build time; rebuild the snapshot to change it");
    }
    if opts.get("compact-threshold").is_some() {
        usage("--compact-threshold is fixed at build time; rebuild the snapshot to change it");
    }
}

/// Load the snapshot named by `--index`, or die with a clean error.
fn load_snapshot(path: &str) -> DynamicEngine {
    tkdi::store::load_engine(path).unwrap_or_else(|e| {
        eprintln!("error: cannot load snapshot {path}: {e}");
        exit(1);
    })
}

/// Print a ranked engine result (stable-id labels) plus optional stats.
fn print_engine_result(engine: &DynamicEngine, result: &TkdResult, stats: bool) {
    for (rank, e) in result.iter().enumerate() {
        let name = engine
            .label(e.id)
            .ok()
            .flatten()
            .filter(|l| !l.is_empty())
            .map(str::to_string)
            .unwrap_or_else(|| format!("#{}", e.id));
        println!("{:>3}. {:<20} score {}", rank + 1, name, e.score);
    }
    if stats {
        let st = result.stats;
        eprintln!(
            "pruned: H1={} H2={} H3={}  scored={}",
            st.h1_pruned, st.h2_pruned, st.h3_pruned, st.scored
        );
    }
}

fn cmd_build(args: &[String]) {
    let opts = parse_opts(args);
    let out = opts
        .get("out")
        .unwrap_or_else(|| usage("build requires --out SNAP"))
        .to_string();
    let ds = opts.load();
    let (n, dims) = (ds.len(), ds.dims());
    let mut engine = DynamicEngine::with_options(
        ds,
        DynamicOptions {
            bins: parse_bins(&opts),
            policy: parse_policy(&opts),
        },
    );
    let bytes = tkdi::store::save_engine(&out, &mut engine).unwrap_or_else(|e| {
        eprintln!("error: cannot write snapshot: {e}");
        exit(1);
    });
    println!("snapshot written: {out} ({bytes} bytes, {n} objects × {dims} dims)");
}

fn cmd_query(args: &[String]) {
    let opts = parse_opts(args);
    let k: usize = opts
        .get("k")
        .unwrap_or_else(|| usage("query requires --k"))
        .parse()
        .unwrap_or_else(|_| usage("--k must be an integer"));
    if let Some(snap) = opts.get("index") {
        // Snapshot-served path: the engine artifacts come off disk; the
        // sequential/parallel scratch engines answer from them directly.
        if opts.file.is_some() {
            usage("--index replaces the dataset file; pass one or the other");
        }
        reject_snapshot_conflicts(&opts);
        let algorithm = match opts.get("algorithm").unwrap_or("big") {
            "big" => Algorithm::Big,
            "ibig" => Algorithm::Ibig,
            other => usage(&format!(
                "snapshots serve big | ibig, not {other:?} (query the dataset file instead)"
            )),
        };
        let mut engine = load_snapshot(snap);
        let result = engine
            .query_threads(
                &EngineQuery::new(k).algorithm(algorithm),
                parse_threads(&opts),
            )
            .expect("big/ibig checked above");
        print_engine_result(&engine, &result, opts.has("stats"));
        return;
    }
    let ds = opts.load();
    let algorithm = match opts.get("algorithm").unwrap_or("big") {
        "naive" => Algorithm::Naive,
        "esb" => Algorithm::Esb,
        "ubb" => Algorithm::Ubb,
        "big" => Algorithm::Big,
        "ibig" => Algorithm::Ibig,
        other => usage(&format!("unknown algorithm {other:?}")),
    };
    let mut query = TkdQuery::new(k).algorithm(algorithm);
    if let Some(t) = opts.get("threads") {
        let t: usize = t
            .parse()
            .unwrap_or_else(|_| usage("--threads must be a positive integer"));
        if t == 0 {
            usage("--threads must be a positive integer");
        }
        query = query.threads(t);
    }
    if let Some(bins) = opts.get("bins") {
        if bins != "auto" {
            let x: usize = bins
                .parse()
                .unwrap_or_else(|_| usage("--bins must be an integer or 'auto'"));
            query = query.bins(tkdi::core::BinChoice::Fixed(x));
        }
    }
    let result = match opts.get("subspace") {
        None => query.run(&ds),
        Some(spec) => {
            let dims: Vec<usize> = spec
                .split(',')
                .map(|s| {
                    s.trim()
                        .parse()
                        .unwrap_or_else(|_| usage("--subspace expects dim indexes"))
                })
                .collect();
            variants::subspace_top_k(&ds, &dims, &query).unwrap_or_else(|e| {
                eprintln!("error: {e}");
                exit(1);
            })
        }
    };
    for (rank, e) in result.iter().enumerate() {
        println!(
            "{:>3}. {:<20} score {}",
            rank + 1,
            display_name(&ds, e.id),
            e.score
        );
    }
    if opts.has("stats") {
        let s = result.stats;
        eprintln!(
            "pruned: H1={} H2={} H3={}  scored={}",
            s.h1_pruned, s.h2_pruned, s.h3_pruned, s.scored
        );
    }
}

/// Parse one ops-file cell: `-` = missing, else a non-NaN float.
fn parse_op_cell(cell: &str, line: usize) -> Option<f64> {
    if cell == "-" {
        return None;
    }
    match cell.parse::<f64>() {
        Ok(v) if !v.is_nan() => Some(v),
        _ => usage(&format!("ops line {line}: bad value {cell:?}")),
    }
}

/// Parse the update script (see the usage text for the line grammar).
fn parse_ops(text: &str, dims: usize, labeled: bool) -> Vec<UpdateOp> {
    let mut ops = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let line = i + 1;
        let trimmed = raw.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let cells: Vec<&str> = trimmed
            .split(|c: char| c == ',' || c.is_whitespace())
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .collect();
        if cells.is_empty() {
            continue; // separators only — treat like a blank line
        }
        let parse_id = |s: &str| -> ObjectId {
            s.parse()
                .unwrap_or_else(|_| usage(&format!("ops line {line}: bad object id {s:?}")))
        };
        match cells[0] {
            "insert" => {
                let (label, rest) = if labeled {
                    if cells.len() < 2 {
                        usage(&format!(
                            "ops line {line}: insert needs LABEL + {dims} cells"
                        ));
                    }
                    (Some(cells[1].to_string()), &cells[2..])
                } else {
                    (None, &cells[1..])
                };
                if rest.len() != dims {
                    usage(&format!(
                        "ops line {line}: insert expects {dims} cells, got {}",
                        rest.len()
                    ));
                }
                let row: Vec<Option<f64>> = rest.iter().map(|c| parse_op_cell(c, line)).collect();
                ops.push(match label {
                    Some(l) => UpdateOp::InsertLabeled(l, row),
                    None => UpdateOp::Insert(row),
                });
            }
            "delete" => {
                if cells.len() != 2 {
                    usage(&format!("ops line {line}: delete expects one id"));
                }
                ops.push(UpdateOp::Delete(parse_id(cells[1])));
            }
            "set" => {
                if cells.len() != 4 {
                    usage(&format!("ops line {line}: set expects ID DIM VALUE"));
                }
                let dim: usize = cells[2]
                    .parse()
                    .unwrap_or_else(|_| usage(&format!("ops line {line}: bad dim {:?}", cells[2])));
                ops.push(UpdateOp::Set(
                    parse_id(cells[1]),
                    dim,
                    parse_op_cell(cells[3], line),
                ));
            }
            other => usage(&format!(
                "ops line {line}: unknown op {other:?} (insert/delete/set)"
            )),
        }
    }
    ops
}

fn cmd_update(args: &[String]) {
    let opts = parse_opts(args);
    let k: usize = opts
        .get("k")
        .unwrap_or_else(|| usage("update requires --k"))
        .parse()
        .unwrap_or_else(|_| usage("--k must be an integer"));
    let algorithm = match opts.get("algorithm").unwrap_or("big") {
        "big" => Algorithm::Big,
        "ibig" => Algorithm::Ibig,
        other => usage(&format!(
            "the dynamic engine serves big | ibig, not {other:?}"
        )),
    };
    let threads = parse_threads(&opts);
    let ops_file = opts
        .get("ops")
        .unwrap_or_else(|| usage("update requires --ops FILE"));
    let text = std::fs::read_to_string(ops_file).unwrap_or_else(|e| {
        eprintln!("error: cannot read {ops_file}: {e}");
        exit(1);
    });
    // Snapshot mode resumes the persisted engine (ids keep counting from
    // the previous process) and rewrites the snapshot after the batch;
    // file mode builds a fresh engine from the dataset.
    let (mut engine, snap_path) = match opts.get("index") {
        Some(snap) => {
            if opts.file.is_some() {
                usage("--index replaces the dataset file; pass one or the other");
            }
            reject_snapshot_conflicts(&opts);
            (load_snapshot(snap), Some(snap.to_string()))
        }
        None => (
            DynamicEngine::with_options(
                opts.load(),
                DynamicOptions {
                    bins: parse_bins(&opts),
                    policy: parse_policy(&opts),
                },
            ),
            None,
        ),
    };
    let ops = parse_ops(&text, engine.dims(), opts.has("labeled"));
    if let Err((i, e)) = engine.apply_all(&ops) {
        eprintln!("error: op {} failed: {e}", i + 1);
        exit(1);
    }
    let s = engine.stats();
    eprintln!(
        "applied {} ops (+{} / -{} / ~{}), {} live, {} tombstones, epoch {}",
        ops.len(),
        s.inserts,
        s.deletes,
        s.cell_updates,
        engine.len(),
        engine.tombstones(),
        engine.epoch()
    );
    if let Some(path) = snap_path {
        let bytes = tkdi::store::save_engine(&path, &mut engine).unwrap_or_else(|e| {
            eprintln!("error: cannot rewrite snapshot: {e}");
            exit(1);
        });
        eprintln!("snapshot rewritten: {path} ({bytes} bytes)");
    }
    let result = engine
        .query_threads(&EngineQuery::new(k).algorithm(algorithm), threads)
        .expect("big/ibig checked above");
    print_engine_result(&engine, &result, opts.has("stats"));
}

fn cmd_skyline(args: &[String]) {
    let opts = parse_opts(args);
    let ds = opts.load();
    let band: usize = opts
        .get("band")
        .map(|b| {
            b.parse()
                .unwrap_or_else(|_| usage("--band must be an integer"))
        })
        .unwrap_or(1);
    let result = incomplete::k_skyband(&ds, band);
    println!("# {}-skyband: {} objects", band, result.len());
    for o in result {
        println!("{}", display_name(&ds, o));
    }
}

fn cmd_generate(args: &[String]) {
    let opts = parse_opts(args);
    let get_num = |name: &str, default: usize| -> usize {
        opts.get(name)
            .map(|v| {
                v.parse()
                    .unwrap_or_else(|_| usage(&format!("--{name} must be an integer")))
            })
            .unwrap_or(default)
    };
    let cfg = SyntheticConfig {
        n: get_num("n", 1000),
        dims: get_num("dims", 5),
        cardinality: get_num("cardinality", 100),
        missing_rate: opts
            .get("missing")
            .map(|v| {
                v.parse()
                    .unwrap_or_else(|_| usage("--missing must be a rate in [0,1)"))
            })
            .unwrap_or(0.1),
        distribution: match opts.get("dist").unwrap_or("ind") {
            "ind" => Distribution::Independent,
            "ac" => Distribution::AntiCorrelated,
            "co" => Distribution::Correlated,
            other => usage(&format!("unknown distribution {other:?}")),
        },
        seed: opts
            .get("seed")
            .map(|v| {
                v.parse()
                    .unwrap_or_else(|_| usage("--seed must be an integer"))
            })
            .unwrap_or(42),
    };
    print!("{}", io::to_text(&generate(&cfg)));
}

fn cmd_serve(args: &[String]) {
    let opts = parse_opts(args);
    if opts.file.is_some() {
        usage("serve runs from a snapshot; build one first and pass --index SNAP");
    }
    reject_snapshot_conflicts(&opts);
    let snap = opts
        .get("index")
        .unwrap_or_else(|| usage("serve requires --index SNAP"))
        .to_string();
    let addr = opts.get("addr").unwrap_or("127.0.0.1:7171").to_string();
    let ms = |name: &str, default: u64| -> u64 {
        opts.get(name)
            .map(|v| match v.parse() {
                Ok(n) if n >= 1 => n,
                _ => usage(&format!("--{name} must be a positive integer")),
            })
            .unwrap_or(default)
    };
    let count = |name: &str, default: usize| -> usize {
        opts.get(name)
            .map(|v| match v.parse() {
                Ok(n) if n >= 1 => n,
                _ => usage(&format!("--{name} must be a positive integer")),
            })
            .unwrap_or(default)
    };
    let load_started = std::time::Instant::now();
    let mut engine = load_snapshot(&snap);
    let load_time = load_started.elapsed();
    if let Some(w) = opts.get("window") {
        let cap = match w.parse::<usize>() {
            Ok(n) if n >= 1 => n,
            _ => usage("--window must be a positive object count"),
        };
        engine.set_window(Some(cap));
    }
    let config = tkdi::serve::ServeConfig {
        threads: parse_threads(&opts),
        max_queue: count("max-queue", 128),
        batch_max: count("batch-max", 32),
        request_timeout: std::time::Duration::from_millis(ms("request-timeout-ms", 10_000)),
        io_timeout: std::time::Duration::from_millis(ms("io-timeout-ms", 5_000)),
        snapshot: if opts.has("no-rewrite") {
            None
        } else {
            Some(snap.clone().into())
        },
        load_time: Some(load_time),
        ..Default::default()
    };
    let server = tkdi::serve::Server::start(engine, addr.as_str(), config).unwrap_or_else(|e| {
        eprintln!("error: cannot start server on {addr}: {e}");
        exit(1);
    });
    println!(
        "serving {snap} on {} (shutdown frame drains and stops)",
        server.local_addr()
    );
    // Block until a client sends the shutdown frame, then persist the
    // drained engine one last time.
    match server.join() {
        Ok(mut engine) => {
            if opts.has("no-rewrite") {
                let final_path = format!("{snap}.final");
                match tkdi::store::save_engine(&final_path, &mut engine) {
                    Ok(bytes) => println!("drained; final snapshot: {final_path} ({bytes} bytes)"),
                    Err(e) => {
                        eprintln!("error: drained but final snapshot failed: {e}");
                        exit(1);
                    }
                }
            } else {
                println!("drained; snapshot rewritten: {snap}");
            }
        }
        Err(e) => {
            eprintln!("error: server did not drain cleanly: {e}");
            exit(1);
        }
    }
}

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("error: {err}\n");
    }
    eprintln!(
        "tkdq — top-k dominating queries on incomplete data\n\n\
         Usage:\n\
         \x20 tkdq info <FILE> [--labeled]\n\
         \x20 tkdq build <FILE> --out SNAP [--bins auto|X] [--compact-threshold F] [--labeled]\n\
         \x20 tkdq query <FILE>|--index SNAP --k K [--algorithm naive|esb|ubb|big|ibig]\n\
         \x20      [--bins auto|X] [--subspace 0,2,5] [--threads T] [--labeled] [--stats]\n\
         \x20      (--index serves big|ibig from a snapshot; bins/subspace need the file)\n\
         \x20 tkdq update <FILE>|--index SNAP --ops OPS --k K [--algorithm big|ibig]\n\
         \x20      [--bins auto|X] [--threads T] [--compact-threshold F] [--labeled] [--stats]\n\
         \x20      (OPS lines: insert [LABEL] v1,v2,… | delete ID | set ID DIM VALUE|-;\n\
         \x20       --index loads the snapshot, applies OPS, and rewrites it in place)\n\
         \x20 tkdq skyline <FILE> [--band K] [--labeled]\n\
         \x20 tkdq generate [--n N] [--dims D] [--dist ind|ac|co]\n\
         \x20      [--missing R] [--cardinality C] [--seed S]\n\
         \x20 tkdq serve --index SNAP [--addr HOST:PORT] [--threads T] [--max-queue N]\n\
         \x20      [--batch-max N] [--request-timeout-ms M] [--io-timeout-ms M] [--no-rewrite]\n\
         \x20      [--window N]  (cap live objects; oldest age out per update batch)"
    );
    exit(if err.is_empty() { 0 } else { 2 });
}
