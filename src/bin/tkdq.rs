//! `tkdq` — command-line top-k dominating queries on incomplete data.
//!
//! Run `tkdq help` for the full usage text. It is generated from the
//! command table in `tkdi::cli` — the same table the README's command
//! list is checked against — so this comment carries no copy of its own.
//! The TKDQL statement language (`tkdq query -e …`, `tkdq repl`) is
//! specified in `docs/TKDQL.md`.

use std::process::exit;
use tkdi::core::dynamic::{CompactionPolicy, DynamicOptions};
use tkdi::core::variants;
use tkdi::data::synthetic::{generate, Distribution, SyntheticConfig};
use tkdi::model::{io, stats, Dataset};
use tkdi::prelude::*;
use tkdi::skyline::incomplete;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        usage("missing command")
    };
    match cmd.as_str() {
        "info" => cmd_info(&args[1..]),
        "build" => cmd_build(&args[1..]),
        "query" => cmd_query(&args[1..]),
        "update" => cmd_update(&args[1..]),
        "skyline" => cmd_skyline(&args[1..]),
        "generate" => cmd_generate(&args[1..]),
        "serve" => cmd_serve(&args[1..]),
        "cluster" => cmd_cluster(&args[1..]),
        "repl" => cmd_repl(&args[1..]),
        "--help" | "-h" | "help" => usage(""),
        other => usage(&format!("unknown command {other:?}")),
    }
}

/// Minimal flag parser: positional file + `--flag value` pairs + bare flags.
struct Opts {
    file: Option<String>,
    flags: Vec<(String, Option<String>)>,
}

const BARE_FLAGS: [&str; 3] = ["--labeled", "--stats", "--no-rewrite"];

fn parse_opts(args: &[String]) -> Opts {
    let mut opts = Opts {
        file: None,
        flags: Vec::new(),
    };
    let mut i = 0;
    while i < args.len() {
        let a = &args[i];
        if a == "-e" {
            // Short alias for --expr (a TKDQL statement).
            i += 1;
            let Some(v) = args.get(i) else {
                usage("missing statement after -e");
            };
            opts.flags.push(("expr".to_string(), Some(v.clone())));
        } else if let Some(name) = a.strip_prefix("--") {
            if BARE_FLAGS.contains(&a.as_str()) {
                opts.flags.push((name.to_string(), None));
            } else {
                i += 1;
                let Some(v) = args.get(i) else {
                    usage(&format!("missing value for --{name}"));
                };
                opts.flags.push((name.to_string(), Some(v.clone())));
            }
        } else if opts.file.is_none() {
            opts.file = Some(a.clone());
        } else {
            usage(&format!("unexpected argument {a:?}"));
        }
        i += 1;
    }
    opts
}

impl Opts {
    fn get(&self, name: &str) -> Option<&str> {
        self.flags
            .iter()
            .rev()
            .find(|(n, _)| n == name)
            .and_then(|(_, v)| v.as_deref())
    }

    fn has(&self, name: &str) -> bool {
        self.flags.iter().any(|(n, _)| n == name)
    }

    fn load(&self) -> Dataset {
        let Some(file) = &self.file else {
            usage("missing input file")
        };
        let text = std::fs::read_to_string(file).unwrap_or_else(|e| {
            eprintln!("error: cannot read {file}: {e}");
            exit(1);
        });
        let parsed = if self.has("labeled") {
            io::parse_labeled(&text)
        } else {
            io::parse(&text)
        };
        parsed.unwrap_or_else(|e| {
            eprintln!("error: cannot parse {file}: {e}");
            exit(1);
        })
    }
}

fn display_name(ds: &Dataset, o: ObjectId) -> String {
    ds.label(o)
        .map(str::to_string)
        .unwrap_or_else(|| format!("#{o}"))
}

fn cmd_info(args: &[String]) {
    let opts = parse_opts(args);
    let ds = opts.load();
    println!("objects:       {}", ds.len());
    println!("dimensions:    {}", ds.dims());
    println!("missing rate:  {:.2}%", 100.0 * stats::missing_rate(&ds));
    println!("mask groups:   {}", stats::group_by_mask(&ds).len());
    for d in 0..ds.dims() {
        let vals = stats::distinct_values(&ds, d);
        let range = match (vals.first(), vals.last()) {
            (Some(lo), Some(hi)) => format!("[{lo}, {hi}]"),
            _ => "(never observed)".into(),
        };
        println!(
            "  dim {d}: cardinality {:<6} observed {:<6} range {range}",
            vals.len(),
            stats::observed_count(&ds, d),
        );
    }
}

/// The `--bins` flag (`auto` or a fixed count).
fn parse_bins(opts: &Opts) -> tkdi::core::BinChoice {
    match opts.get("bins") {
        None | Some("auto") => tkdi::core::BinChoice::Auto,
        Some(x) => tkdi::core::BinChoice::Fixed(
            x.parse()
                .unwrap_or_else(|_| usage("--bins must be an integer or 'auto'")),
        ),
    }
}

/// The `--compact-threshold` flag folded into the default policy.
fn parse_policy(opts: &Opts) -> CompactionPolicy {
    let mut policy = CompactionPolicy::default();
    if let Some(f) = opts.get("compact-threshold") {
        policy.max_tombstone_fraction = match f.parse() {
            Ok(v) if (0.0..=1.0).contains(&v) => v,
            _ => usage("--compact-threshold must be a fraction in [0,1]"),
        };
    }
    policy
}

/// The `--threads` flag (default 1).
fn parse_threads(opts: &Opts) -> usize {
    opts.get("threads")
        .map(|t| match t.parse() {
            Ok(v) if v >= 1 => v,
            _ => usage("--threads must be a positive integer"),
        })
        .unwrap_or(1)
}

/// Targeted rejection of flags that conflict with snapshot mode. Every
/// snapshot-serving command (`query --index`, `update --index`, `serve`)
/// enforces the identical set with identical messages, so a
/// build-time-fixed or raw-dataset-only flag errors out instead of being
/// silently ignored in one command and rejected in another.
fn reject_snapshot_conflicts(opts: &Opts) {
    if opts.get("subspace").is_some() {
        usage("--subspace projects the raw dataset; it is not available with a snapshot");
    }
    if opts.get("bins").is_some() {
        usage("--bins is fixed at build time; rebuild the snapshot to change it");
    }
    if opts.get("compact-threshold").is_some() {
        usage("--compact-threshold is fixed at build time; rebuild the snapshot to change it");
    }
}

/// Load the snapshot named by `--index`, or die with a clean error.
fn load_snapshot(path: &str) -> DynamicEngine {
    tkdi::store::load_engine(path).unwrap_or_else(|e| {
        eprintln!("error: cannot load snapshot {path}: {e}");
        exit(1);
    })
}

/// Print a ranked engine result (stable-id labels) plus optional stats.
fn print_engine_result(engine: &DynamicEngine, result: &TkdResult, stats: bool) {
    for (rank, e) in result.iter().enumerate() {
        let name = engine
            .label(e.id)
            .ok()
            .flatten()
            .filter(|l| !l.is_empty())
            .map(str::to_string)
            .unwrap_or_else(|| format!("#{}", e.id));
        println!("{:>3}. {:<20} score {}", rank + 1, name, e.score);
    }
    if stats {
        let st = result.stats;
        eprintln!(
            "pruned: H1={} H2={} H3={}  scored={}",
            st.h1_pruned, st.h2_pruned, st.h3_pruned, st.scored
        );
    }
}

fn cmd_build(args: &[String]) {
    let opts = parse_opts(args);
    let out = opts
        .get("out")
        .unwrap_or_else(|| usage("build requires --out SNAP"))
        .to_string();
    let ds = opts.load();
    let (n, dims) = (ds.len(), ds.dims());
    let mut engine = DynamicEngine::with_options(
        ds,
        DynamicOptions {
            bins: parse_bins(&opts),
            policy: parse_policy(&opts),
        },
    );
    let bytes = tkdi::store::save_engine(&out, &mut engine).unwrap_or_else(|e| {
        eprintln!("error: cannot write snapshot: {e}");
        exit(1);
    });
    println!("snapshot written: {out} ({bytes} bytes, {n} objects × {dims} dims)");
}

fn cmd_query(args: &[String]) {
    let opts = parse_opts(args);
    if let Some(text) = opts.get("expr") {
        return cmd_query_expr(&opts, text);
    }
    let k: usize = opts
        .get("k")
        .unwrap_or_else(|| usage("query requires --k"))
        .parse()
        .unwrap_or_else(|_| usage("--k must be an integer"));
    if let Some(snap) = opts.get("index") {
        // Snapshot-served path: the engine artifacts come off disk; the
        // sequential/parallel scratch engines answer from them directly.
        if opts.file.is_some() {
            usage("--index replaces the dataset file; pass one or the other");
        }
        reject_snapshot_conflicts(&opts);
        let algorithm = match opts.get("algorithm").unwrap_or("big") {
            "big" => Algorithm::Big,
            "ibig" => Algorithm::Ibig,
            other => usage(&format!(
                "snapshots serve big | ibig, not {other:?} (query the dataset file instead)"
            )),
        };
        let mut engine = load_snapshot(snap);
        let result = engine
            .query_threads(
                &EngineQuery::new(k).algorithm(algorithm),
                parse_threads(&opts),
            )
            .expect("big/ibig checked above");
        print_engine_result(&engine, &result, opts.has("stats"));
        return;
    }
    let ds = opts.load();
    let algorithm = match opts.get("algorithm").unwrap_or("big") {
        "naive" => Algorithm::Naive,
        "esb" => Algorithm::Esb,
        "ubb" => Algorithm::Ubb,
        "big" => Algorithm::Big,
        "ibig" => Algorithm::Ibig,
        other => usage(&format!("unknown algorithm {other:?}")),
    };
    let mut query = TkdQuery::new(k).algorithm(algorithm);
    if let Some(t) = opts.get("threads") {
        let t: usize = t
            .parse()
            .unwrap_or_else(|_| usage("--threads must be a positive integer"));
        if t == 0 {
            usage("--threads must be a positive integer");
        }
        query = query.threads(t);
    }
    if let Some(bins) = opts.get("bins") {
        if bins != "auto" {
            let x: usize = bins
                .parse()
                .unwrap_or_else(|_| usage("--bins must be an integer or 'auto'"));
            query = query.bins(tkdi::core::BinChoice::Fixed(x));
        }
    }
    let result = match opts.get("subspace") {
        None => query.run(&ds),
        Some(spec) => {
            let dims: Vec<usize> = spec
                .split(',')
                .map(|s| {
                    s.trim()
                        .parse()
                        .unwrap_or_else(|_| usage("--subspace expects dim indexes"))
                })
                .collect();
            variants::subspace_top_k(&ds, &dims, &query).unwrap_or_else(|e| {
                eprintln!("error: {e}");
                exit(1);
            })
        }
    };
    for (rank, e) in result.iter().enumerate() {
        println!(
            "{:>3}. {:<20} score {}",
            rank + 1,
            display_name(&ds, e.id),
            e.score
        );
    }
    if opts.has("stats") {
        let s = result.stats;
        eprintln!(
            "pruned: H1={} H2={} H3={}  scored={}",
            s.h1_pruned, s.h2_pruned, s.h3_pruned, s.scored
        );
    }
}

/// Print a TKDQL diagnostic with its caret snippet, without exiting
/// (the REPL keeps its session alive across bad statements).
fn report_ql(text: &str, e: &tkdi::ql::QlError) {
    eprintln!("error: {e}");
    if let Some(snippet) = e.snippet(text) {
        eprintln!("{snippet}");
    }
}

/// [`report_ql`], then exit — for the one-shot `query -e` path.
fn die_ql(text: &str, e: &tkdi::ql::QlError) -> ! {
    report_ql(text, e);
    exit(2);
}

/// Load a dataset file named by a `FROM` clause (or the positional
/// argument), without exiting on failure.
fn try_load_dataset(path: &str, labeled: bool) -> Result<Dataset, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let parsed = if labeled {
        io::parse_labeled(&text)
    } else {
        io::parse(&text)
    };
    parsed.map_err(|e| format!("cannot parse {path}: {e}"))
}

/// Print a ranked dataset-backed result (original-dataset labels).
fn print_dataset_result(ds: &Dataset, result: &TkdResult, stats: bool) {
    for (rank, e) in result.iter().enumerate() {
        println!(
            "{:>3}. {:<20} score {}",
            rank + 1,
            display_name(ds, e.id),
            e.score
        );
    }
    if stats {
        let s = result.stats;
        eprintln!(
            "pruned: H1={} H2={} H3={}  scored={}",
            s.h1_pruned, s.h2_pruned, s.h3_pruned, s.scored
        );
    }
}

/// Bind, plan, and run an already-parsed statement against a dataset.
fn run_ql_on_dataset(
    stmt: &tkdi::ql::ast::Statement,
    ds: &Dataset,
    stats: bool,
) -> Result<(), tkdi::ql::QlError> {
    let plan = tkdi::ql::optimizer::plan(tkdi::ql::bind(stmt, ds.dims())?)?;
    match tkdi::ql::run_on_dataset(&plan, ds)? {
        tkdi::ql::Outcome::Rows(result) => print_dataset_result(ds, &result, stats),
        tkdi::ql::Outcome::Explain(rendered) => println!("{rendered}"),
        tkdi::ql::Outcome::Subscribed { .. } => unreachable!("rejected by run_on_dataset"),
    }
    Ok(())
}

/// Bind, plan, and run an already-parsed statement against a snapshot
/// engine. Plain `SUBSCRIBE` is rejected here: a subscription needs a
/// server to push deltas to, which a one-shot process cannot be.
fn run_ql_on_engine(
    stmt: &tkdi::ql::ast::Statement,
    engine: &mut DynamicEngine,
    stats: bool,
) -> Result<(), tkdi::ql::QlError> {
    if stmt.subscribe && !stmt.explain {
        return Err(tkdi::ql::QlError::exec(
            tkdi::ql::Span::eof(),
            "subscriptions need a live server; run `tkdq serve` and SUBSCRIBE over the wire",
        ));
    }
    let plan = tkdi::ql::optimizer::plan(tkdi::ql::bind(stmt, engine.dims())?)?;
    match tkdi::ql::run_on_engine(&plan, engine)? {
        tkdi::ql::Outcome::Rows(result) => print_engine_result(engine, &result, stats),
        tkdi::ql::Outcome::Explain(rendered) => println!("{rendered}"),
        tkdi::ql::Outcome::Subscribed { .. } => unreachable!("rejected above"),
    }
    Ok(())
}

/// `tkdq query -e "<tkdql>"` — one statement, then exit. The target is
/// the statement's `FROM` clause, the positional file, or `--index`.
fn cmd_query_expr(opts: &Opts, text: &str) {
    for flag in ["k", "algorithm", "subspace", "bins", "threads"] {
        if opts.get(flag).is_some() {
            usage(&format!(
                "--{flag} conflicts with -e; the TKDQL statement carries it \
                 (see docs/TKDQL.md)"
            ));
        }
    }
    let stmt = tkdi::ql::parse(text).unwrap_or_else(|e| die_ql(text, &e));
    let stats = opts.has("stats");
    if let Some(snap) = opts.get("index") {
        if opts.file.is_some() {
            usage("--index replaces the dataset file; pass one or the other");
        }
        if stmt.select().from.is_some() {
            usage("FROM names a dataset file; drop it when querying --index");
        }
        let mut engine = load_snapshot(snap);
        return run_ql_on_engine(&stmt, &mut engine, stats).unwrap_or_else(|e| die_ql(text, &e));
    }
    let ds = match (&stmt.select().from, &opts.file) {
        (Some((path, _)), None) => {
            try_load_dataset(path, opts.has("labeled")).unwrap_or_else(|e| {
                eprintln!("error: {e}");
                exit(1);
            })
        }
        (None, Some(_)) => opts.load(),
        (Some(_), Some(_)) => usage("pass the dataset either positionally or in FROM, not both"),
        (None, None) => {
            usage("the statement has no FROM clause; pass a dataset file or --index SNAP")
        }
    };
    run_ql_on_dataset(&stmt, &ds, stats).unwrap_or_else(|e| die_ql(text, &e));
}

/// `tkdq repl` — an interactive TKDQL shell. One statement per line;
/// diagnostics (with caret snippets) keep the session alive.
fn cmd_repl(args: &[String]) {
    use std::io::BufRead;
    let opts = parse_opts(args);
    let labeled = opts.has("labeled");
    enum Target {
        File(Dataset),
        Snapshot(Box<DynamicEngine>),
    }
    let mut target = match opts.get("index") {
        Some(snap) => {
            if opts.file.is_some() {
                usage("--index replaces the dataset file; pass one or the other");
            }
            Target::Snapshot(Box::new(load_snapshot(snap)))
        }
        None if opts.file.is_some() => Target::File(opts.load()),
        None => usage("repl needs a dataset file or --index SNAP"),
    };
    match &target {
        Target::File(ds) => eprintln!(
            "tkdql — {} objects × {} dims; one statement per line, \\q quits",
            ds.len(),
            ds.dims()
        ),
        Target::Snapshot(engine) => eprintln!(
            "tkdql — snapshot engine, {} live objects × {} dims; one statement per line, \\q quits",
            engine.len(),
            engine.dims()
        ),
    }
    let stdin = std::io::stdin();
    for line in stdin.lock().lines() {
        let line = match line {
            Ok(l) => l,
            Err(e) => {
                eprintln!("error: stdin: {e}");
                break;
            }
        };
        let text = line.trim();
        if text.is_empty() || text.starts_with("--") {
            continue;
        }
        if matches!(text, "\\q" | "quit" | "exit") {
            break;
        }
        let stmt = match tkdi::ql::parse(text) {
            Ok(stmt) => stmt,
            Err(e) => {
                report_ql(text, &e);
                continue;
            }
        };
        let outcome = match &mut target {
            Target::Snapshot(engine) => {
                if let Some((_, span)) = &stmt.select().from {
                    report_ql(
                        text,
                        &tkdi::ql::QlError::exec(
                            *span,
                            "FROM names a dataset file; the snapshot engine is the target here",
                        ),
                    );
                    continue;
                }
                run_ql_on_engine(&stmt, engine, false)
            }
            Target::File(ds) => match &stmt.select().from {
                // A per-statement FROM queries that file without
                // replacing the session's dataset.
                Some((path, span)) => match try_load_dataset(path, labeled) {
                    Ok(other) => run_ql_on_dataset(&stmt, &other, false),
                    Err(e) => {
                        report_ql(text, &tkdi::ql::QlError::exec(*span, e));
                        continue;
                    }
                },
                None => run_ql_on_dataset(&stmt, ds, false),
            },
        };
        if let Err(e) = outcome {
            report_ql(text, &e);
        }
    }
}

/// Parse one ops-file cell: `-` = missing, else a non-NaN float.
fn parse_op_cell(cell: &str, line: usize) -> Option<f64> {
    if cell == "-" {
        return None;
    }
    match cell.parse::<f64>() {
        Ok(v) if !v.is_nan() => Some(v),
        _ => usage(&format!("ops line {line}: bad value {cell:?}")),
    }
}

/// Parse the update script (see the usage text for the line grammar).
fn parse_ops(text: &str, dims: usize, labeled: bool) -> Vec<UpdateOp> {
    let mut ops = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let line = i + 1;
        let trimmed = raw.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let cells: Vec<&str> = trimmed
            .split(|c: char| c == ',' || c.is_whitespace())
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .collect();
        if cells.is_empty() {
            continue; // separators only — treat like a blank line
        }
        let parse_id = |s: &str| -> ObjectId {
            s.parse()
                .unwrap_or_else(|_| usage(&format!("ops line {line}: bad object id {s:?}")))
        };
        match cells[0] {
            "insert" => {
                let (label, rest) = if labeled {
                    if cells.len() < 2 {
                        usage(&format!(
                            "ops line {line}: insert needs LABEL + {dims} cells"
                        ));
                    }
                    (Some(cells[1].to_string()), &cells[2..])
                } else {
                    (None, &cells[1..])
                };
                if rest.len() != dims {
                    usage(&format!(
                        "ops line {line}: insert expects {dims} cells, got {}",
                        rest.len()
                    ));
                }
                let row: Vec<Option<f64>> = rest.iter().map(|c| parse_op_cell(c, line)).collect();
                ops.push(match label {
                    Some(l) => UpdateOp::InsertLabeled(l, row),
                    None => UpdateOp::Insert(row),
                });
            }
            "delete" => {
                if cells.len() != 2 {
                    usage(&format!("ops line {line}: delete expects one id"));
                }
                ops.push(UpdateOp::Delete(parse_id(cells[1])));
            }
            "set" => {
                if cells.len() != 4 {
                    usage(&format!("ops line {line}: set expects ID DIM VALUE"));
                }
                let dim: usize = cells[2]
                    .parse()
                    .unwrap_or_else(|_| usage(&format!("ops line {line}: bad dim {:?}", cells[2])));
                ops.push(UpdateOp::Set(
                    parse_id(cells[1]),
                    dim,
                    parse_op_cell(cells[3], line),
                ));
            }
            other => usage(&format!(
                "ops line {line}: unknown op {other:?} (insert/delete/set)"
            )),
        }
    }
    ops
}

fn cmd_update(args: &[String]) {
    let opts = parse_opts(args);
    let k: usize = opts
        .get("k")
        .unwrap_or_else(|| usage("update requires --k"))
        .parse()
        .unwrap_or_else(|_| usage("--k must be an integer"));
    let algorithm = match opts.get("algorithm").unwrap_or("big") {
        "big" => Algorithm::Big,
        "ibig" => Algorithm::Ibig,
        other => usage(&format!(
            "the dynamic engine serves big | ibig, not {other:?}"
        )),
    };
    let threads = parse_threads(&opts);
    let ops_file = opts
        .get("ops")
        .unwrap_or_else(|| usage("update requires --ops FILE"));
    let text = std::fs::read_to_string(ops_file).unwrap_or_else(|e| {
        eprintln!("error: cannot read {ops_file}: {e}");
        exit(1);
    });
    // Snapshot mode resumes the persisted engine (ids keep counting from
    // the previous process) and rewrites the snapshot after the batch;
    // file mode builds a fresh engine from the dataset.
    let (mut engine, snap_path) = match opts.get("index") {
        Some(snap) => {
            if opts.file.is_some() {
                usage("--index replaces the dataset file; pass one or the other");
            }
            reject_snapshot_conflicts(&opts);
            (load_snapshot(snap), Some(snap.to_string()))
        }
        None => (
            DynamicEngine::with_options(
                opts.load(),
                DynamicOptions {
                    bins: parse_bins(&opts),
                    policy: parse_policy(&opts),
                },
            ),
            None,
        ),
    };
    let ops = parse_ops(&text, engine.dims(), opts.has("labeled"));
    if let Err((i, e)) = engine.apply_all(&ops) {
        eprintln!("error: op {} failed: {e}", i + 1);
        exit(1);
    }
    let s = engine.stats();
    eprintln!(
        "applied {} ops (+{} / -{} / ~{}), {} live, {} tombstones, epoch {}",
        ops.len(),
        s.inserts,
        s.deletes,
        s.cell_updates,
        engine.len(),
        engine.tombstones(),
        engine.epoch()
    );
    if let Some(path) = snap_path {
        let bytes = tkdi::store::save_engine(&path, &mut engine).unwrap_or_else(|e| {
            eprintln!("error: cannot rewrite snapshot: {e}");
            exit(1);
        });
        eprintln!("snapshot rewritten: {path} ({bytes} bytes)");
    }
    let result = engine
        .query_threads(&EngineQuery::new(k).algorithm(algorithm), threads)
        .expect("big/ibig checked above");
    print_engine_result(&engine, &result, opts.has("stats"));
}

fn cmd_skyline(args: &[String]) {
    let opts = parse_opts(args);
    let ds = opts.load();
    let band: usize = opts
        .get("band")
        .map(|b| {
            b.parse()
                .unwrap_or_else(|_| usage("--band must be an integer"))
        })
        .unwrap_or(1);
    let result = incomplete::k_skyband(&ds, band);
    println!("# {}-skyband: {} objects", band, result.len());
    for o in result {
        println!("{}", display_name(&ds, o));
    }
}

fn cmd_generate(args: &[String]) {
    let opts = parse_opts(args);
    let get_num = |name: &str, default: usize| -> usize {
        opts.get(name)
            .map(|v| {
                v.parse()
                    .unwrap_or_else(|_| usage(&format!("--{name} must be an integer")))
            })
            .unwrap_or(default)
    };
    let cfg = SyntheticConfig {
        n: get_num("n", 1000),
        dims: get_num("dims", 5),
        cardinality: get_num("cardinality", 100),
        missing_rate: opts
            .get("missing")
            .map(|v| {
                v.parse()
                    .unwrap_or_else(|_| usage("--missing must be a rate in [0,1)"))
            })
            .unwrap_or(0.1),
        distribution: match opts.get("dist").unwrap_or("ind") {
            "ind" => Distribution::Independent,
            "ac" => Distribution::AntiCorrelated,
            "co" => Distribution::Correlated,
            other => usage(&format!("unknown distribution {other:?}")),
        },
        seed: opts
            .get("seed")
            .map(|v| {
                v.parse()
                    .unwrap_or_else(|_| usage("--seed must be an integer"))
            })
            .unwrap_or(42),
    };
    print!("{}", io::to_text(&generate(&cfg)));
}

fn cmd_serve(args: &[String]) {
    let opts = parse_opts(args);
    if opts.file.is_some() {
        usage("serve runs from a snapshot; build one first and pass --index SNAP");
    }
    reject_snapshot_conflicts(&opts);
    let snap = opts
        .get("index")
        .unwrap_or_else(|| usage("serve requires --index SNAP"))
        .to_string();
    let addr = opts.get("addr").unwrap_or("127.0.0.1:7171").to_string();
    let ms = |name: &str, default: u64| -> u64 {
        opts.get(name)
            .map(|v| match v.parse() {
                Ok(n) if n >= 1 => n,
                _ => usage(&format!("--{name} must be a positive integer")),
            })
            .unwrap_or(default)
    };
    let count = |name: &str, default: usize| -> usize {
        opts.get(name)
            .map(|v| match v.parse() {
                Ok(n) if n >= 1 => n,
                _ => usage(&format!("--{name} must be a positive integer")),
            })
            .unwrap_or(default)
    };
    let load_started = std::time::Instant::now();
    let mut engine = load_snapshot(&snap);
    let load_time = load_started.elapsed();
    if let Some(w) = opts.get("window") {
        let cap = match w.parse::<usize>() {
            Ok(n) if n >= 1 => n,
            _ => usage("--window must be a positive object count"),
        };
        engine.set_window(Some(cap));
    }
    let config = tkdi::serve::ServeConfig {
        threads: parse_threads(&opts),
        max_queue: count("max-queue", 128),
        batch_max: count("batch-max", 32),
        request_timeout: std::time::Duration::from_millis(ms("request-timeout-ms", 10_000)),
        io_timeout: std::time::Duration::from_millis(ms("io-timeout-ms", 5_000)),
        snapshot: if opts.has("no-rewrite") {
            None
        } else {
            Some(snap.clone().into())
        },
        load_time: Some(load_time),
        initial_seq: opts
            .get("initial-seq")
            .map(|v| match v.parse() {
                Ok(n) => n,
                Err(_) => usage("--initial-seq must be a non-negative integer"),
            })
            .unwrap_or(0),
        ..Default::default()
    };
    let server = tkdi::serve::Server::start(engine, addr.as_str(), config).unwrap_or_else(|e| {
        eprintln!("error: cannot start server on {addr}: {e}");
        exit(1);
    });
    println!(
        "serving {snap} on {} (shutdown frame drains and stops)",
        server.local_addr()
    );
    // Block until a client sends the shutdown frame, then persist the
    // drained engine one last time.
    match server.join() {
        Ok(mut engine) => {
            if opts.has("no-rewrite") {
                let final_path = format!("{snap}.final");
                match tkdi::store::save_engine(&final_path, &mut engine) {
                    Ok(bytes) => println!("drained; final snapshot: {final_path} ({bytes} bytes)"),
                    Err(e) => {
                        eprintln!("error: drained but final snapshot failed: {e}");
                        exit(1);
                    }
                }
            } else {
                println!("drained; snapshot rewritten: {snap}");
            }
        }
        Err(e) => {
            eprintln!("error: server did not drain cleanly: {e}");
            exit(1);
        }
    }
}

fn cmd_cluster(args: &[String]) {
    match args.first().map(String::as_str) {
        Some("worker") => cmd_cluster_worker(&args[1..]),
        Some("query") => cmd_cluster_query(&args[1..]),
        Some(other) => usage(&format!("unknown cluster subcommand {other:?}")),
        None => usage("cluster requires a subcommand: worker | query"),
    }
}

fn cmd_cluster_worker(args: &[String]) {
    let opts = parse_opts(args);
    if opts.file.is_some() {
        usage("cluster worker takes no dataset; shards arrive as assigned snapshots");
    }
    let addr = opts.get("addr").unwrap_or("127.0.0.1:7271").to_string();
    let worker =
        tkdi::cluster::Worker::start(addr.as_str(), tkdi::cluster::WorkerConfig::default())
            .unwrap_or_else(|e| {
                eprintln!("error: cannot start worker on {addr}: {e}");
                exit(1);
            });
    println!("worker on {} (close stdin to stop)", worker.local_addr());
    // Block until the parent closes our stdin (or we are killed) — the
    // coordinator drives everything else over the cluster plane.
    let mut sink = Vec::new();
    let _ = std::io::Read::read_to_end(&mut std::io::stdin().lock(), &mut sink);
    worker.stop();
    println!("worker stopped");
}

fn cmd_cluster_query(args: &[String]) {
    let opts = parse_opts(args);
    let k: usize = opts
        .get("k")
        .unwrap_or_else(|| usage("cluster query requires --k"))
        .parse()
        .unwrap_or_else(|_| usage("--k must be an integer"));
    let algorithm = match opts.get("algorithm").unwrap_or("big") {
        "big" => Algorithm::Big,
        "ibig" => Algorithm::Ibig,
        other => usage(&format!("the cluster serves big | ibig, not {other:?}")),
    };
    let workers: Vec<std::net::SocketAddr> = opts
        .get("workers")
        .unwrap_or_else(|| usage("cluster query requires --workers ADDR[,ADDR…]"))
        .split(',')
        .map(|a| {
            a.trim()
                .parse()
                .unwrap_or_else(|_| usage(&format!("bad worker address {a:?}")))
        })
        .collect();
    let shards: usize = opts
        .get("shards")
        .map(|v| match v.parse() {
            Ok(n) if n >= 1 => n,
            _ => usage("--shards must be a positive integer"),
        })
        .unwrap_or_else(|| workers.len());
    let dir = opts.get("dir").map_or_else(
        || std::env::temp_dir().join(format!("tkdq-cluster-{}", std::process::id())),
        std::path::PathBuf::from,
    );
    let ds = opts.load();
    let labels = ds.clone();
    let mut coord = tkdi::cluster::Coordinator::seed(
        &ds,
        shards,
        &workers,
        tkdi::cluster::ClusterConfig::new(&dir),
    )
    .unwrap_or_else(|e| {
        eprintln!("error: cannot seed cluster: {e}");
        exit(1);
    });
    eprintln!(
        "seeded {} shards over {} workers; snapshots in {}",
        shards,
        workers.len(),
        dir.display()
    );
    if let Some(ops_file) = opts.get("ops") {
        let text = std::fs::read_to_string(ops_file).unwrap_or_else(|e| {
            eprintln!("error: cannot read {ops_file}: {e}");
            exit(1);
        });
        let ops = parse_ops(&text, ds.dims(), opts.has("labeled"));
        coord.update(&ops).unwrap_or_else(|e| {
            eprintln!("error: cluster update failed: {e}");
            exit(1);
        });
        eprintln!("applied {} ops; {} live", ops.len(), coord.len());
    }
    if let Some(spec) = opts.get("handoff") {
        let (s, w) = spec
            .split_once(':')
            .and_then(|(s, w)| Some((s.parse::<u64>().ok()?, w.parse::<usize>().ok()?)))
            .unwrap_or_else(|| usage("--handoff takes SHARD:WORKER (two indexes)"));
        coord.handoff(s, w).unwrap_or_else(|e| {
            eprintln!("error: handoff failed: {e}");
            exit(1);
        });
        eprintln!("shard {s} handed off to worker {w}");
    }
    let result = coord.query(k, algorithm).unwrap_or_else(|e| {
        eprintln!("error: cluster query failed: {e}");
        exit(1);
    });
    for (rank, e) in result.iter().enumerate() {
        let name = (e.id < labels.len() as u32)
            .then(|| labels.label(e.id))
            .flatten()
            .filter(|l| !l.is_empty())
            .map(str::to_string)
            .unwrap_or_else(|| format!("#{}", e.id));
        println!("{:>3}. {:<20} score {}", rank + 1, name, e.score);
    }
    if opts.has("stats") {
        let st = result.stats;
        let cs = coord.stats;
        eprintln!(
            "pruned: H1={} H2={} H3={}  scored={}",
            st.h1_pruned, st.h2_pruned, st.h3_pruned, st.scored
        );
        eprintln!(
            "wire: frames={} tau_rounds={} candidates={} repairs={}",
            cs.frames, cs.tau_rounds, cs.candidates_shipped, cs.repairs
        );
    }
}

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("error: {err}\n");
    }
    eprintln!("{}", tkdi::cli::usage_text());
    exit(if err.is_empty() { 0 } else { 2 });
}
