//! # tkdi — Top-k Dominating Queries on Incomplete Data
//!
//! A faithful, production-quality Rust reproduction of
//! *Miao, Gao, Zheng, Chen, Cui: "Top-k Dominating Queries on Incomplete
//! Data", IEEE TKDE 28(1), 2016*.
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`model`] — incomplete-data records, datasets, dominance (Def. 1–3).
//! * [`bitvec`] — dense bit vectors plus WAH and CONCISE compression.
//! * [`btree`] — in-memory B+-tree substrate.
//! * [`skyline`] — skyline / k-skyband operators.
//! * [`index`] — range-encoded and binned bitmap indexes, binning strategy,
//!   space/time cost model (§4.3–4.5).
//! * [`core`] — the TKD algorithms: Naive, ESB, UBB, BIG, IBIG (§4), plus
//!   the MFD weighted-dominance extension (§3), the sharded parallel
//!   execution layer (`core::parallel`), the multi-user serving engine
//!   (`core::engine`), the dynamic update layer (`core::dynamic`)
//!   with incremental inserts/deletes over all indexes, and standing
//!   queries (`core::standing`) whose results are patched per op-batch
//!   and streamed as deltas.
//! * [`data`] — synthetic workloads (IND/AC/CO) and real-dataset simulators.
//! * [`impute`] — matrix-factorization imputation baseline (§5.2, Table 4).
//! * [`store`] — versioned on-disk snapshots of the full query state
//!   (`tkdq build` / `--index`), restored bit-identically.
//! * [`serve`] — long-running TCP query service (`tkdq serve`): versioned
//!   binary protocol, query coalescing, admission control, and atomic
//!   snapshot rewrites on update.
//! * [`ql`] — TKDQL, the query language: lexer → parser → binder →
//!   cost-based planner → execution (`tkdq query -e`, `tkdq repl`, and
//!   the wire protocol's text statements). Spec: `docs/TKDQL.md`.
//! * [`cli`] — the `tkdq` command table the binary's help text and the
//!   README command table are both generated/checked from.
//!
//! # Quickstart
//!
//! ```
//! use tkdi::prelude::*;
//!
//! // The paper's 20-object running example (Fig. 3).
//! let ds = tkdi::model::fixtures::fig3_sample();
//!
//! // T2D query: the two objects dominating the most others.
//! let result = TkdQuery::new(2).algorithm(Algorithm::Big).run(&ds);
//! let labels: Vec<_> = result.iter().map(|e| ds.label(e.id).unwrap()).collect();
//! assert_eq!(labels, vec!["A2", "C2"]); // both with score 16
//! ```

#![warn(missing_docs)]

pub mod cli;

pub use tkd_bitvec as bitvec;
pub use tkd_btree as btree;
pub use tkd_cluster as cluster;
pub use tkd_core as core;
pub use tkd_data as data;
pub use tkd_impute as impute;
pub use tkd_index as index;
pub use tkd_model as model;
pub use tkd_ql as ql;
pub use tkd_serve as serve;
pub use tkd_skyline as skyline;
pub use tkd_store as store;

/// The most commonly used items, for glob import.
pub mod prelude {
    pub use tkd_core::{
        Algorithm, BatchReport, DynamicEngine, EngineQuery, Notification, ParallelEngine,
        StandingSpec, TkdQuery, TkdResult, UpdateOp,
    };
    pub use tkd_model::{Dataset, DimMask, ObjectId};
}
