//! The `tkdq` command table — the single source of truth for CLI help.
//!
//! The binary's `usage()` output is generated from [`COMMANDS`] by
//! [`usage_text`], and the README's command table is checked against the
//! same array by `tests/docs_sync.rs`, so the three surfaces (binary,
//! README, docs) cannot drift apart: adding or renaming a command here
//! updates the help text and fails the sync test until the README
//! follows.

/// One `tkdq` subcommand: its name, a one-line summary (used by the
/// README table), and pre-wrapped usage lines (used by `tkdq help`).
pub struct CommandHelp {
    /// Subcommand name as typed (`tkdq <name> …`).
    pub name: &'static str,
    /// One-line description for command tables.
    pub summary: &'static str,
    /// Usage lines, already wrapped; the first is the synopsis, the
    /// rest are indented option/detail lines.
    pub usage: &'static [&'static str],
}

/// Every `tkdq` subcommand, in help order.
pub const COMMANDS: &[CommandHelp] = &[
    CommandHelp {
        name: "info",
        summary: "dataset statistics (size, missing rate, per-dim cardinality)",
        usage: &["tkdq info <FILE> [--labeled]"],
    },
    CommandHelp {
        name: "build",
        summary: "persist the bitmap indexes to an on-disk snapshot",
        usage: &[
            "tkdq build <FILE> --out SNAP [--bins auto|X] [--compact-threshold F] [--labeled]",
        ],
    },
    CommandHelp {
        name: "query",
        summary: "answer a top-k dominating query (flags or a TKDQL statement)",
        usage: &[
            "tkdq query <FILE>|--index SNAP --k K [--algorithm naive|esb|ubb|big|ibig]",
            "     [--bins auto|X] [--subspace 0,2,5] [--threads T] [--labeled] [--stats]",
            "     (--index serves big|ibig from a snapshot; bins/subspace need the file)",
            "tkdq query -e \"SELECT TOP k DOMINATING [FROM 'FILE'] …\" [FILE|--index SNAP]",
            "     (TKDQL statement; the target is the FROM clause, the positional",
            "      file, or the snapshot — see docs/TKDQL.md; EXPLAIN prints the plan)",
        ],
    },
    CommandHelp {
        name: "repl",
        summary: "interactive TKDQL shell over a dataset file or snapshot",
        usage: &[
            "tkdq repl <FILE>|--index SNAP [--labeled]",
            "     (one statement per line; \\q quits; errors keep the session alive)",
        ],
    },
    CommandHelp {
        name: "update",
        summary: "apply an update script through the dynamic engine, then query",
        usage: &[
            "tkdq update <FILE>|--index SNAP --ops OPS --k K [--algorithm big|ibig]",
            "     [--bins auto|X] [--threads T] [--compact-threshold F] [--labeled] [--stats]",
            "     (OPS lines: insert [LABEL] v1,v2,… | delete ID | set ID DIM VALUE|-;",
            "      --index loads the snapshot, applies OPS, and rewrites it in place)",
        ],
    },
    CommandHelp {
        name: "skyline",
        summary: "skyline / k-skyband of an incomplete dataset",
        usage: &["tkdq skyline <FILE> [--band K] [--labeled]"],
    },
    CommandHelp {
        name: "generate",
        summary: "synthetic incomplete dataset (IND/AC/CO) to stdout",
        usage: &[
            "tkdq generate [--n N] [--dims D] [--dist ind|ac|co]",
            "     [--missing R] [--cardinality C] [--seed S]",
        ],
    },
    CommandHelp {
        name: "serve",
        summary: "long-running TCP query service over a snapshot",
        usage: &[
            "tkdq serve --index SNAP [--addr HOST:PORT] [--threads T] [--max-queue N]",
            "     [--batch-max N] [--request-timeout-ms M] [--io-timeout-ms M] [--no-rewrite]",
            "     [--window N]  (cap live objects; oldest age out per update batch)",
        ],
    },
    CommandHelp {
        name: "cluster",
        summary: "multi-process sharded cluster: shard workers and a coordinator",
        usage: &[
            "tkdq cluster worker [--addr HOST:PORT]",
            "     (host shard snapshots assigned over the v5 cluster plane; prints",
            "      `worker on ADDR` once listening)",
            "tkdq cluster query <FILE> --workers A1,A2,… --k K [--algorithm big|ibig]",
            "     [--shards S] [--dir DIR] [--ops OPS] [--handoff SHARD:WORKER]",
            "     [--labeled] [--stats]",
            "     (seed DIR with S id-range shard snapshots, assign them across the",
            "      workers, apply OPS through the routed single-writer path, then",
            "      answer bit-identically to the in-process engines)",
        ],
    },
];

/// The full `tkdq help` text, generated from [`COMMANDS`].
pub fn usage_text() -> String {
    let mut out = String::from(
        "tkdq — top-k dominating queries on incomplete data\n\n\
         Usage:\n",
    );
    for cmd in COMMANDS {
        for line in cmd.usage {
            out.push_str("  ");
            out.push_str(line);
            out.push('\n');
        }
    }
    out.push_str(
        "\nFiles are comma/whitespace separated, `-` for missing, `#` comments.\n\
         Values are smaller-is-better. The TKDQL language is specified in\n\
         docs/TKDQL.md; the wire protocol in docs/WIRE_PROTOCOL.md.",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_command_synopsis_names_its_command() {
        for cmd in COMMANDS {
            assert!(!cmd.usage.is_empty(), "{} has no usage", cmd.name);
            assert!(
                cmd.usage[0].starts_with(&format!("tkdq {}", cmd.name)),
                "{}: synopsis {:?} does not lead with the command",
                cmd.name,
                cmd.usage[0]
            );
            assert!(!cmd.summary.is_empty());
        }
    }

    #[test]
    fn usage_text_covers_every_command() {
        let text = usage_text();
        for cmd in COMMANDS {
            assert!(text.contains(&format!("tkdq {}", cmd.name)), "{}", cmd.name);
        }
        assert!(text.contains("docs/TKDQL.md"));
    }
}
